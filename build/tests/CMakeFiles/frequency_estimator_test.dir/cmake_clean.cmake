file(REMOVE_RECURSE
  "CMakeFiles/frequency_estimator_test.dir/estimate/frequency_estimator_test.cc.o"
  "CMakeFiles/frequency_estimator_test.dir/estimate/frequency_estimator_test.cc.o.d"
  "frequency_estimator_test"
  "frequency_estimator_test.pdb"
  "frequency_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequency_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
