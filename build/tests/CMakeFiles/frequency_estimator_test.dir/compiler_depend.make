# Empty compiler generated dependencies file for frequency_estimator_test.
# This may be replaced when dependencies are built.
