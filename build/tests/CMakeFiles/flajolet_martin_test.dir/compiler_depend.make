# Empty compiler generated dependencies file for flajolet_martin_test.
# This may be replaced when dependencies are built.
