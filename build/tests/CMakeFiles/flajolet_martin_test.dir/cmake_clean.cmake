file(REMOVE_RECURSE
  "CMakeFiles/flajolet_martin_test.dir/sketch/flajolet_martin_test.cc.o"
  "CMakeFiles/flajolet_martin_test.dir/sketch/flajolet_martin_test.cc.o.d"
  "flajolet_martin_test"
  "flajolet_martin_test.pdb"
  "flajolet_martin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flajolet_martin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
