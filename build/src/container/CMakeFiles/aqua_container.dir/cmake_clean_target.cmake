file(REMOVE_RECURSE
  "libaqua_container.a"
)
