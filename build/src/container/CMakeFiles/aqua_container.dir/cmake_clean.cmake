file(REMOVE_RECURSE
  "CMakeFiles/aqua_container.dir/container.cc.o"
  "CMakeFiles/aqua_container.dir/container.cc.o.d"
  "libaqua_container.a"
  "libaqua_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
