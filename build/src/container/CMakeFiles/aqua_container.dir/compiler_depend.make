# Empty compiler generated dependencies file for aqua_container.
# This may be replaced when dependencies are built.
