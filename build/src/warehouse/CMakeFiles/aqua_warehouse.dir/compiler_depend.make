# Empty compiler generated dependencies file for aqua_warehouse.
# This may be replaced when dependencies are built.
