file(REMOVE_RECURSE
  "CMakeFiles/aqua_warehouse.dir/catalog.cc.o"
  "CMakeFiles/aqua_warehouse.dir/catalog.cc.o.d"
  "CMakeFiles/aqua_warehouse.dir/engine.cc.o"
  "CMakeFiles/aqua_warehouse.dir/engine.cc.o.d"
  "CMakeFiles/aqua_warehouse.dir/full_histogram.cc.o"
  "CMakeFiles/aqua_warehouse.dir/full_histogram.cc.o.d"
  "CMakeFiles/aqua_warehouse.dir/relation.cc.o"
  "CMakeFiles/aqua_warehouse.dir/relation.cc.o.d"
  "libaqua_warehouse.a"
  "libaqua_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
