file(REMOVE_RECURSE
  "libaqua_warehouse.a"
)
