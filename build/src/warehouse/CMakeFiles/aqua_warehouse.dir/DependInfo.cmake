
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/warehouse/catalog.cc" "src/warehouse/CMakeFiles/aqua_warehouse.dir/catalog.cc.o" "gcc" "src/warehouse/CMakeFiles/aqua_warehouse.dir/catalog.cc.o.d"
  "/root/repo/src/warehouse/engine.cc" "src/warehouse/CMakeFiles/aqua_warehouse.dir/engine.cc.o" "gcc" "src/warehouse/CMakeFiles/aqua_warehouse.dir/engine.cc.o.d"
  "/root/repo/src/warehouse/full_histogram.cc" "src/warehouse/CMakeFiles/aqua_warehouse.dir/full_histogram.cc.o" "gcc" "src/warehouse/CMakeFiles/aqua_warehouse.dir/full_histogram.cc.o.d"
  "/root/repo/src/warehouse/relation.cc" "src/warehouse/CMakeFiles/aqua_warehouse.dir/relation.cc.o" "gcc" "src/warehouse/CMakeFiles/aqua_warehouse.dir/relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aqua_common.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/aqua_container.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aqua_core.dir/DependInfo.cmake"
  "/root/repo/build/src/estimate/CMakeFiles/aqua_estimate.dir/DependInfo.cmake"
  "/root/repo/build/src/hotlist/CMakeFiles/aqua_hotlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sample/CMakeFiles/aqua_sample.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/aqua_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/aqua_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/aqua_random.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
