file(REMOVE_RECURSE
  "CMakeFiles/aqua_common.dir/status.cc.o"
  "CMakeFiles/aqua_common.dir/status.cc.o.d"
  "libaqua_common.a"
  "libaqua_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
