
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/histogram/compressed_histogram.cc" "src/histogram/CMakeFiles/aqua_histogram.dir/compressed_histogram.cc.o" "gcc" "src/histogram/CMakeFiles/aqua_histogram.dir/compressed_histogram.cc.o.d"
  "/root/repo/src/histogram/equi_depth_histogram.cc" "src/histogram/CMakeFiles/aqua_histogram.dir/equi_depth_histogram.cc.o" "gcc" "src/histogram/CMakeFiles/aqua_histogram.dir/equi_depth_histogram.cc.o.d"
  "/root/repo/src/histogram/high_biased_histogram.cc" "src/histogram/CMakeFiles/aqua_histogram.dir/high_biased_histogram.cc.o" "gcc" "src/histogram/CMakeFiles/aqua_histogram.dir/high_biased_histogram.cc.o.d"
  "/root/repo/src/histogram/incremental_equi_depth.cc" "src/histogram/CMakeFiles/aqua_histogram.dir/incremental_equi_depth.cc.o" "gcc" "src/histogram/CMakeFiles/aqua_histogram.dir/incremental_equi_depth.cc.o.d"
  "/root/repo/src/histogram/v_optimal_histogram.cc" "src/histogram/CMakeFiles/aqua_histogram.dir/v_optimal_histogram.cc.o" "gcc" "src/histogram/CMakeFiles/aqua_histogram.dir/v_optimal_histogram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aqua_common.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/aqua_container.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aqua_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sample/CMakeFiles/aqua_sample.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/aqua_random.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
