file(REMOVE_RECURSE
  "CMakeFiles/aqua_histogram.dir/compressed_histogram.cc.o"
  "CMakeFiles/aqua_histogram.dir/compressed_histogram.cc.o.d"
  "CMakeFiles/aqua_histogram.dir/equi_depth_histogram.cc.o"
  "CMakeFiles/aqua_histogram.dir/equi_depth_histogram.cc.o.d"
  "CMakeFiles/aqua_histogram.dir/high_biased_histogram.cc.o"
  "CMakeFiles/aqua_histogram.dir/high_biased_histogram.cc.o.d"
  "CMakeFiles/aqua_histogram.dir/incremental_equi_depth.cc.o"
  "CMakeFiles/aqua_histogram.dir/incremental_equi_depth.cc.o.d"
  "CMakeFiles/aqua_histogram.dir/v_optimal_histogram.cc.o"
  "CMakeFiles/aqua_histogram.dir/v_optimal_histogram.cc.o.d"
  "libaqua_histogram.a"
  "libaqua_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
