# Empty compiler generated dependencies file for aqua_histogram.
# This may be replaced when dependencies are built.
