file(REMOVE_RECURSE
  "libaqua_histogram.a"
)
