
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/concise_sample.cc" "src/core/CMakeFiles/aqua_core.dir/concise_sample.cc.o" "gcc" "src/core/CMakeFiles/aqua_core.dir/concise_sample.cc.o.d"
  "/root/repo/src/core/concise_sample_builder.cc" "src/core/CMakeFiles/aqua_core.dir/concise_sample_builder.cc.o" "gcc" "src/core/CMakeFiles/aqua_core.dir/concise_sample_builder.cc.o.d"
  "/root/repo/src/core/counting_sample.cc" "src/core/CMakeFiles/aqua_core.dir/counting_sample.cc.o" "gcc" "src/core/CMakeFiles/aqua_core.dir/counting_sample.cc.o.d"
  "/root/repo/src/core/threshold_policy.cc" "src/core/CMakeFiles/aqua_core.dir/threshold_policy.cc.o" "gcc" "src/core/CMakeFiles/aqua_core.dir/threshold_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aqua_common.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/aqua_container.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/aqua_random.dir/DependInfo.cmake"
  "/root/repo/build/src/sample/CMakeFiles/aqua_sample.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
