file(REMOVE_RECURSE
  "CMakeFiles/aqua_core.dir/concise_sample.cc.o"
  "CMakeFiles/aqua_core.dir/concise_sample.cc.o.d"
  "CMakeFiles/aqua_core.dir/concise_sample_builder.cc.o"
  "CMakeFiles/aqua_core.dir/concise_sample_builder.cc.o.d"
  "CMakeFiles/aqua_core.dir/counting_sample.cc.o"
  "CMakeFiles/aqua_core.dir/counting_sample.cc.o.d"
  "CMakeFiles/aqua_core.dir/threshold_policy.cc.o"
  "CMakeFiles/aqua_core.dir/threshold_policy.cc.o.d"
  "libaqua_core.a"
  "libaqua_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
