# Empty dependencies file for aqua_concurrency.
# This may be replaced when dependencies are built.
