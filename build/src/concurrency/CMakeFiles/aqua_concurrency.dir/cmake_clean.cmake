file(REMOVE_RECURSE
  "CMakeFiles/aqua_concurrency.dir/concurrency.cc.o"
  "CMakeFiles/aqua_concurrency.dir/concurrency.cc.o.d"
  "libaqua_concurrency.a"
  "libaqua_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
