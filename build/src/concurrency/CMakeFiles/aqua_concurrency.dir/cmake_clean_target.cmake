file(REMOVE_RECURSE
  "libaqua_concurrency.a"
)
