
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/persist/op_log.cc" "src/persist/CMakeFiles/aqua_persist.dir/op_log.cc.o" "gcc" "src/persist/CMakeFiles/aqua_persist.dir/op_log.cc.o.d"
  "/root/repo/src/persist/snapshot.cc" "src/persist/CMakeFiles/aqua_persist.dir/snapshot.cc.o" "gcc" "src/persist/CMakeFiles/aqua_persist.dir/snapshot.cc.o.d"
  "/root/repo/src/persist/varint.cc" "src/persist/CMakeFiles/aqua_persist.dir/varint.cc.o" "gcc" "src/persist/CMakeFiles/aqua_persist.dir/varint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aqua_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aqua_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sample/CMakeFiles/aqua_sample.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/aqua_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/aqua_container.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/aqua_random.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
