file(REMOVE_RECURSE
  "CMakeFiles/aqua_persist.dir/op_log.cc.o"
  "CMakeFiles/aqua_persist.dir/op_log.cc.o.d"
  "CMakeFiles/aqua_persist.dir/snapshot.cc.o"
  "CMakeFiles/aqua_persist.dir/snapshot.cc.o.d"
  "CMakeFiles/aqua_persist.dir/varint.cc.o"
  "CMakeFiles/aqua_persist.dir/varint.cc.o.d"
  "libaqua_persist.a"
  "libaqua_persist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_persist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
