file(REMOVE_RECURSE
  "libaqua_persist.a"
)
