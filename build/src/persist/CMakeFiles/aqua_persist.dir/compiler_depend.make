# Empty compiler generated dependencies file for aqua_persist.
# This may be replaced when dependencies are built.
