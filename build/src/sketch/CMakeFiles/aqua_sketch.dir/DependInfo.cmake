
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/ams_sketch.cc" "src/sketch/CMakeFiles/aqua_sketch.dir/ams_sketch.cc.o" "gcc" "src/sketch/CMakeFiles/aqua_sketch.dir/ams_sketch.cc.o.d"
  "/root/repo/src/sketch/flajolet_martin.cc" "src/sketch/CMakeFiles/aqua_sketch.dir/flajolet_martin.cc.o" "gcc" "src/sketch/CMakeFiles/aqua_sketch.dir/flajolet_martin.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aqua_common.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/aqua_random.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
