file(REMOVE_RECURSE
  "CMakeFiles/aqua_sketch.dir/ams_sketch.cc.o"
  "CMakeFiles/aqua_sketch.dir/ams_sketch.cc.o.d"
  "CMakeFiles/aqua_sketch.dir/flajolet_martin.cc.o"
  "CMakeFiles/aqua_sketch.dir/flajolet_martin.cc.o.d"
  "libaqua_sketch.a"
  "libaqua_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
