# Empty dependencies file for aqua_sketch.
# This may be replaced when dependencies are built.
