file(REMOVE_RECURSE
  "libaqua_sketch.a"
)
