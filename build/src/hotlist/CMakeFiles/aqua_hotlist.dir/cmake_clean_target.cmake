file(REMOVE_RECURSE
  "libaqua_hotlist.a"
)
