# Empty dependencies file for aqua_hotlist.
# This may be replaced when dependencies are built.
