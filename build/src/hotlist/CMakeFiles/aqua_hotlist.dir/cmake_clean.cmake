file(REMOVE_RECURSE
  "CMakeFiles/aqua_hotlist.dir/concise_hot_list.cc.o"
  "CMakeFiles/aqua_hotlist.dir/concise_hot_list.cc.o.d"
  "CMakeFiles/aqua_hotlist.dir/counting_hot_list.cc.o"
  "CMakeFiles/aqua_hotlist.dir/counting_hot_list.cc.o.d"
  "CMakeFiles/aqua_hotlist.dir/exact_hot_list.cc.o"
  "CMakeFiles/aqua_hotlist.dir/exact_hot_list.cc.o.d"
  "CMakeFiles/aqua_hotlist.dir/maintained_hot_list.cc.o"
  "CMakeFiles/aqua_hotlist.dir/maintained_hot_list.cc.o.d"
  "CMakeFiles/aqua_hotlist.dir/reporting.cc.o"
  "CMakeFiles/aqua_hotlist.dir/reporting.cc.o.d"
  "CMakeFiles/aqua_hotlist.dir/traditional_hot_list.cc.o"
  "CMakeFiles/aqua_hotlist.dir/traditional_hot_list.cc.o.d"
  "libaqua_hotlist.a"
  "libaqua_hotlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_hotlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
