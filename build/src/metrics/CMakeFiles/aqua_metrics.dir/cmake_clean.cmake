file(REMOVE_RECURSE
  "CMakeFiles/aqua_metrics.dir/hotlist_accuracy.cc.o"
  "CMakeFiles/aqua_metrics.dir/hotlist_accuracy.cc.o.d"
  "CMakeFiles/aqua_metrics.dir/table_printer.cc.o"
  "CMakeFiles/aqua_metrics.dir/table_printer.cc.o.d"
  "libaqua_metrics.a"
  "libaqua_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
