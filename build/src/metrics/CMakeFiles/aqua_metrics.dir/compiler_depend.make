# Empty compiler generated dependencies file for aqua_metrics.
# This may be replaced when dependencies are built.
