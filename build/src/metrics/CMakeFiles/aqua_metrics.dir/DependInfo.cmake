
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/hotlist_accuracy.cc" "src/metrics/CMakeFiles/aqua_metrics.dir/hotlist_accuracy.cc.o" "gcc" "src/metrics/CMakeFiles/aqua_metrics.dir/hotlist_accuracy.cc.o.d"
  "/root/repo/src/metrics/table_printer.cc" "src/metrics/CMakeFiles/aqua_metrics.dir/table_printer.cc.o" "gcc" "src/metrics/CMakeFiles/aqua_metrics.dir/table_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aqua_common.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/aqua_container.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aqua_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hotlist/CMakeFiles/aqua_hotlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sample/CMakeFiles/aqua_sample.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/aqua_random.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
