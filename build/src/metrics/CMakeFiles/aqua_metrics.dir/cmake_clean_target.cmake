file(REMOVE_RECURSE
  "libaqua_metrics.a"
)
