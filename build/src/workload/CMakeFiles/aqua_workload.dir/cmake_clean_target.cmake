file(REMOVE_RECURSE
  "libaqua_workload.a"
)
