
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/random/discrete_distribution.cc" "src/random/CMakeFiles/aqua_random.dir/discrete_distribution.cc.o" "gcc" "src/random/CMakeFiles/aqua_random.dir/discrete_distribution.cc.o.d"
  "/root/repo/src/random/random.cc" "src/random/CMakeFiles/aqua_random.dir/random.cc.o" "gcc" "src/random/CMakeFiles/aqua_random.dir/random.cc.o.d"
  "/root/repo/src/random/zipf.cc" "src/random/CMakeFiles/aqua_random.dir/zipf.cc.o" "gcc" "src/random/CMakeFiles/aqua_random.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aqua_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
