file(REMOVE_RECURSE
  "CMakeFiles/aqua_random.dir/discrete_distribution.cc.o"
  "CMakeFiles/aqua_random.dir/discrete_distribution.cc.o.d"
  "CMakeFiles/aqua_random.dir/random.cc.o"
  "CMakeFiles/aqua_random.dir/random.cc.o.d"
  "CMakeFiles/aqua_random.dir/zipf.cc.o"
  "CMakeFiles/aqua_random.dir/zipf.cc.o.d"
  "libaqua_random.a"
  "libaqua_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
