# Empty compiler generated dependencies file for aqua_random.
# This may be replaced when dependencies are built.
