file(REMOVE_RECURSE
  "libaqua_random.a"
)
