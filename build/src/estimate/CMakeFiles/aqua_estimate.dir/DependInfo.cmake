
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estimate/aggregates.cc" "src/estimate/CMakeFiles/aqua_estimate.dir/aggregates.cc.o" "gcc" "src/estimate/CMakeFiles/aqua_estimate.dir/aggregates.cc.o.d"
  "/root/repo/src/estimate/distinct_estimators.cc" "src/estimate/CMakeFiles/aqua_estimate.dir/distinct_estimators.cc.o" "gcc" "src/estimate/CMakeFiles/aqua_estimate.dir/distinct_estimators.cc.o.d"
  "/root/repo/src/estimate/distinct_values.cc" "src/estimate/CMakeFiles/aqua_estimate.dir/distinct_values.cc.o" "gcc" "src/estimate/CMakeFiles/aqua_estimate.dir/distinct_values.cc.o.d"
  "/root/repo/src/estimate/frequency_estimator.cc" "src/estimate/CMakeFiles/aqua_estimate.dir/frequency_estimator.cc.o" "gcc" "src/estimate/CMakeFiles/aqua_estimate.dir/frequency_estimator.cc.o.d"
  "/root/repo/src/estimate/frequency_moments.cc" "src/estimate/CMakeFiles/aqua_estimate.dir/frequency_moments.cc.o" "gcc" "src/estimate/CMakeFiles/aqua_estimate.dir/frequency_moments.cc.o.d"
  "/root/repo/src/estimate/join_size.cc" "src/estimate/CMakeFiles/aqua_estimate.dir/join_size.cc.o" "gcc" "src/estimate/CMakeFiles/aqua_estimate.dir/join_size.cc.o.d"
  "/root/repo/src/estimate/quantiles.cc" "src/estimate/CMakeFiles/aqua_estimate.dir/quantiles.cc.o" "gcc" "src/estimate/CMakeFiles/aqua_estimate.dir/quantiles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aqua_common.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/aqua_container.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aqua_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hotlist/CMakeFiles/aqua_hotlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sample/CMakeFiles/aqua_sample.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/aqua_random.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
