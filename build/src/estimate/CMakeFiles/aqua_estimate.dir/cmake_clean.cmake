file(REMOVE_RECURSE
  "CMakeFiles/aqua_estimate.dir/aggregates.cc.o"
  "CMakeFiles/aqua_estimate.dir/aggregates.cc.o.d"
  "CMakeFiles/aqua_estimate.dir/distinct_estimators.cc.o"
  "CMakeFiles/aqua_estimate.dir/distinct_estimators.cc.o.d"
  "CMakeFiles/aqua_estimate.dir/distinct_values.cc.o"
  "CMakeFiles/aqua_estimate.dir/distinct_values.cc.o.d"
  "CMakeFiles/aqua_estimate.dir/frequency_estimator.cc.o"
  "CMakeFiles/aqua_estimate.dir/frequency_estimator.cc.o.d"
  "CMakeFiles/aqua_estimate.dir/frequency_moments.cc.o"
  "CMakeFiles/aqua_estimate.dir/frequency_moments.cc.o.d"
  "CMakeFiles/aqua_estimate.dir/join_size.cc.o"
  "CMakeFiles/aqua_estimate.dir/join_size.cc.o.d"
  "CMakeFiles/aqua_estimate.dir/quantiles.cc.o"
  "CMakeFiles/aqua_estimate.dir/quantiles.cc.o.d"
  "libaqua_estimate.a"
  "libaqua_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
