file(REMOVE_RECURSE
  "libaqua_estimate.a"
)
