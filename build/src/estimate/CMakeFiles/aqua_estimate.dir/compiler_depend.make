# Empty compiler generated dependencies file for aqua_estimate.
# This may be replaced when dependencies are built.
