file(REMOVE_RECURSE
  "CMakeFiles/aqua_sample.dir/backing_sample.cc.o"
  "CMakeFiles/aqua_sample.dir/backing_sample.cc.o.d"
  "CMakeFiles/aqua_sample.dir/reservoir_sample.cc.o"
  "CMakeFiles/aqua_sample.dir/reservoir_sample.cc.o.d"
  "libaqua_sample.a"
  "libaqua_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
