file(REMOVE_RECURSE
  "libaqua_sample.a"
)
