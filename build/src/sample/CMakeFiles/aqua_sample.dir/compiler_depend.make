# Empty compiler generated dependencies file for aqua_sample.
# This may be replaced when dependencies are built.
