
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sample/backing_sample.cc" "src/sample/CMakeFiles/aqua_sample.dir/backing_sample.cc.o" "gcc" "src/sample/CMakeFiles/aqua_sample.dir/backing_sample.cc.o.d"
  "/root/repo/src/sample/reservoir_sample.cc" "src/sample/CMakeFiles/aqua_sample.dir/reservoir_sample.cc.o" "gcc" "src/sample/CMakeFiles/aqua_sample.dir/reservoir_sample.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aqua_common.dir/DependInfo.cmake"
  "/root/repo/build/src/random/CMakeFiles/aqua_random.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
