# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("random")
subdirs("container")
subdirs("sample")
subdirs("core")
subdirs("hotlist")
subdirs("estimate")
subdirs("sketch")
subdirs("histogram")
subdirs("workload")
subdirs("warehouse")
subdirs("metrics")
subdirs("persist")
subdirs("concurrency")
