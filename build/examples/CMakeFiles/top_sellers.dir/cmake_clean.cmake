file(REMOVE_RECURSE
  "CMakeFiles/top_sellers.dir/top_sellers.cpp.o"
  "CMakeFiles/top_sellers.dir/top_sellers.cpp.o.d"
  "top_sellers"
  "top_sellers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/top_sellers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
