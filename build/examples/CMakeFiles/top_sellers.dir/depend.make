# Empty dependencies file for top_sellers.
# This may be replaced when dependencies are built.
