file(REMOVE_RECURSE
  "CMakeFiles/persistence_recovery.dir/persistence_recovery.cpp.o"
  "CMakeFiles/persistence_recovery.dir/persistence_recovery.cpp.o.d"
  "persistence_recovery"
  "persistence_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistence_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
