# Empty compiler generated dependencies file for persistence_recovery.
# This may be replaced when dependencies are built.
