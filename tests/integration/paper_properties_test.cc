#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/concise_sample.h"
#include "core/concise_sample_builder.h"
#include "core/counting_sample.h"
#include "hotlist/concise_hot_list.h"
#include "hotlist/counting_hot_list.h"
#include "hotlist/traditional_hot_list.h"
#include "metrics/hotlist_accuracy.h"
#include "sample/reservoir_sample.h"
#include "warehouse/relation.h"
#include "workload/generators.h"

namespace aqua {
namespace {

// End-to-end checks of the paper's headline claims, scaled down from the
// 500K-insert experiments for test runtime (the bench/ binaries run the
// full-size versions).

TEST(PaperPropertiesTest, ConciseSampleSizeNeverBelowTraditional) {
  // A concise sample's sample-size is at least its footprint's worth of
  // points whenever enough data arrived ("concise samples are never worse
  // than traditional samples").
  for (double alpha : {0.0, 0.75, 1.5, 2.25, 3.0}) {
    ConciseSampleOptions o;
    o.footprint_bound = 200;
    o.seed = 11;
    ConciseSample s(o);
    const std::vector<Value> data = ZipfValues(100000, 1000, alpha, 12);
    for (Value v : data) s.Insert(v);
    EXPECT_GE(s.SampleSize(), static_cast<std::int64_t>(
                                  0.5 * static_cast<double>(s.Footprint())))
        << "alpha=" << alpha;
    // At or above moderate skew the gain must be decisive.
    if (alpha >= 1.5) {
      EXPECT_GT(s.SampleSize(), 2 * s.Footprint()) << "alpha=" << alpha;
    }
  }
}

TEST(PaperPropertiesTest, OnlineTracksOfflineSampleSize) {
  // §3.3: the online algorithm achieves a sample-size within 15% (footprint
  // 1000) / 28% (footprint 100) of the offline optimum.  Allow extra slack
  // for the smaller stream.
  const std::vector<Value> data = ZipfValues(200000, 5000, 1.25, 13);
  ConciseSampleOptions o;
  o.footprint_bound = 1000;
  o.seed = 14;
  ConciseSample online(o);
  for (Value v : data) online.Insert(v);
  const OfflineConciseSample offline =
      BuildOfflineConciseSample(data, 1000, 15);
  EXPECT_GT(static_cast<double>(online.SampleSize()),
            0.55 * static_cast<double>(offline.sample_size));
  // And the offline is the intrinsic optimum: online should not beat it by
  // much either.
  EXPECT_LT(static_cast<double>(online.SampleSize()),
            1.25 * static_cast<double>(offline.sample_size));
}

TEST(PaperPropertiesTest, Theorem3ExponentialAdvantage) {
  // Expected offline sample-size for exponential data is >= alpha^{m/2}.
  const double alpha = 1.5;
  const Words m = 16;  // alpha^8 ≈ 25.6
  const std::vector<Value> data = ExponentialValues(200000, alpha, 16);
  double mean = 0.0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    mean += static_cast<double>(
        BuildOfflineConciseSample(data, m, 100 + static_cast<std::uint64_t>(t))
            .sample_size);
  }
  mean /= kTrials;
  const double bound = std::pow(alpha, static_cast<double>(m) / 2.0);
  EXPECT_GT(mean, 0.8 * bound);  // theorem gives E >= bound; 0.8 for noise
}

TEST(PaperPropertiesTest, Lemma1ExtremeCase) {
  // A single-valued relation: concise footprint 2 for any n → sample-size
  // n/m advantage is unbounded.
  ConciseSampleOptions o;
  o.footprint_bound = 100;
  o.seed = 17;
  ConciseSample s(o);
  for (int i = 0; i < 100000; ++i) s.Insert(42);
  EXPECT_EQ(s.Footprint(), 2);
  EXPECT_EQ(s.SampleSize(), 100000);
  EXPECT_DOUBLE_EQ(s.Threshold(), 1.0);
}

TEST(PaperPropertiesTest, HotListAccuracyOrderingFigure4Config) {
  // Figure 4: D=500, zipf 1.5, footprint 100 (scaled to 200K inserts).
  Relation relation;
  ReservoirSample traditional(100, 21);
  ConciseSampleOptions co;
  co.footprint_bound = 100;
  co.seed = 22;
  ConciseSample concise(co);
  CountingSampleOptions ko;
  ko.footprint_bound = 100;
  ko.seed = 23;
  CountingSample counting(ko);
  for (Value v : ZipfValues(200000, 500, 1.5, 24)) {
    relation.Insert(v);
    traditional.Insert(v);
    concise.Insert(v);
    counting.Insert(v);
  }
  const auto exact = relation.ExactCounts();
  const HotListQuery q{.k = 0, .beta = 3};
  constexpr std::int64_t kK = 20;
  const auto acc_trad =
      EvaluateHotList(TraditionalHotList(traditional).Report(q), exact, kK);
  const auto acc_concise =
      EvaluateHotList(ConciseHotList(concise).Report(q), exact, kK);
  const auto acc_counting =
      EvaluateHotList(CountingHotList(counting).Report(q), exact, kK);

  // Counting reports the most of the top 20; traditional the least.
  EXPECT_GE(acc_counting.true_positives, acc_concise.true_positives - 2);
  EXPECT_GT(acc_concise.true_positives, acc_trad.true_positives);
  // Counting count errors are the smallest.
  EXPECT_LT(acc_counting.mean_relative_count_error,
            acc_trad.mean_relative_count_error + 1e-9);
  // The concise sample-size advantage that drives this (paper: 3.8×).
  EXPECT_GT(concise.SampleSize(), 2 * traditional.SampleSize());
}

TEST(PaperPropertiesTest, CountingSampleSurvivesDeleteHeavyStream) {
  CountingSampleOptions o;
  o.footprint_bound = 200;
  o.seed = 25;
  CountingSample s(o);
  Relation relation;
  const UpdateStream stream = MixedStream(150000, 1000, 1.25, 0.3, 2000, 26);
  for (const StreamOp& op : stream) {
    if (op.kind == StreamOp::Kind::kInsert) {
      s.Insert(op.value);
      relation.Insert(op.value);
    } else {
      ASSERT_TRUE(s.Delete(op.value).ok());
      ASSERT_TRUE(relation.Delete(op.value).ok());
    }
  }
  ASSERT_TRUE(s.Validate().ok());
  // Hot values should still be tracked with sane counts.
  const auto top = ExactTopK(relation.ExactCounts(), 5);
  std::int64_t tracked = 0;
  for (const ValueCount& vc : top) tracked += (s.CountOf(vc.value) > 0);
  EXPECT_GE(tracked, 3);
}

TEST(PaperPropertiesTest, UpdateCostOrderingMatchesTable2) {
  // Table 2: lookups — traditional 0, concise < 1, counting = 1 per insert;
  // flips are small for all three.
  ReservoirSample traditional(1000, 27);
  ConciseSampleOptions co;
  co.footprint_bound = 1000;
  co.seed = 28;
  ConciseSample concise(co);
  CountingSampleOptions ko;
  ko.footprint_bound = 1000;
  ko.seed = 29;
  CountingSample counting(ko);
  const std::vector<Value> data = ZipfValues(300000, 5000, 1.0, 30);
  for (Value v : data) {
    traditional.Insert(v);
    concise.Insert(v);
    counting.Insert(v);
  }
  const auto n = static_cast<std::int64_t>(data.size());
  EXPECT_EQ(traditional.Cost().lookups, 0);
  EXPECT_LT(concise.Cost().LookupsPerInsert(n), 0.5);
  EXPECT_DOUBLE_EQ(counting.Cost().LookupsPerInsert(n), 1.0);
  EXPECT_LT(traditional.Cost().FlipsPerInsert(n), 0.1);
  EXPECT_LT(concise.Cost().FlipsPerInsert(n), 0.3);
  EXPECT_LT(counting.Cost().FlipsPerInsert(n), 0.3);
}

}  // namespace
}  // namespace aqua
