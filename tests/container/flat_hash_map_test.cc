#include "container/flat_hash_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "random/random.h"

namespace aqua {
namespace {

using Map = FlatHashMap<std::int64_t, std::int64_t>;

TEST(FlatHashMapTest, StartsEmpty) {
  Map map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.Find(42), nullptr);
  EXPECT_FALSE(map.Contains(42));
}

TEST(FlatHashMapTest, InsertAndFind) {
  Map map;
  auto [v, inserted] = map.TryInsert(1, 100);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*v, 100);
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.Find(1), nullptr);
  EXPECT_EQ(*map.Find(1), 100);
}

TEST(FlatHashMapTest, TryInsertExistingReturnsOldValue) {
  Map map;
  map.TryInsert(1, 100);
  auto [v, inserted] = map.TryInsert(1, 999);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*v, 100);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, SubscriptDefaultConstructs) {
  Map map;
  EXPECT_EQ(map[7], 0);
  map[7] += 5;
  EXPECT_EQ(map[7], 5);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, EraseRemovesKey) {
  Map map;
  map.TryInsert(1, 10);
  map.TryInsert(2, 20);
  EXPECT_TRUE(map.Erase(1));
  EXPECT_FALSE(map.Erase(1));
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.Find(1), nullptr);
  ASSERT_NE(map.Find(2), nullptr);
  EXPECT_EQ(*map.Find(2), 20);
}

TEST(FlatHashMapTest, GrowsPastInitialCapacity) {
  Map map;
  for (std::int64_t i = 0; i < 10000; ++i) map.TryInsert(i, i * 2);
  EXPECT_EQ(map.size(), 10000u);
  for (std::int64_t i = 0; i < 10000; ++i) {
    ASSERT_NE(map.Find(i), nullptr) << i;
    EXPECT_EQ(*map.Find(i), i * 2);
  }
}

TEST(FlatHashMapTest, NegativeAndExtremeKeys) {
  Map map;
  const std::int64_t keys[] = {-1, 0, INT64_MIN, INT64_MAX, -123456789};
  for (std::int64_t k : keys) map.TryInsert(k, k);
  for (std::int64_t k : keys) {
    ASSERT_NE(map.Find(k), nullptr) << k;
    EXPECT_EQ(*map.Find(k), k);
  }
}

TEST(FlatHashMapTest, IteratorVisitsAllEntriesOnce) {
  Map map;
  for (std::int64_t i = 0; i < 100; ++i) map.TryInsert(i, i);
  std::unordered_map<std::int64_t, int> seen;
  for (const auto& entry : map) ++seen[entry.key];
  EXPECT_EQ(seen.size(), 100u);
  for (const auto& [k, n] : seen) {
    EXPECT_EQ(n, 1) << k;
  }
}

TEST(FlatHashMapTest, ClearEmptiesTheMap) {
  Map map;
  for (std::int64_t i = 0; i < 100; ++i) map.TryInsert(i, i);
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(5), nullptr);
  map.TryInsert(5, 50);
  EXPECT_EQ(*map.Find(5), 50);
}

TEST(FlatHashMapTest, RetainIfKeepsAndRemoves) {
  Map map;
  for (std::int64_t i = 0; i < 1000; ++i) map.TryInsert(i, i);
  map.RetainIf([](std::int64_t key, std::int64_t&) { return key % 3 == 0; });
  EXPECT_EQ(map.size(), 334u);  // 0, 3, …, 999
  for (std::int64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(map.Contains(i), i % 3 == 0) << i;
  }
}

TEST(FlatHashMapTest, RetainIfCanMutateValues) {
  Map map;
  for (std::int64_t i = 0; i < 100; ++i) map.TryInsert(i, i);
  map.RetainIf([](std::int64_t, std::int64_t& v) {
    v *= 10;
    return true;
  });
  for (std::int64_t i = 0; i < 100; ++i) EXPECT_EQ(*map.Find(i), i * 10);
}

TEST(FlatHashMapTest, RetainIfVisitsEachEntryExactlyOnce) {
  Map map;
  for (std::int64_t i = 0; i < 500; ++i) map.TryInsert(i, 0);
  std::unordered_map<std::int64_t, int> visits;
  map.RetainIf([&visits](std::int64_t key, std::int64_t&) {
    ++visits[key];
    return key % 2 == 0;
  });
  EXPECT_EQ(visits.size(), 500u);
  for (const auto& [k, n] : visits) {
    EXPECT_EQ(n, 1) << k;
  }
}

TEST(FlatHashMapTest, ReserveAvoidsIncrementalGrowth) {
  Map map(5000);
  const std::size_t cap = map.capacity();
  for (std::int64_t i = 0; i < 5000; ++i) map.TryInsert(i, i);
  EXPECT_EQ(map.capacity(), cap);
}

TEST(FlatHashMapTest, RandomizedOracleComparison) {
  Map map;
  std::unordered_map<std::int64_t, std::int64_t> oracle;
  Random rng(77);
  for (int op = 0; op < 200000; ++op) {
    const std::int64_t key = rng.UniformInt(0, 999);
    switch (rng.UniformInt(0, 2)) {
      case 0: {
        const std::int64_t val = rng.UniformInt(0, 1 << 20);
        const bool fresh = oracle.emplace(key, val).second;
        auto [v, inserted] = map.TryInsert(key, val);
        ASSERT_EQ(inserted, fresh);
        ASSERT_EQ(*v, oracle[key]);
        break;
      }
      case 1: {
        const bool had = oracle.erase(key) > 0;
        ASSERT_EQ(map.Erase(key), had);
        break;
      }
      default: {
        const auto it = oracle.find(key);
        const std::int64_t* v = map.Find(key);
        if (it == oracle.end()) {
          ASSERT_EQ(v, nullptr);
        } else {
          ASSERT_NE(v, nullptr);
          ASSERT_EQ(*v, it->second);
        }
      }
    }
    ASSERT_EQ(map.size(), oracle.size());
  }
}

TEST(IntegerHashTest, AvalanchesLowBits) {
  IntegerHash hash;
  // Sequential keys must not map to sequential hashes (identity hashing is
  // what this type exists to avoid).
  int collisions_mod_small = 0;
  for (std::int64_t i = 0; i < 1024; ++i) {
    if ((hash(i) & 1023) == static_cast<std::size_t>(i & 1023)) {
      ++collisions_mod_small;
    }
  }
  EXPECT_LT(collisions_mod_small, 16);
}

}  // namespace
}  // namespace aqua
