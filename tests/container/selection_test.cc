#include "container/selection.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace aqua {
namespace {

TEST(KthLargestTest, BasicOrderStatistics) {
  const std::vector<int> v = {5, 1, 9, 3, 7};
  EXPECT_EQ(KthLargest(v, 1), 9);
  EXPECT_EQ(KthLargest(v, 2), 7);
  EXPECT_EQ(KthLargest(v, 3), 5);
  EXPECT_EQ(KthLargest(v, 5), 1);
}

TEST(KthLargestTest, KZeroActsAsOne) {
  EXPECT_EQ(KthLargest(std::vector<int>{2, 8, 4}, 0), 8);
}

TEST(KthLargestTest, KBeyondSizeReturnsMinimum) {
  EXPECT_EQ(KthLargest(std::vector<int>{2, 8, 4}, 100), 2);
}

TEST(KthLargestTest, EmptyReturnsSentinel) {
  EXPECT_EQ(KthLargest(std::vector<int>{}, 3, -1), -1);
}

TEST(KthLargestTest, DuplicatesCounted) {
  const std::vector<int> v = {5, 5, 5, 1};
  EXPECT_EQ(KthLargest(v, 3), 5);
  EXPECT_EQ(KthLargest(v, 4), 1);
}

TEST(SortByDescendingTest, SortsByProjection) {
  std::vector<std::string> words = {"bb", "a", "dddd", "ccc"};
  SortByDescending(words, [](const std::string& s) { return s.size(); });
  EXPECT_EQ(words, (std::vector<std::string>{"dddd", "ccc", "bb", "a"}));
}

TEST(SortByDescendingTest, StableForTies) {
  std::vector<std::pair<int, int>> items = {{1, 0}, {2, 1}, {1, 2}, {2, 3}};
  SortByDescending(items, [](const auto& p) { return p.first; });
  EXPECT_EQ(items[0].second, 1);
  EXPECT_EQ(items[1].second, 3);
  EXPECT_EQ(items[2].second, 0);
  EXPECT_EQ(items[3].second, 2);
}

}  // namespace
}  // namespace aqua
