// Group-probe fuzz: the SwissTable-style FlatHashMap (16-slot control-byte
// groups, backward-shift deletion) is driven through long randomized
// insert/erase/find/iterate workloads against a std::unordered_map oracle.
// Erase-heavy phases exercise backward-shift deletion specifically: every
// erase re-tightens a cluster, and any slot the shift mishandles shows up
// as a key the oracle can see but the map cannot (or vice versa).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "container/flat_hash_map.h"
#include "random/random.h"

namespace aqua {
namespace {

using Map = FlatHashMap<std::int64_t, std::int64_t>;
using Oracle = std::unordered_map<std::int64_t, std::int64_t>;

void CheckFullAgreement(const Map& map, const Oracle& oracle) {
  ASSERT_EQ(map.size(), oracle.size());
  for (const auto& [k, v] : oracle) {
    const std::int64_t* got = map.Find(k);
    ASSERT_NE(got, nullptr) << k;
    ASSERT_EQ(*got, v) << k;
  }
  std::size_t seen = 0;
  for (const auto& entry : map) {
    const auto it = oracle.find(entry.key);
    ASSERT_NE(it, oracle.end()) << entry.key;
    ASSERT_EQ(it->second, entry.value);
    ++seen;
  }
  ASSERT_EQ(seen, oracle.size());
}

// Weighted op mix over a keyspace; erase weight cranked up in phases so the
// table repeatedly fills and drains through backward shifts.
void FuzzPhase(Map& map, Oracle& oracle, Random& rng, int ops,
               std::int64_t keyspace, int erase_weight) {
  for (int op = 0; op < ops; ++op) {
    const std::int64_t key = rng.UniformInt(0, keyspace - 1);
    const int dice = static_cast<int>(rng.UniformInt(0, 9));
    if (dice < erase_weight) {
      const bool had = oracle.erase(key) > 0;
      ASSERT_EQ(map.Erase(key), had) << key;
    } else if (dice < erase_weight + 4) {
      const std::int64_t val = rng.UniformInt(0, 1 << 30);
      const bool fresh = oracle.emplace(key, val).second;
      auto [v, inserted] = map.TryInsert(key, val);
      ASSERT_EQ(inserted, fresh) << key;
      ASSERT_EQ(*v, oracle[key]) << key;
    } else {
      const auto it = oracle.find(key);
      const std::int64_t* v = map.Find(key);
      if (it == oracle.end()) {
        ASSERT_EQ(v, nullptr) << key;
      } else {
        ASSERT_NE(v, nullptr) << key;
        ASSERT_EQ(*v, it->second) << key;
      }
    }
    ASSERT_EQ(map.size(), oracle.size());
  }
}

TEST(FlatHashMapFuzzTest, MixedWorkloadAgainstOracle) {
  Map map;
  Oracle oracle;
  Random rng(0x5EED1);
  // Tight keyspace -> dense clusters; wide keyspace -> growth + sparse
  // probes; erase-heavy phases in between drain through backward shifts.
  FuzzPhase(map, oracle, rng, 60000, 500, 2);
  CheckFullAgreement(map, oracle);
  FuzzPhase(map, oracle, rng, 60000, 500, 7);  // erase-heavy drain
  CheckFullAgreement(map, oracle);
  FuzzPhase(map, oracle, rng, 60000, 100000, 2);
  CheckFullAgreement(map, oracle);
  FuzzPhase(map, oracle, rng, 60000, 100000, 7);
  CheckFullAgreement(map, oracle);
}

TEST(FlatHashMapFuzzTest, AdversarialSameGroupKeys) {
  // Keys engineered to share home groups: insert far more than one group
  // width with colliding H1 ranges, then delete in interleaved order so
  // clusters shift across group boundaries and the table wraparound.
  Map map;
  Oracle oracle;
  std::vector<std::int64_t> keys;
  for (std::int64_t i = 0; i < 4096; ++i) keys.push_back(i);
  for (std::int64_t k : keys) {
    map.TryInsert(k, k * 3);
    oracle.emplace(k, k * 3);
  }
  CheckFullAgreement(map, oracle);
  // Delete every other key, then every fourth of the survivors, verifying
  // reachability after each wave of backward shifts.
  for (std::int64_t stride : {2, 4, 8}) {
    for (std::int64_t k = 0; k < 4096; k += stride) {
      const bool had = oracle.erase(k) > 0;
      ASSERT_EQ(map.Erase(k), had) << k;
    }
    CheckFullAgreement(map, oracle);
  }
}

TEST(FlatHashMapFuzzTest, FillDrainRefillKeepsProbesTight) {
  // No tombstones: after a full drain the table must behave exactly like a
  // fresh one (modulo retained capacity).
  Map map;
  for (int round = 0; round < 3; ++round) {
    for (std::int64_t i = 0; i < 2000; ++i) {
      map.TryInsert(i * 7919 + round, i);
    }
    ASSERT_EQ(map.size(), 2000u);
    for (std::int64_t i = 0; i < 2000; ++i) {
      ASSERT_TRUE(map.Erase(i * 7919 + round));
    }
    ASSERT_TRUE(map.empty());
    ASSERT_EQ(map.Find(7919 + round), nullptr);
  }
}

TEST(FlatHashMapFuzzTest, RetainIfUnderChurnMatchesOracle) {
  Map map;
  Oracle oracle;
  Random rng(0x5EED2);
  FuzzPhase(map, oracle, rng, 40000, 3000, 3);
  // Drop odd values via RetainIf; the oracle does the same.
  map.RetainIf([](std::int64_t, std::int64_t& v) { return v % 2 == 0; });
  for (auto it = oracle.begin(); it != oracle.end();) {
    it = it->second % 2 != 0 ? oracle.erase(it) : std::next(it);
  }
  CheckFullAgreement(map, oracle);
  FuzzPhase(map, oracle, rng, 40000, 3000, 3);
  CheckFullAgreement(map, oracle);
}

TEST(FlatHashMapFuzzTest, PrehashedVariantsAgreeWithPlain) {
  Map map;
  IntegerHash hash;
  Random rng(0x5EED3);
  for (int op = 0; op < 50000; ++op) {
    const std::int64_t key = rng.UniformInt(0, 2000);
    const std::size_t h = hash(key);
    switch (rng.UniformInt(0, 2)) {
      case 0:
        map.TryInsertPrehashed(key, h, key + 1);
        break;
      case 1:
        map.Erase(key);
        break;
      default: {
        const std::int64_t* a = map.Find(key);
        const std::int64_t* b = map.FindPrehashed(key, h);
        ASSERT_EQ(a, b);
        break;
      }
    }
  }
  // Prefetch is advisory only — calling it must never perturb state.
  const std::size_t size_before = map.size();
  for (std::int64_t k = 0; k < 100; ++k) map.PrefetchHash(hash(k));
  ASSERT_EQ(map.size(), size_before);
}

}  // namespace
}  // namespace aqua
