// Fuzz-style corpus tests for the cluster-mode decoders — everything that
// consumes bytes written by another process or received over the network:
// DecodeWal (strict mode), DecodeDeltaFrame, DecodeNodeCheckpoint and
// DecodeReservoirSnapshot (snapshot kind 3).  Same contract as
// fuzz_decode_test.cc: malformed input — truncated at any byte, bit-flipped,
// kind-confused, or random garbage — returns a Status error with lengths
// validated before any allocation, and never crashes, reads out of bounds,
// or loops.  The suites run under the ASan/UBSan CI job.
//
// Deterministic corpus: mutations come from fixed-seed xoshiro streams, so
// any failure reproduces exactly from the test name + seed.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/concise_sample.h"
#include "persist/checkpoint.h"
#include "persist/delta_frame.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "random/xoshiro256.h"
#include "sample/reservoir_sample.h"
#include "workload/generators.h"

namespace aqua {
namespace {

// ---------------------------------------------------------------------------
// Corpus builders.

/// A valid WAL byte stream plus the offsets where each record ends (the
/// header end is boundaries[0]) — strict decoding succeeds exactly at
/// these cut points and must fail everywhere else.
struct WalCorpus {
  std::vector<std::uint8_t> bytes;
  std::vector<std::size_t> boundaries;
};

WalCorpus ValidWal(std::uint64_t seed, int records = 48) {
  WalCorpus corpus;
  EncodeWalHeader(static_cast<std::int64_t>(seed % 1000), corpus.bytes);
  corpus.boundaries.push_back(corpus.bytes.size());
  Xoshiro256 rng(seed);
  std::uint64_t next_seq = 1;
  for (int i = 0; i < records; ++i) {
    WalRecord r;
    const std::uint64_t kind = rng() % 8;
    if (kind == 6) {
      r.type = WalRecordType::kExport;
      r.seq = next_seq++;
      r.up_to = static_cast<std::int64_t>(rng() % 100000);
    } else if (kind == 7) {
      r.type = WalRecordType::kCommit;
      r.seq = next_seq - 1;
    } else {
      r.type = WalRecordType::kOp;
      const Value v = static_cast<Value>(rng() % 100000);
      r.op = kind == 5 ? StreamOp::Delete(v) : StreamOp::Insert(v);
    }
    EncodeWalRecord(r, corpus.bytes);
    corpus.boundaries.push_back(corpus.bytes.size());
  }
  return corpus;
}

std::vector<std::uint8_t> SomeStateBlob(std::uint64_t seed) {
  ConciseSample sample(
      ConciseSampleOptions{.footprint_bound = 128, .seed = seed});
  for (Value v : ZipfValues(5000, 300, 1.0, seed)) sample.Insert(v);
  return EncodeSnapshot(sample);
}

std::vector<std::uint8_t> ValidDeltaFrame(std::uint64_t seed) {
  DeltaFrame frame;
  frame.node_id = "node-" + std::to_string(seed % 10);
  frame.seq = seed;
  frame.covers_ops = static_cast<std::int64_t>(seed * 37 % 100000);
  frame.synopses.emplace_back("concise-sample", SomeStateBlob(seed));
  frame.synopses.emplace_back("traditional-sample", SomeStateBlob(seed + 1));
  return EncodeDeltaFrame(frame);
}

std::vector<std::uint8_t> ValidCheckpoint(std::uint64_t seed) {
  NodeCheckpoint cp;
  cp.op_count = static_cast<std::int64_t>(seed % 100000);
  cp.next_seq = seed % 100 + 1;
  cp.exported_up_to = cp.op_count / 2;
  cp.full.push_back({"concise-sample", SomeStateBlob(seed + 2)});
  cp.full.push_back({"traditional-sample", SomeStateBlob(seed + 3)});
  cp.delta.push_back({"concise-sample", SomeStateBlob(seed + 4)});
  return EncodeNodeCheckpoint(cp);
}

std::vector<std::uint8_t> ValidReservoirSnapshot(std::uint64_t seed) {
  ReservoirSample sample(/*capacity=*/128, seed);
  for (Value v : ZipfValues(5000, 300, 1.0, seed)) sample.Insert(v);
  return EncodeSnapshot(sample);
}

// ---------------------------------------------------------------------------
// WAL, strict mode.

TEST(WalFuzz, ValidLogDecodes) {
  const WalCorpus corpus = ValidWal(0xA110);
  const Result<WalContents> wal =
      DecodeWal(corpus.bytes, WalReadMode::kStrict);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal.ValueOrDie().records.size(), corpus.boundaries.size() - 1);
  EXPECT_TRUE(wal.ValueOrDie().clean);
}

TEST(WalFuzz, TruncationAtEveryByteFailsUnlessOnARecordBoundary) {
  const WalCorpus corpus = ValidWal(0xA111);
  std::size_t boundary_ix = 0;
  for (std::size_t cut = 0; cut <= corpus.bytes.size(); ++cut) {
    while (boundary_ix < corpus.boundaries.size() &&
           corpus.boundaries[boundary_ix] < cut) {
      ++boundary_ix;
    }
    const bool on_boundary = boundary_ix < corpus.boundaries.size() &&
                             corpus.boundaries[boundary_ix] == cut;
    const Result<WalContents> wal =
        DecodeWal(corpus.bytes.data(), cut, WalReadMode::kStrict);
    if (on_boundary) {
      ASSERT_TRUE(wal.ok()) << "cut=" << cut;
      EXPECT_EQ(wal.ValueOrDie().records.size(), boundary_ix)
          << "cut=" << cut;
    } else {
      ASSERT_FALSE(wal.ok()) << "cut=" << cut;
      EXPECT_EQ(wal.status().code(), StatusCode::kInvalidArgument)
          << "cut=" << cut;
    }
  }
}

TEST(WalFuzz, GarbageTailIsRejectedBeforeAnyAllocation) {
  // A huge forged payload length must be rejected by comparing against the
  // remaining bytes, not by attempting the allocation (ASan would flag the
  // latter as an OOM or overflow).
  WalCorpus corpus = ValidWal(0xA112, /*records=*/4);
  std::vector<std::uint8_t> forged = corpus.bytes;
  // key = (payload_len << 2) | type with an absurd payload_len, LEB128.
  for (const std::uint8_t b : {0xFC, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}) {
    forged.push_back(b);
  }
  const Result<WalContents> strict =
      DecodeWal(forged, WalReadMode::kStrict);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kInvalidArgument);
  // Tolerant mode treats it as a torn tail: valid prefix survives.
  const Result<WalContents> tolerant =
      DecodeWal(forged, WalReadMode::kTolerateTornTail);
  ASSERT_TRUE(tolerant.ok());
  EXPECT_FALSE(tolerant.ValueOrDie().clean);
  EXPECT_EQ(tolerant.ValueOrDie().valid_bytes, corpus.bytes.size());
}

TEST(WalFuzz, BitFlipCorpusNeverCrashes) {
  const WalCorpus corpus = ValidWal(0xA113);
  Xoshiro256 rng(0x0F11B6);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<std::uint8_t> mutated = corpus.bytes;
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    // Either mode: ok or error, never a crash.  Tolerant mode must also
    // keep valid_bytes inside the buffer.
    (void)DecodeWal(mutated, WalReadMode::kStrict);
    const Result<WalContents> tolerant =
        DecodeWal(mutated, WalReadMode::kTolerateTornTail);
    if (tolerant.ok()) {
      EXPECT_LE(tolerant.ValueOrDie().valid_bytes, mutated.size());
    }
  }
}

TEST(WalFuzz, RandomGarbageNeverCrashes) {
  Xoshiro256 rng(0x6A42BA62);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(rng() % 128);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    (void)DecodeWal(bytes, WalReadMode::kStrict);
    (void)DecodeWal(bytes, WalReadMode::kTolerateTornTail);
  }
}

// ---------------------------------------------------------------------------
// Delta frames (the bytes POSTed to /cluster/push — fully untrusted).

TEST(DeltaFrameFuzz, ValidFrameRoundTrips) {
  const std::vector<std::uint8_t> bytes = ValidDeltaFrame(7);
  const Result<DeltaFrame> frame = DecodeDeltaFrame(bytes);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.ValueOrDie().node_id, "node-7");
  EXPECT_EQ(frame.ValueOrDie().seq, 7u);
  ASSERT_EQ(frame.ValueOrDie().synopses.size(), 2u);
  EXPECT_EQ(frame.ValueOrDie().synopses[0].first, "concise-sample");
}

TEST(DeltaFrameFuzz, TruncationAtEveryByteFails) {
  const std::vector<std::uint8_t> bytes = ValidDeltaFrame(8);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const Result<DeltaFrame> frame = DecodeDeltaFrame(bytes.data(), cut);
    ASSERT_FALSE(frame.ok()) << "cut=" << cut;
    EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument)
        << "cut=" << cut;
  }
}

TEST(DeltaFrameFuzz, TrailingGarbageFails) {
  std::vector<std::uint8_t> bytes = ValidDeltaFrame(9);
  bytes.push_back(0x00);
  EXPECT_FALSE(DecodeDeltaFrame(bytes).ok());
}

TEST(DeltaFrameFuzz, BitFlipCorpusNeverCrashes) {
  const std::vector<std::uint8_t> bytes = ValidDeltaFrame(10);
  Xoshiro256 rng(0x0F11B7);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<std::uint8_t> mutated = bytes;
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    (void)DecodeDeltaFrame(mutated);  // ok or error — never a crash
  }
}

TEST(DeltaFrameFuzz, RandomGarbageNeverCrashes) {
  Xoshiro256 rng(0x6A42BA63);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(rng() % 256);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    (void)DecodeDeltaFrame(bytes);
  }
}

TEST(DeltaFrameFuzz, StringOverloadMatchesPointerOverload) {
  // The HTTP route decodes straight from the request-body string; both
  // entry points must agree byte for byte.
  const std::vector<std::uint8_t> bytes = ValidDeltaFrame(11);
  const std::string as_string(reinterpret_cast<const char*>(bytes.data()),
                              bytes.size());
  const Result<DeltaFrame> a = DecodeDeltaFrame(bytes);
  const Result<DeltaFrame> b = DecodeDeltaFrame(as_string);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.ValueOrDie().node_id, b.ValueOrDie().node_id);
  EXPECT_EQ(a.ValueOrDie().synopses, b.ValueOrDie().synopses);
}

// ---------------------------------------------------------------------------
// Node checkpoints (read back at recovery time; may be torn by crashes in
// exotic filesystems even though the writer is rename-atomic).

TEST(CheckpointFuzz, ValidCheckpointRoundTrips) {
  const std::vector<std::uint8_t> bytes = ValidCheckpoint(20);
  const Result<NodeCheckpoint> cp = DecodeNodeCheckpoint(bytes);
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(cp.ValueOrDie().op_count, 20);
  ASSERT_EQ(cp.ValueOrDie().full.size(), 2u);
  ASSERT_EQ(cp.ValueOrDie().delta.size(), 1u);
}

TEST(CheckpointFuzz, TruncationAtEveryByteFails) {
  const std::vector<std::uint8_t> bytes = ValidCheckpoint(21);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const Result<NodeCheckpoint> cp = DecodeNodeCheckpoint(bytes.data(), cut);
    ASSERT_FALSE(cp.ok()) << "cut=" << cut;
  }
}

TEST(CheckpointFuzz, BitFlipCorpusNeverCrashes) {
  const std::vector<std::uint8_t> bytes = ValidCheckpoint(22);
  Xoshiro256 rng(0x0F11B8);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<std::uint8_t> mutated = bytes;
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    (void)DecodeNodeCheckpoint(mutated);
  }
}

TEST(CheckpointFuzz, RandomGarbageNeverCrashes) {
  Xoshiro256 rng(0x6A42BA64);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(rng() % 256);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    (void)DecodeNodeCheckpoint(bytes);
  }
}

// ---------------------------------------------------------------------------
// Reservoir snapshots (kind 3) — the codec this PR added so traditional
// samples survive checkpoints and ship inside delta frames.

TEST(ReservoirSnapshotFuzz, ValidSnapshotRoundTrips) {
  EXPECT_TRUE(
      DecodeReservoirSnapshot(ValidReservoirSnapshot(30), 99).ok());
}

TEST(ReservoirSnapshotFuzz, TruncationAtEveryBoundaryNeverCrashes) {
  const std::vector<std::uint8_t> bytes = ValidReservoirSnapshot(31);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + cut);
    EXPECT_FALSE(DecodeReservoirSnapshot(prefix, 1).ok()) << "cut=" << cut;
  }
}

TEST(ReservoirSnapshotFuzz, KindConfusionFails) {
  // Reservoir snapshots to the concise decoder and vice versa: the kind
  // byte must reject them, not mis-parse counts as capacities.
  EXPECT_FALSE(DecodeConciseSnapshot(ValidReservoirSnapshot(32), 1).ok());
  EXPECT_FALSE(DecodeReservoirSnapshot(SomeStateBlob(33), 1).ok());
}

TEST(ReservoirSnapshotFuzz, BitFlipCorpusNeverCrashes) {
  const std::vector<std::uint8_t> bytes = ValidReservoirSnapshot(34);
  Xoshiro256 rng(0x0F11B9);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<std::uint8_t> mutated = bytes;
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    (void)DecodeReservoirSnapshot(mutated, 1);
  }
}

TEST(ReservoirSnapshotFuzz, RandomGarbageNeverCrashes) {
  Xoshiro256 rng(0x6A42BA65);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<std::uint8_t> bytes(rng() % 128);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    (void)DecodeReservoirSnapshot(bytes, 1);
  }
}

}  // namespace
}  // namespace aqua
