// The cluster WAL: append/flush/read round trips, the export/commit marker
// protocol, append-mode reopen, and the two read modes' contract — strict
// rejects any anomaly, torn-tail recovery salvages the valid prefix and
// reports where it ends (the byte recovery truncates the file at).

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/wal.h"

namespace aqua {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<std::uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

/// A representative log: ops, an export round, its commit, more ops.
std::vector<WalRecord> SampleRecords() {
  std::vector<WalRecord> records;
  for (int i = 0; i < 10; ++i) {
    WalRecord r;
    r.type = WalRecordType::kOp;
    r.op = (i % 4 == 3) ? StreamOp::Delete(i * 7) : StreamOp::Insert(i * 7);
    records.push_back(r);
  }
  WalRecord exported;
  exported.type = WalRecordType::kExport;
  exported.seq = 3;
  exported.up_to = 110;
  records.push_back(exported);
  WalRecord committed;
  committed.type = WalRecordType::kCommit;
  committed.seq = 3;
  records.push_back(committed);
  for (int i = 0; i < 5; ++i) {
    WalRecord r;
    r.type = WalRecordType::kOp;
    r.op = StreamOp::Insert(-i * 1000);
    records.push_back(r);
  }
  return records;
}

std::vector<std::uint8_t> EncodeSample(std::int64_t base) {
  std::vector<std::uint8_t> bytes;
  EncodeWalHeader(base, bytes);
  for (const WalRecord& r : SampleRecords()) EncodeWalRecord(r, bytes);
  return bytes;
}

void ExpectSampleRecords(const WalContents& wal) {
  const std::vector<WalRecord> expected = SampleRecords();
  ASSERT_EQ(wal.records.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(wal.records[i].type, expected[i].type) << "record " << i;
    if (expected[i].type == WalRecordType::kOp) {
      EXPECT_EQ(wal.records[i].op, expected[i].op) << "record " << i;
    } else {
      EXPECT_EQ(wal.records[i].seq, expected[i].seq) << "record " << i;
    }
    if (expected[i].type == WalRecordType::kExport) {
      EXPECT_EQ(wal.records[i].up_to, expected[i].up_to) << "record " << i;
    }
  }
}

TEST(WalTest, WriterRoundTripsThroughBothReadModes) {
  const std::string path = TempPath("wal_roundtrip");
  {
    WalWriter writer(path, /*base_op_count=*/42,
                     WalWriter::OpenMode::kTruncate);
    ASSERT_TRUE(writer.status().ok());
    for (const WalRecord& r : SampleRecords()) {
      switch (r.type) {
        case WalRecordType::kOp:
          writer.AppendOp(r.op);
          break;
        case WalRecordType::kExport:
          writer.AppendExportMarker(r.seq, r.up_to);
          break;
        case WalRecordType::kCommit:
          writer.AppendCommitMarker(r.seq);
          break;
      }
    }
    ASSERT_TRUE(writer.Flush().ok());
  }
  for (const WalReadMode mode :
       {WalReadMode::kStrict, WalReadMode::kTolerateTornTail}) {
    const Result<WalContents> wal = ReadWalFile(path, mode);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(wal.ValueOrDie().base_op_count, 42);
    EXPECT_TRUE(wal.ValueOrDie().clean);
    ExpectSampleRecords(wal.ValueOrDie());
  }
}

TEST(WalTest, AppendModeContinuesAnExistingLog) {
  const std::string path = TempPath("wal_append");
  {
    WalWriter writer(path, 0, WalWriter::OpenMode::kTruncate);
    writer.AppendOp(StreamOp::Insert(1));
    ASSERT_TRUE(writer.Flush().ok());
  }
  {
    WalWriter writer(path, 0, WalWriter::OpenMode::kAppend);
    ASSERT_TRUE(writer.status().ok());
    writer.AppendOp(StreamOp::Insert(2));
    writer.AppendCommitMarker(9);
    ASSERT_TRUE(writer.Flush().ok());
  }
  const Result<WalContents> wal = ReadWalFile(path, WalReadMode::kStrict);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(wal.ValueOrDie().records.size(), 3u);
  EXPECT_EQ(wal.ValueOrDie().records[0].op, StreamOp::Insert(1));
  EXPECT_EQ(wal.ValueOrDie().records[1].op, StreamOp::Insert(2));
  EXPECT_EQ(wal.ValueOrDie().records[2].seq, 9u);
}

TEST(WalTest, TruncateOpensAFreshLogOverAnOldOne) {
  const std::string path = TempPath("wal_rotate");
  {
    WalWriter writer(path, 0, WalWriter::OpenMode::kTruncate);
    for (int i = 0; i < 100; ++i) writer.AppendOp(StreamOp::Insert(i));
    ASSERT_TRUE(writer.Flush().ok());
  }
  {
    WalWriter writer(path, 100, WalWriter::OpenMode::kTruncate);
    ASSERT_TRUE(writer.Flush().ok());
  }
  const Result<WalContents> wal = ReadWalFile(path, WalReadMode::kStrict);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal.ValueOrDie().base_op_count, 100);
  EXPECT_TRUE(wal.ValueOrDie().records.empty());
}

TEST(WalTest, TornTailRecoversTheValidPrefix) {
  const std::vector<std::uint8_t> bytes = EncodeSample(7);
  // Find the record boundaries by re-encoding incrementally.
  std::vector<std::size_t> boundaries;
  {
    std::vector<std::uint8_t> partial;
    EncodeWalHeader(7, partial);
    boundaries.push_back(partial.size());
    for (const WalRecord& r : SampleRecords()) {
      EncodeWalRecord(r, partial);
      boundaries.push_back(partial.size());
    }
    ASSERT_EQ(partial.size(), bytes.size());
  }
  const std::size_t header_end = boundaries.front();
  for (std::size_t cut = header_end; cut < bytes.size(); ++cut) {
    const Result<WalContents> wal =
        DecodeWal(bytes.data(), cut, WalReadMode::kTolerateTornTail);
    ASSERT_TRUE(wal.ok()) << "cut=" << cut;
    // The salvage stops at the last complete record before the cut.
    std::size_t complete = 0;
    std::size_t valid_end = header_end;
    while (complete + 1 < boundaries.size() &&
           boundaries[complete + 1] <= cut) {
      ++complete;
      valid_end = boundaries[complete];
    }
    EXPECT_EQ(wal.ValueOrDie().records.size(), complete) << "cut=" << cut;
    EXPECT_EQ(wal.ValueOrDie().valid_bytes, valid_end) << "cut=" << cut;
    EXPECT_EQ(wal.ValueOrDie().clean, cut == valid_end) << "cut=" << cut;
  }
}

TEST(WalTest, StrictModeRejectsATornTail) {
  const std::vector<std::uint8_t> bytes = EncodeSample(0);
  // One byte short of complete: strict refuses, tolerant salvages.
  const Result<WalContents> strict =
      DecodeWal(bytes.data(), bytes.size() - 1, WalReadMode::kStrict);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kInvalidArgument);
  const Result<WalContents> tolerant = DecodeWal(
      bytes.data(), bytes.size() - 1, WalReadMode::kTolerateTornTail);
  ASSERT_TRUE(tolerant.ok());
  EXPECT_FALSE(tolerant.ValueOrDie().clean);
}

TEST(WalTest, HeaderAnomaliesFailInBothModes) {
  std::vector<std::uint8_t> bytes = EncodeSample(0);
  bytes[0] ^= 0xFF;  // magic
  for (const WalReadMode mode :
       {WalReadMode::kStrict, WalReadMode::kTolerateTornTail}) {
    const Result<WalContents> wal = DecodeWal(bytes, mode);
    ASSERT_FALSE(wal.ok());
    EXPECT_EQ(wal.status().code(), StatusCode::kInvalidArgument);
  }
  // A header cut mid-varint is an error too — no prefix worth salvaging.
  const std::vector<std::uint8_t> valid = EncodeSample(1234567);
  for (const WalReadMode mode :
       {WalReadMode::kStrict, WalReadMode::kTolerateTornTail}) {
    EXPECT_FALSE(DecodeWal(valid.data(), 3, mode).ok());
  }
}

TEST(WalTest, ChecksumCatchesABitFlipInEveryRecordField) {
  const std::vector<std::uint8_t> clean = EncodeSample(0);
  std::vector<std::uint8_t> header_only;
  EncodeWalHeader(0, header_only);
  // Flip one bit in each byte of the first record; strict must reject every
  // mutation (key, payload and checksum are all covered).
  std::vector<std::uint8_t> one_record = header_only;
  EncodeWalRecord(SampleRecords()[0], one_record);
  for (std::size_t at = header_only.size(); at < one_record.size(); ++at) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> mutated = one_record;
      mutated[at] ^= static_cast<std::uint8_t>(1u << bit);
      const Result<WalContents> wal =
          DecodeWal(mutated, WalReadMode::kStrict);
      if (wal.ok()) {
        // A flip may still parse as a *different* valid record only if the
        // folded checksum collides; assert the decode at least never
        // reproduces the original record silently under a changed wire.
        ASSERT_EQ(wal.ValueOrDie().records.size(), 1u);
      }
    }
  }
  // Unknown record type: forge key = (0 << 2) | 3.
  std::vector<std::uint8_t> forged = header_only;
  forged.push_back(0x03);
  forged.push_back(0x00);
  EXPECT_FALSE(DecodeWal(forged, WalReadMode::kStrict).ok());
  (void)clean;
}

TEST(WalTest, MissingFileIsNotFound) {
  const Result<WalContents> wal =
      ReadWalFile(TempPath("no_such_wal"), WalReadMode::kStrict);
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kNotFound);
}

TEST(WalTest, FileTruncationThenAppendMatchesRecoveryFlow) {
  // The recovery sequence end to end at the byte level: write, tear the
  // tail, salvage, truncate to valid_bytes, reopen for append, write more,
  // and the final strict read sees old prefix + new records.
  const std::string path = TempPath("wal_recovery_flow");
  {
    WalWriter writer(path, 5, WalWriter::OpenMode::kTruncate);
    writer.AppendOp(StreamOp::Insert(11));
    writer.AppendOp(StreamOp::Insert(22));
    ASSERT_TRUE(writer.Flush().ok());
  }
  // Tear: append half a record's worth of garbage.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.put('\x7F');
    out.put('\x01');
  }
  const Result<WalContents> salvaged =
      ReadWalFile(path, WalReadMode::kTolerateTornTail);
  ASSERT_TRUE(salvaged.ok());
  EXPECT_FALSE(salvaged.ValueOrDie().clean);
  ASSERT_EQ(salvaged.ValueOrDie().records.size(), 2u);
  // Truncate to the valid prefix, then append.
  {
    const std::vector<std::uint8_t> bytes = ReadFileBytes(path);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(salvaged.ValueOrDie().valid_bytes));
  }
  {
    WalWriter writer(path, 5, WalWriter::OpenMode::kAppend);
    writer.AppendOp(StreamOp::Insert(33));
    ASSERT_TRUE(writer.Flush().ok());
  }
  const Result<WalContents> final_read =
      ReadWalFile(path, WalReadMode::kStrict);
  ASSERT_TRUE(final_read.ok());
  ASSERT_EQ(final_read.ValueOrDie().records.size(), 3u);
  EXPECT_EQ(final_read.ValueOrDie().records[2].op, StreamOp::Insert(33));
}

}  // namespace
}  // namespace aqua
