#include "persist/varint.h"

#include <gtest/gtest.h>

#include <limits>

#include "random/random.h"

namespace aqua {
namespace {

TEST(VarintTest, SmallValuesAreOneByte) {
  std::vector<std::uint8_t> out;
  PutVarint(0, out);
  PutVarint(127, out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(VarintTest, BoundaryValuesRoundTrip) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 std::numeric_limits<std::uint32_t>::max(),
                                 std::numeric_limits<std::uint64_t>::max()};
  std::vector<std::uint8_t> out;
  for (std::uint64_t v : cases) PutVarint(v, out);
  VarintReader reader(out);
  for (std::uint64_t v : cases) {
    auto r = reader.Next();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, v);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(VarintTest, SignedZigzagRoundTrip) {
  const std::int64_t cases[] = {0,
                                -1,
                                1,
                                -64,
                                64,
                                std::numeric_limits<std::int64_t>::min(),
                                std::numeric_limits<std::int64_t>::max()};
  std::vector<std::uint8_t> out;
  for (std::int64_t v : cases) PutVarintSigned(v, out);
  VarintReader reader(out);
  for (std::int64_t v : cases) {
    auto r = reader.NextSigned();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, v);
  }
}

TEST(VarintTest, ZigzagMapsSmallMagnitudesToSmallCodes) {
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
  EXPECT_EQ(ZigzagEncode(-2), 3u);
  EXPECT_EQ(ZigzagDecode(ZigzagEncode(-123456789)), -123456789);
}

TEST(VarintTest, TruncatedInputErrors) {
  std::vector<std::uint8_t> out;
  PutVarint(1u << 20, out);
  out.pop_back();  // drop the terminating byte
  VarintReader reader(out);
  EXPECT_TRUE(reader.Next().status().IsOutOfRange());
}

TEST(VarintTest, EmptyInputErrors) {
  std::vector<std::uint8_t> empty;
  VarintReader reader(empty);
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_TRUE(reader.Next().status().IsOutOfRange());
}

TEST(VarintTest, RandomizedRoundTrip) {
  Random rng(1);
  std::vector<std::uint64_t> values;
  std::vector<std::uint8_t> out;
  for (int i = 0; i < 10000; ++i) {
    // Mix magnitudes: shift a full-width draw by a random amount.
    const std::uint64_t v = rng.NextU64() >> rng.UniformInt(0, 63);
    values.push_back(v);
    PutVarint(v, out);
  }
  VarintReader reader(out);
  for (std::uint64_t v : values) {
    auto r = reader.Next();
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(*r, v);
  }
  EXPECT_TRUE(reader.AtEnd());
}

}  // namespace
}  // namespace aqua
