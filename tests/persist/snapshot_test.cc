#include "persist/snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/generators.h"

namespace aqua {
namespace {

template <typename S>
std::vector<ValueCount> SortedEntries(const S& s) {
  std::vector<ValueCount> entries = s.Entries();
  std::sort(entries.begin(), entries.end(),
            [](const ValueCount& a, const ValueCount& b) {
              return a.value < b.value;
            });
  return entries;
}

TEST(SnapshotTest, ConciseRoundTripPreservesState) {
  ConciseSample original(
      ConciseSampleOptions{.footprint_bound = 300, .seed = 1});
  for (Value v : ZipfValues(100000, 2000, 1.25, 2)) original.Insert(v);

  const std::vector<std::uint8_t> bytes = EncodeSnapshot(original);
  auto restored = DecodeConciseSnapshot(bytes, /*seed=*/99);
  ASSERT_TRUE(restored.ok()) << restored.status();

  EXPECT_EQ(restored->SampleSize(), original.SampleSize());
  EXPECT_EQ(restored->Footprint(), original.Footprint());
  EXPECT_EQ(restored->DistinctValues(), original.DistinctValues());
  EXPECT_DOUBLE_EQ(restored->Threshold(), original.Threshold());
  EXPECT_EQ(restored->ObservedInserts(), original.ObservedInserts());
  EXPECT_EQ(SortedEntries(*restored), SortedEntries(original));
  EXPECT_TRUE(restored->Validate().ok());
}

TEST(SnapshotTest, CountingRoundTripPreservesState) {
  CountingSample original(
      CountingSampleOptions{.footprint_bound = 300, .seed = 3});
  for (Value v : ZipfValues(100000, 2000, 1.25, 4)) original.Insert(v);

  const std::vector<std::uint8_t> bytes = EncodeSnapshot(original);
  auto restored = DecodeCountingSnapshot(bytes, /*seed=*/98);
  ASSERT_TRUE(restored.ok()) << restored.status();

  EXPECT_EQ(restored->CountedOccurrences(), original.CountedOccurrences());
  EXPECT_EQ(restored->Footprint(), original.Footprint());
  EXPECT_DOUBLE_EQ(restored->Threshold(), original.Threshold());
  EXPECT_EQ(SortedEntries(*restored), SortedEntries(original));
  EXPECT_TRUE(restored->Validate().ok());
}

TEST(SnapshotTest, RestoredSampleKeepsWorking) {
  ConciseSample original(
      ConciseSampleOptions{.footprint_bound = 200, .seed = 5});
  const std::vector<Value> first = ZipfValues(50000, 1000, 1.0, 6);
  const std::vector<Value> second = ZipfValues(50000, 1000, 1.0, 7);
  for (Value v : first) original.Insert(v);

  auto restored = DecodeConciseSnapshot(EncodeSnapshot(original), 100);
  ASSERT_TRUE(restored.ok());
  for (Value v : second) {
    original.Insert(v);
    restored->Insert(v);
  }
  ASSERT_TRUE(restored->Validate().ok());
  EXPECT_LE(restored->Footprint(), 200);
  // Different random streams, same distribution: sample-sizes agree within
  // statistical noise.
  EXPECT_NEAR(static_cast<double>(restored->SampleSize()),
              static_cast<double>(original.SampleSize()),
              0.35 * static_cast<double>(original.SampleSize()));
}

TEST(SnapshotTest, SnapshotIsCompact) {
  // ~150 entries with delta-coded values and varint counts: a few bytes per
  // entry, far below the 8-bytes-per-word in-memory image.
  ConciseSample s(ConciseSampleOptions{.footprint_bound = 300, .seed = 8});
  for (Value v : ZipfValues(100000, 2000, 1.0, 9)) s.Insert(v);
  const std::vector<std::uint8_t> bytes = EncodeSnapshot(s);
  EXPECT_LT(static_cast<Words>(bytes.size()), s.Footprint() * 8);
  EXPECT_GT(bytes.size(), 16u);
}

TEST(SnapshotTest, RejectsWrongKind) {
  ConciseSample concise(
      ConciseSampleOptions{.footprint_bound = 100, .seed = 10});
  concise.Insert(1);
  EXPECT_TRUE(DecodeCountingSnapshot(EncodeSnapshot(concise), 1)
                  .status()
                  .IsInvalidArgument());
}

TEST(SnapshotTest, RejectsCorruptMagicAndTruncation) {
  ConciseSample s(ConciseSampleOptions{.footprint_bound = 100, .seed = 11});
  for (Value v = 0; v < 50; ++v) s.Insert(v);
  std::vector<std::uint8_t> bytes = EncodeSnapshot(s);

  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(DecodeConciseSnapshot(bad_magic, 1).ok());

  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.end() - 3);
  EXPECT_FALSE(DecodeConciseSnapshot(truncated, 1).ok());

  std::vector<std::uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(DecodeConciseSnapshot(trailing, 1).ok());
}

TEST(RestoreTest, RejectsInvalidState) {
  ConciseSampleOptions o{.footprint_bound = 4, .seed = 12};
  // Footprint bound exceeded.
  EXPECT_TRUE(ConciseSample::Restore(o, 2.0, 10,
                                     {{1, 5}, {2, 5}, {3, 1}})
                  .status()
                  .IsInvalidArgument());
  // Bad threshold / counts / duplicates.
  EXPECT_FALSE(ConciseSample::Restore(o, 0.5, 10, {{1, 1}}).ok());
  EXPECT_FALSE(ConciseSample::Restore(o, 2.0, 10, {{1, 0}}).ok());
  EXPECT_FALSE(ConciseSample::Restore(o, 2.0, 10, {{1, 1}, {1, 2}}).ok());
  EXPECT_FALSE(ConciseSample::Restore(o, 2.0, -1, {{1, 1}}).ok());
  // A valid restore for contrast.
  EXPECT_TRUE(ConciseSample::Restore(o, 2.0, 10, {{1, 3}, {2, 1}}).ok());
}

}  // namespace
}  // namespace aqua
