#include "persist/op_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/counting_sample.h"
#include "persist/snapshot.h"
#include "warehouse/relation.h"
#include "workload/generators.h"

namespace aqua {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(OpLogTest, RoundTripsMixedOps) {
  const std::string path = TempPath("roundtrip.log");
  const UpdateStream stream = MixedStream(20000, 500, 1.0, 0.3, 1000, 1);
  {
    OpLogWriter writer(path);
    ASSERT_TRUE(writer.status().ok());
    for (const StreamOp& op : stream) writer.Append(op);
    ASSERT_TRUE(writer.Flush().ok());
    EXPECT_EQ(writer.size(), static_cast<std::int64_t>(stream.size()));
  }
  auto read = ReadOpLog(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, stream);
  std::remove(path.c_str());
}

TEST(OpLogTest, EmptyLog) {
  const std::string path = TempPath("empty.log");
  {
    OpLogWriter writer(path);
    ASSERT_TRUE(writer.Flush().ok());
  }
  auto read = ReadOpLog(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
  std::remove(path.c_str());
}

TEST(OpLogTest, UnwritablePathReportsError) {
  OpLogWriter writer("/nonexistent-dir/impossible.log");
  EXPECT_FALSE(writer.status().ok());
  writer.Append(StreamOp::Insert(1));
  EXPECT_FALSE(writer.Flush().ok());
}

TEST(OpLogTest, MissingFileIsNotFound) {
  EXPECT_TRUE(ReadOpLog(TempPath("does-not-exist.log")).status().IsNotFound());
}

TEST(OpLogTest, NegativeValuesSurvive) {
  const std::string path = TempPath("negative.log");
  const UpdateStream stream = {StreamOp::Insert(-5), StreamOp::Delete(-5),
                               StreamOp::Insert(INT64_MIN / 2)};
  {
    OpLogWriter writer(path);
    for (const StreamOp& op : stream) writer.Append(op);
    ASSERT_TRUE(writer.Flush().ok());
  }
  auto read = ReadOpLog(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, stream);
  std::remove(path.c_str());
}

TEST(OpLogTest, CompactEncoding) {
  const std::string path = TempPath("compact.log");
  const std::vector<Value> values = ZipfValues(50000, 1000, 1.0, 2);
  {
    OpLogWriter writer(path);
    for (Value v : values) writer.Append(StreamOp::Insert(v));
    ASSERT_TRUE(writer.Flush().ok());
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto bytes = static_cast<double>(in.tellg());
  // Zipf values over [1,1000] pack into ~1.5 bytes/op.
  EXPECT_LT(bytes / static_cast<double>(values.size()), 2.5);
  std::remove(path.c_str());
}

TEST(OpLogTest, SnapshotPlusLogRecovery) {
  // The footnote-2 recovery protocol end to end: run a counting sample,
  // snapshot it, keep logging the tail of the stream, "crash", then
  // recover = decode snapshot + replay the log suffix.  The recovered
  // synopsis must satisfy the counting-sample invariants against the full
  // relation.
  const std::string path = TempPath("recovery.log");
  const UpdateStream stream = MixedStream(120000, 1000, 1.2, 0.2, 5000, 3);
  const std::size_t snapshot_at = stream.size() / 2;

  CountingSample live(
      CountingSampleOptions{.footprint_bound = 200, .seed = 4});
  Relation relation;
  std::vector<std::uint8_t> snapshot;
  {
    OpLogWriter writer(path);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const StreamOp& op = stream[i];
      if (op.kind == StreamOp::Kind::kInsert) {
        live.Insert(op.value);
        relation.Insert(op.value);
      } else {
        ASSERT_TRUE(live.Delete(op.value).ok());
        ASSERT_TRUE(relation.Delete(op.value).ok());
      }
      if (i + 1 == snapshot_at) {
        snapshot = EncodeSnapshot(live);
      } else if (i + 1 > snapshot_at) {
        writer.Append(op);
      }
    }
    ASSERT_TRUE(writer.Flush().ok());
  }

  auto recovered = DecodeCountingSnapshot(snapshot, /*seed=*/77);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  auto tail = ReadOpLog(path);
  ASSERT_TRUE(tail.ok());
  ASSERT_TRUE(ReplayInto(*recovered, *tail).ok());

  ASSERT_TRUE(recovered->Validate().ok());
  EXPECT_LE(recovered->Footprint(), 200);
  // Counting-sample invariant vs the ground truth: counts never exceed
  // true frequencies.
  for (const ValueCount& e : recovered->Entries()) {
    EXPECT_LE(e.count, relation.FrequencyOf(e.value)) << e.value;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aqua
