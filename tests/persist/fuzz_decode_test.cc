// Fuzz-style corpus tests for the persistence decoders: every decoder that
// consumes untrusted bytes (VarintReader, ReadOpLog, DecodeConciseSnapshot,
// DecodeCountingSnapshot) must return a Status error on malformed input —
// truncated at any byte boundary, bit-flipped, overlong, or outright random
// garbage — and must never crash, read out of bounds, or loop forever.
// The suites run under the ASan/UBSan CI job, which is what turns "never
// reads out of bounds" from a comment into a checked property.
//
// Deterministic corpus: mutations are driven by fixed-seed xoshiro streams,
// so a failure reproduces exactly from the test name + seed.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "persist/op_log.h"
#include "persist/snapshot.h"
#include "persist/varint.h"
#include "random/xoshiro256.h"
#include "workload/generators.h"

namespace aqua {
namespace {

/// Decoding is allowed to succeed (a mutation can produce a different but
/// valid document) or fail with a Status — anything but a crash.  Returns
/// whether it succeeded, so tests can also assert specific cases fail.
bool TryDecodeVarints(const std::vector<std::uint8_t>& bytes) {
  VarintReader reader(bytes);
  while (!reader.AtEnd()) {
    const Result<std::uint64_t> next = reader.Next();
    if (!next.ok()) return false;
  }
  return true;
}

std::string WriteTempFile(const std::string& name,
                          const std::vector<std::uint8_t>& bytes) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return path;
}

bool TryDecodeOpLog(const std::string& test_name,
                    const std::vector<std::uint8_t>& bytes) {
  const Result<UpdateStream> ops =
      ReadOpLog(WriteTempFile(test_name, bytes));
  return ops.ok();
}

std::vector<std::uint8_t> ValidVarintBuffer(std::uint64_t seed,
                                            int count = 64) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < count; ++i) {
    // Mix magnitudes so 1-byte through 10-byte encodings all appear.
    const int shift = static_cast<int>(rng() % 64);
    PutVarint(rng() >> shift, bytes);
    PutVarintSigned(static_cast<std::int64_t>(rng()) >> shift, bytes);
  }
  return bytes;
}

TEST(VarintFuzz, TruncationAtEveryBoundaryNeverCrashes) {
  const std::vector<std::uint8_t> bytes = ValidVarintBuffer(0xF00D);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + cut);
    TryDecodeVarints(prefix);  // must terminate without crashing
  }
  EXPECT_TRUE(TryDecodeVarints(bytes));
}

TEST(VarintFuzz, TruncatedMidVarintFails) {
  std::vector<std::uint8_t> bytes;
  PutVarint(0x1234567890ABCDEFULL, bytes);  // multi-byte encoding
  ASSERT_GT(bytes.size(), 1u);
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + cut);
    VarintReader reader(prefix);
    const Result<std::uint64_t> next = reader.Next();
    EXPECT_FALSE(next.ok()) << "cut=" << cut;
    EXPECT_EQ(next.status().code(), StatusCode::kOutOfRange);
  }
}

TEST(VarintFuzz, OverlongEncodingsFail) {
  // 10 continuation bytes followed by a terminator: more than 64 bits.
  std::vector<std::uint8_t> bytes(10, 0xFF);
  bytes.push_back(0x01);
  VarintReader reader(bytes);
  EXPECT_FALSE(reader.Next().ok());

  // Exactly 10 bytes, but the final byte carries bits beyond bit 63.
  std::vector<std::uint8_t> overflow(9, 0x80);
  overflow.push_back(0x7F);
  VarintReader reader2(overflow);
  EXPECT_FALSE(reader2.Next().ok());

  // All-continuation garbage (no terminator at all).
  const std::vector<std::uint8_t> endless(32, 0x80);
  VarintReader reader3(endless);
  EXPECT_FALSE(reader3.Next().ok());
}

TEST(VarintFuzz, BitFlipCorpusNeverCrashes) {
  const std::vector<std::uint8_t> bytes = ValidVarintBuffer(0xBEEF);
  Xoshiro256 rng(0xB17F11B);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> mutated = bytes;
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      const std::size_t byte = rng() % mutated.size();
      mutated[byte] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    TryDecodeVarints(mutated);  // ok or error — never a crash
  }
}

TEST(VarintFuzz, RandomGarbageNeverCrashes) {
  Xoshiro256 rng(0x6A42BA6E);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(rng() % 64);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    TryDecodeVarints(bytes);
  }
}

std::vector<std::uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

std::vector<std::uint8_t> BuildValidOpLog(const std::string& name,
                                          std::uint64_t seed) {
  const std::string path = testing::TempDir() + "/" + name;
  OpLogWriter writer(path);
  Xoshiro256 rng(seed);
  for (int i = 0; i < 256; ++i) {
    const Value v = static_cast<Value>(rng() % 100000);
    writer.Append(rng() % 8 == 0 ? StreamOp::Delete(v)
                                         : StreamOp::Insert(v));
  }
  EXPECT_TRUE(writer.Flush().ok());
  return ReadFileBytes(path);
}

TEST(OpLogFuzz, ValidLogDecodes) {
  const std::vector<std::uint8_t> bytes = BuildValidOpLog("oplog_valid", 1);
  EXPECT_TRUE(TryDecodeOpLog("oplog_valid_copy", bytes));
}

TEST(OpLogFuzz, TruncationAtEveryBoundaryNeverCrashes) {
  const std::vector<std::uint8_t> bytes = BuildValidOpLog("oplog_trunc", 2);
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + cut);
    TryDecodeOpLog("oplog_trunc_cut", prefix);
  }
  // A cut in the middle of a multi-byte record must fail, not mis-decode:
  // find a record boundary by decoding, then cut one byte past it.
  VarintReader reader(bytes);
  ASSERT_TRUE(reader.Next().ok());
  const std::size_t first = reader.position();
  std::size_t second_len = 0;
  {
    VarintReader r2(bytes.data() + first, bytes.size() - first);
    ASSERT_TRUE(r2.Next().ok());
    second_len = r2.position();
  }
  if (second_len > 1) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + first + 1);
    EXPECT_FALSE(TryDecodeOpLog("oplog_trunc_mid", cut));
  }
}

TEST(OpLogFuzz, BitFlipCorpusNeverCrashes) {
  const std::vector<std::uint8_t> bytes = BuildValidOpLog("oplog_flip", 3);
  Xoshiro256 rng(0x0F11B5);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> mutated = bytes;
    const std::size_t byte = rng() % mutated.size();
    mutated[byte] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    TryDecodeOpLog("oplog_flip_mut", mutated);
  }
}

TEST(OpLogFuzz, MissingFileIsNotFound) {
  const Result<UpdateStream> ops =
      ReadOpLog(testing::TempDir() + "/no_such_op_log");
  ASSERT_FALSE(ops.ok());
  EXPECT_EQ(ops.status().code(), StatusCode::kNotFound);
}

std::vector<std::uint8_t> ValidConciseSnapshot(std::uint64_t seed) {
  ConciseSample sample(
      ConciseSampleOptions{.footprint_bound = 256, .seed = seed});
  for (Value v : ZipfValues(20000, 500, 1.0, seed)) sample.Insert(v);
  return EncodeSnapshot(sample);
}

std::vector<std::uint8_t> ValidCountingSnapshot(std::uint64_t seed) {
  CountingSample sample(
      CountingSampleOptions{.footprint_bound = 256, .seed = seed});
  for (Value v : ZipfValues(20000, 500, 1.0, seed)) sample.Insert(v);
  return EncodeSnapshot(sample);
}

TEST(SnapshotFuzz, ValidSnapshotsRoundTrip) {
  EXPECT_TRUE(DecodeConciseSnapshot(ValidConciseSnapshot(11), 99).ok());
  EXPECT_TRUE(DecodeCountingSnapshot(ValidCountingSnapshot(12), 99).ok());
}

TEST(SnapshotFuzz, TruncationAtEveryBoundaryNeverCrashes) {
  const std::vector<std::uint8_t> concise = ValidConciseSnapshot(21);
  const std::vector<std::uint8_t> counting = ValidCountingSnapshot(22);
  for (std::size_t cut = 0; cut < concise.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(concise.begin(),
                                           concise.begin() + cut);
    EXPECT_FALSE(DecodeConciseSnapshot(prefix, 1).ok()) << "cut=" << cut;
  }
  for (std::size_t cut = 0; cut < counting.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(counting.begin(),
                                           counting.begin() + cut);
    EXPECT_FALSE(DecodeCountingSnapshot(prefix, 1).ok()) << "cut=" << cut;
  }
}

TEST(SnapshotFuzz, KindConfusionFails) {
  // A concise snapshot fed to the counting decoder (and vice versa) must be
  // rejected by the kind field, not mis-parsed.
  EXPECT_FALSE(DecodeCountingSnapshot(ValidConciseSnapshot(31), 1).ok());
  EXPECT_FALSE(DecodeConciseSnapshot(ValidCountingSnapshot(32), 1).ok());
}

TEST(SnapshotFuzz, BitFlipCorpusNeverCrashes) {
  const std::vector<std::uint8_t> concise = ValidConciseSnapshot(41);
  const std::vector<std::uint8_t> counting = ValidCountingSnapshot(42);
  Xoshiro256 rng(0x5AFE);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<std::uint8_t> a = concise;
    std::vector<std::uint8_t> b = counting;
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      a[rng() % a.size()] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
      b[rng() % b.size()] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    (void)DecodeConciseSnapshot(a, 1);   // ok or error — never a crash
    (void)DecodeCountingSnapshot(b, 1);  // (counts/thresholds may clash)
  }
}

TEST(SnapshotFuzz, RandomGarbageNeverCrashes) {
  Xoshiro256 rng(0x6A42BA61);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<std::uint8_t> bytes(rng() % 128);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    (void)DecodeConciseSnapshot(bytes, 1);
    (void)DecodeCountingSnapshot(bytes, 1);
  }
}

}  // namespace
}  // namespace aqua
