#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace aqua {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad footprint");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad footprint");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad footprint");
}

TEST(StatusTest, AllFactoriesMapToTheirCode) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StreamInsertionUsesToString) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "Internal: boom");
}

Status FailsThenPropagates(bool fail) {
  AQUA_RETURN_NOT_OK(fail ? Status::OutOfRange("nope") : Status::OK());
  return Status::AlreadyExists("reached the end");
}

TEST(StatusTest, ReturnNotOkMacroPropagatesErrors) {
  EXPECT_TRUE(FailsThenPropagates(true).IsOutOfRange());
  EXPECT_EQ(FailsThenPropagates(false).code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace aqua
