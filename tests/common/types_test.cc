#include "common/types.h"

#include <gtest/gtest.h>

#include "core/value_count.h"
#include "sample/update_cost.h"

namespace aqua {
namespace {

TEST(TypesTest, EntryWordsFollowsPaperFootnote3) {
  // A singleton costs 1 word, a <value,count> pair costs 2.
  EXPECT_EQ(EntryWords(1), 1);
  EXPECT_EQ(EntryWords(2), 2);
  EXPECT_EQ(EntryWords(1000000), 2);
}

TEST(ValueCountTest, FootprintOfMatchesDefinition2) {
  // S = {<1,3>, <2,5>, 7, 9}: footprint = l + j = 4 + 2 = 6.
  const std::vector<ValueCount> entries = {{1, 3}, {2, 5}, {7, 1}, {9, 1}};
  EXPECT_EQ(FootprintOf(entries), 6);
  // sample-size = l - j + Σ c_i = 2 + 8 = 10.
  EXPECT_EQ(SampleSizeOf(entries), 10);
}

TEST(ValueCountTest, EmptySet) {
  EXPECT_EQ(FootprintOf({}), 0);
  EXPECT_EQ(SampleSizeOf({}), 0);
}

TEST(ValueCountTest, Equality) {
  EXPECT_EQ((ValueCount{1, 2}), (ValueCount{1, 2}));
  EXPECT_FALSE((ValueCount{1, 2}) == (ValueCount{1, 3}));
  EXPECT_FALSE((ValueCount{1, 2}) == (ValueCount{2, 2}));
}

TEST(UpdateCostTest, AccumulatesAndNormalizes) {
  UpdateCost a{10, 20, 3};
  const UpdateCost b{5, 80, 1};
  a += b;
  EXPECT_EQ(a.coin_flips, 15);
  EXPECT_EQ(a.lookups, 100);
  EXPECT_EQ(a.threshold_raises, 4);
  EXPECT_DOUBLE_EQ(a.FlipsPerInsert(1000), 0.015);
  EXPECT_DOUBLE_EQ(a.LookupsPerInsert(1000), 0.1);
  EXPECT_DOUBLE_EQ(a.FlipsPerInsert(0), 0.0);
  const UpdateCost c = a + b;
  EXPECT_EQ(c.coin_flips, 20);
}

}  // namespace
}  // namespace aqua
