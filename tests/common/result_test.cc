#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace aqua {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, DereferenceOperators) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(*r, "abc");
  EXPECT_EQ(r->size(), 3u);
}

Result<int> MakePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  AQUA_ASSIGN_OR_RETURN(int v, MakePositive(x));
  *out = v * 2;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(UseAssignOrReturn(-1, &out).IsInvalidArgument());
  EXPECT_EQ(out, 10);  // untouched on error
}

TEST(ResultDeathTest, ValueOrDieOnErrorAborts) {
  Result<int> r = Status::Internal("bad");
  EXPECT_DEATH({ (void)r.ValueOrDie(); }, "ValueOrDie");
}

TEST(ResultDeathTest, ConstructingFromOkStatusAborts) {
  EXPECT_DEATH({ Result<int> r{Status::OK()}; (void)r; },
               "must not be constructed");
}

}  // namespace
}  // namespace aqua
