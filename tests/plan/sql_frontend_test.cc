// Unit tests of the /query SQL dialect: every aggregate spelling parses to
// the right PlannedQuery, bound clauses compose in any order, and the
// canonical cache key collapses every spelling of the same query — clause
// order, case, ERROR 2% vs 0.02, an explicit default CONFIDENCE — onto one
// response-cache entry.

#include "plan/sql_frontend.h"

#include <gtest/gtest.h>

#include <string>

namespace aqua {
namespace {

ParsedSqlQuery MustParse(std::string_view text) {
  ParsedSqlQuery parsed;
  const Status status = ParseSqlQuery(text, &parsed);
  EXPECT_TRUE(status.ok()) << text << " -> " << status.message();
  return parsed;
}

std::string CanonicalKey(std::string_view text) {
  std::string key;
  AppendCanonicalSqlKey(MustParse(text), &key);
  return key;
}

TEST(SqlFrontendTest, ParsesEveryAggregate) {
  const ParsedSqlQuery count =
      MustParse("SELECT APPROX(COUNT(*)) FROM stream");
  EXPECT_EQ(count.query.kind, QueryKind::kCountWhere);
  EXPECT_EQ(count.target, "stream");
  EXPECT_FALSE(count.has_where);
  EXPECT_TRUE(count.query.bound.Unbounded());

  const ParsedSqlQuery ranged = MustParse(
      "SELECT APPROX(COUNT(*)) FROM price WHERE v BETWEEN -5 AND 120");
  EXPECT_EQ(ranged.query.kind, QueryKind::kCountWhere);
  EXPECT_TRUE(ranged.has_where);
  EXPECT_EQ(ranged.query.range.low, -5);
  EXPECT_EQ(ranged.query.range.high, 120);

  const ParsedSqlQuery distinct =
      MustParse("SELECT APPROX(COUNT(DISTINCT v)) FROM stream");
  EXPECT_EQ(distinct.query.kind, QueryKind::kDistinct);
  EXPECT_EQ(MustParse("SELECT APPROX(COUNT(DISTINCT *)) FROM stream")
                .query.kind,
            QueryKind::kDistinct);

  const ParsedSqlQuery freq =
      MustParse("SELECT APPROX(FREQUENCY(42)) FROM stream");
  EXPECT_EQ(freq.query.kind, QueryKind::kFrequency);
  EXPECT_EQ(freq.query.value, 42);

  const ParsedSqlQuery quantile =
      MustParse("SELECT APPROX(QUANTILE(0.9)) FROM stream");
  EXPECT_EQ(quantile.query.kind, QueryKind::kQuantile);
  EXPECT_DOUBLE_EQ(quantile.query.q, 0.9);

  const ParsedSqlQuery median = MustParse("SELECT APPROX(MEDIAN) FROM stream");
  EXPECT_EQ(median.query.kind, QueryKind::kQuantile);
  EXPECT_DOUBLE_EQ(median.query.q, 0.5);

  const ParsedSqlQuery top = MustParse("SELECT APPROX(TOP(7)) FROM stream");
  EXPECT_EQ(top.query.kind, QueryKind::kHotList);
  EXPECT_EQ(top.query.k, 7);
}

TEST(SqlFrontendTest, ParsesBoundClausesInAnyOrder) {
  const ParsedSqlQuery bounded = MustParse(
      "SELECT APPROX(COUNT(*)) FROM stream WHERE v BETWEEN 0 AND 50 "
      "ERROR 2% CONFIDENCE 95% WITHIN 1ms;");
  EXPECT_TRUE(bounded.has_error);
  EXPECT_DOUBLE_EQ(bounded.query.bound.max_error, 0.02);
  EXPECT_TRUE(bounded.has_confidence);
  EXPECT_DOUBLE_EQ(bounded.query.bound.confidence, 0.95);
  EXPECT_TRUE(bounded.has_deadline);
  EXPECT_EQ(bounded.query.bound.deadline_ns, 1000000);

  // Same clauses, reversed order, fraction spellings, mixed case.
  const ParsedSqlQuery reordered = MustParse(
      "select approx(count(*)) from stream within 1000us confidence 0.95 "
      "error 0.02 where v between 0 and 50");
  EXPECT_DOUBLE_EQ(reordered.query.bound.max_error, 0.02);
  EXPECT_DOUBLE_EQ(reordered.query.bound.confidence, 0.95);
  EXPECT_EQ(reordered.query.bound.deadline_ns, 1000000);
  EXPECT_EQ(reordered.query.range.low, 0);
  EXPECT_EQ(reordered.query.range.high, 50);

  // Every deadline unit.
  EXPECT_EQ(MustParse("SELECT APPROX(MEDIAN) FROM s WITHIN 250ns")
                .query.bound.deadline_ns,
            250);
  EXPECT_EQ(MustParse("SELECT APPROX(MEDIAN) FROM s WITHIN 3 us")
                .query.bound.deadline_ns,
            3000);
  EXPECT_EQ(MustParse("SELECT APPROX(MEDIAN) FROM s WITHIN 2s")
                .query.bound.deadline_ns,
            2000000000);
}

TEST(SqlFrontendTest, RejectsMalformedStatements) {
  const auto rejects = [](std::string_view text, std::string_view message) {
    ParsedSqlQuery parsed;
    parsed.target = "untouched";
    const Status status = ParseSqlQuery(text, &parsed);
    EXPECT_TRUE(status.IsInvalidArgument()) << text;
    EXPECT_EQ(status.message(), message) << text;
    // *out is only written on success.
    EXPECT_EQ(parsed.target, "untouched") << text;
  };
  rejects("", "expect SELECT");
  rejects("INSERT INTO t VALUES (1)", "expect SELECT");
  rejects("SELECT COUNT(*) FROM stream", "expect APPROX");
  rejects("SELECT APPROX(SUM(v)) FROM stream", "bad aggregate");
  rejects("SELECT APPROX(QUANTILE(1.5)) FROM stream", "bad quantile");
  rejects("SELECT APPROX(TOP(-1)) FROM stream", "bad aggregate");
  rejects("SELECT APPROX(COUNT(*)) stream", "expect FROM");
  rejects("SELECT APPROX(COUNT(*)) FROM ?", "bad target");
  rejects("SELECT APPROX(COUNT(*)) FROM s GROUP BY v", "trailing junk");
  rejects("SELECT APPROX(COUNT(*)) FROM s; SELECT", "trailing junk");
  rejects("SELECT APPROX(COUNT(*)) FROM s ERROR 2% ERROR 3%", "dup clause");
  // WHERE on a kind that takes none is client confusion, not a no-op.
  rejects("SELECT APPROX(MEDIAN) FROM s WHERE v BETWEEN 0 AND 9", "bad WHERE");
  rejects("SELECT APPROX(COUNT(*)) FROM s WHERE v BETWEEN 0 OR 9",
          "bad WHERE");
  rejects("SELECT APPROX(COUNT(*)) FROM s ERROR 0", "bad ERROR");
  rejects("SELECT APPROX(COUNT(*)) FROM s ERROR 150%", "bad ERROR");
  rejects("SELECT APPROX(COUNT(*)) FROM s CONFIDENCE 1", "bad CONFIDENCE");
  rejects("SELECT APPROX(COUNT(*)) FROM s CONFIDENCE 100%", "bad CONFIDENCE");
  rejects("SELECT APPROX(COUNT(*)) FROM s WITHIN 0ms", "bad WITHIN");
  rejects("SELECT APPROX(COUNT(*)) FROM s WITHIN 5 days", "bad WITHIN");
  rejects("SELECT APPROX(COUNT(*)) FROM s WITHIN", "bad WITHIN");
}

TEST(SqlFrontendTest, CanonicalKeyCollapsesEquivalentSpellings) {
  const std::string base = CanonicalKey(
      "SELECT APPROX(COUNT(*)) FROM stream WHERE v BETWEEN 0 AND 50 "
      "ERROR 2% CONFIDENCE 95%");
  // Fraction spellings, clause order, case, whitespace, a trailing
  // semicolon: all one cache entry.
  EXPECT_EQ(base, CanonicalKey(
                      "select  approx( count(*) )  from stream "
                      "error 0.02 confidence 0.95 "
                      "where v between 0 and 50 ;"));
  // Omitting the default confidence collapses with spelling it out.
  EXPECT_EQ(CanonicalKey("SELECT APPROX(MEDIAN) FROM stream"),
            CanonicalKey(
                "SELECT APPROX(QUANTILE(0.5)) FROM stream CONFIDENCE 95%"));
  // Distinct queries stay distinct: the bound is part of the key.
  EXPECT_NE(base, CanonicalKey(
                      "SELECT APPROX(COUNT(*)) FROM stream "
                      "WHERE v BETWEEN 0 AND 50 ERROR 3% CONFIDENCE 95%"));
  EXPECT_NE(base, CanonicalKey(
                      "SELECT APPROX(COUNT(*)) FROM stream "
                      "WHERE v BETWEEN 0 AND 51 ERROR 2% CONFIDENCE 95%"));
  EXPECT_NE(CanonicalKey("SELECT APPROX(COUNT(*)) FROM a"),
            CanonicalKey("SELECT APPROX(COUNT(*)) FROM b"));
  EXPECT_NE(CanonicalKey("SELECT APPROX(MEDIAN) FROM s"),
            CanonicalKey("SELECT APPROX(MEDIAN) FROM s WITHIN 1ms"));
}

}  // namespace
}  // namespace aqua
