// Planner selection tests: unbounded plans must reproduce the legacy
// accuracy-ordered selection exactly (the §6 ordering the dedicated routes
// serve), error bounds must pick the cheapest feasible synopsis off the
// live cost/error model, and deadlines must select against the *measured*
// per-kind latency profiles — driven here synthetically via RecordLatency
// so the test controls what the planner believes each option costs.

#include "plan/planner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "registry/builtin.h"
#include "warehouse/engine.h"
#include "workload/generators.h"

namespace aqua {
namespace {

/// A distinct-count synopsis with a *fixed* declared error: the planner
/// sees exactly the number the test chose, so feasibility cuts are exact.
struct FixedErrorDistinct {
  std::set<Value> values;
  void Insert(Value v) { values.insert(v); }
  Words Footprint() const { return static_cast<Words>(values.size()); }
};

SynopsisDescriptor<FixedErrorDistinct> FixedErrorDescriptor(
    std::string name, int accuracy, double error) {
  SynopsisDescriptor<FixedErrorDistinct> d;
  d.name = std::move(name);
  d.on_delete = DeleteBehavior::kIgnores;
  d.Declare(QueryKind::kDistinct, accuracy,
            [error](const FixedErrorDistinct&, const QueryContext&, double) {
              return error;
            });
  d.factory = [](std::uint64_t) { return FixedErrorDistinct{}; };
  d.answers.distinct = [](const FixedErrorDistinct& s, const QueryContext&) {
    Estimate e;
    e.value = static_cast<double>(s.values.size());
    e.ci_low = e.value;
    e.ci_high = e.value;
    e.confidence = 1.0;
    return e;
  };
  return d;
}

/// Two-synopsis registry for kDistinct: "fine" is the most accurate
/// (accuracy class 0, predicted error 0.001), "coarse" the fallback
/// (class 20, predicted error 0.1).  Latency profiles start empty.
struct TwoSynopsisFixture {
  SynopsisRegistry registry{SynopsisRegistry::Options{}};
  const SynopsisHandle* fine = nullptr;
  const SynopsisHandle* coarse = nullptr;

  TwoSynopsisFixture() {
    EXPECT_TRUE(
        registry.Register(FixedErrorDescriptor("fine", 0, 0.001)).ok());
    EXPECT_TRUE(
        registry.Register(FixedErrorDescriptor("coarse", 20, 0.1)).ok());
    for (Value v = 0; v < 100; ++v) {
      EXPECT_TRUE(registry.Observe(StreamOp::Insert(v)).ok());
    }
    fine = registry.handle("fine");
    coarse = registry.handle("coarse");
  }

  QueryContext ctx() const {
    return QueryContext{registry.observed_inserts()};
  }
};

TEST(PlannerTest, UnboundedPlanMatchesLegacySelection) {
  TwoSynopsisFixture f;
  // No bounds: first valid candidate in accuracy order — the selection the
  // legacy answer path makes, regardless of any recorded latencies.
  f.coarse->RecordLatency(QueryKind::kDistinct, false, 10);
  f.fine->RecordLatency(QueryKind::kDistinct, false, 1000000);
  const PlanChoice plan =
      PlanQuery(f.registry, QueryKind::kDistinct, QueryBound{}, f.ctx());
  ASSERT_NE(plan.handle, nullptr);
  EXPECT_EQ(plan.handle->Name(), "fine");
  EXPECT_TRUE(plan.meets_error);
  EXPECT_TRUE(plan.meets_deadline);
  EXPECT_EQ(plan.handle->Name(),
            f.registry.DistinctValuesAnswer().method);
}

TEST(PlannerTest, UnboundedPlanMatchesLegacyOnEveryBuiltinKind) {
  ApproximateAnswerEngine engine(EngineOptions{});
  for (Value v : ZipfValues(20000, 500, 1.2, 23)) {
    ASSERT_TRUE(engine.Observe(StreamOp::Insert(v)).ok());
  }
  const SynopsisRegistry& registry = engine.registry();
  const QueryContext ctx{registry.observed_inserts()};
  const auto planned_method = [&](QueryKind kind) -> std::string_view {
    const PlanChoice plan = PlanQuery(registry, kind, QueryBound{}, ctx);
    return plan.handle == nullptr ? std::string_view("none")
                                  : plan.handle->Name();
  };
  EXPECT_EQ(planned_method(QueryKind::kHotList),
            registry.HotListAnswer(HotListQuery{}).method);
  EXPECT_EQ(planned_method(QueryKind::kFrequency),
            registry.FrequencyAnswer(3).method);
  EXPECT_EQ(planned_method(QueryKind::kCountWhere),
            registry.CountWhereAnswer(ValueRange{0, 100}, 0.95).method);
  EXPECT_EQ(planned_method(QueryKind::kDistinct),
            registry.DistinctValuesAnswer().method);
  EXPECT_EQ(planned_method(QueryKind::kQuantile),
            registry.QuantileAnswer(0.5, 0.95).method);

  // Invalidate the concise sample (a delete) and the planner must fall
  // back exactly where the legacy path falls back.
  ASSERT_TRUE(engine.Observe(StreamOp::Delete(1)).ok());
  EXPECT_EQ(planned_method(QueryKind::kCountWhere),
            registry.CountWhereAnswer(ValueRange{0, 100}, 0.95).method);
  EXPECT_EQ(planned_method(QueryKind::kQuantile),
            registry.QuantileAnswer(0.5, 0.95).method);
}

TEST(PlannerTest, ErrorBoundPicksCheapestFeasibleSynopsis) {
  TwoSynopsisFixture f;
  // Measured costs: the accurate synopsis is 10000x slower.
  f.fine->RecordLatency(QueryKind::kDistinct, false, 1000000);
  f.coarse->RecordLatency(QueryKind::kDistinct, false, 100);

  // Loose bound (0.5): both feasible, the cheap one wins.
  QueryBound loose;
  loose.max_error = 0.5;
  PlanChoice plan =
      PlanQuery(f.registry, QueryKind::kDistinct, loose, f.ctx());
  EXPECT_EQ(plan.handle->Name(), "coarse");
  EXPECT_TRUE(plan.meets_error);
  EXPECT_DOUBLE_EQ(plan.predicted_error, 0.1);

  // Tight bound (0.05): only the accurate synopsis fits, cost be damned.
  QueryBound tight;
  tight.max_error = 0.05;
  plan = PlanQuery(f.registry, QueryKind::kDistinct, tight, f.ctx());
  EXPECT_EQ(plan.handle->Name(), "fine");
  EXPECT_TRUE(plan.meets_error);

  // Impossible bound (1e-6): nothing fits — degrade to the most accurate
  // option and say so.
  QueryBound impossible;
  impossible.max_error = 1e-6;
  plan = PlanQuery(f.registry, QueryKind::kDistinct, impossible, f.ctx());
  EXPECT_EQ(plan.handle->Name(), "fine");
  EXPECT_FALSE(plan.meets_error);
}

TEST(PlannerTest, DeadlineSelectsAgainstMeasuredProfiles) {
  TwoSynopsisFixture f;
  f.fine->RecordLatency(QueryKind::kDistinct, false, 1000000);
  f.coarse->RecordLatency(QueryKind::kDistinct, false, 100);

  // A deadline the accurate synopsis blows: the fast one serves, within
  // bound.
  QueryBound fast;
  fast.deadline_ns = 10000;
  PlanChoice plan =
      PlanQuery(f.registry, QueryKind::kDistinct, fast, f.ctx());
  EXPECT_EQ(plan.handle->Name(), "coarse");
  EXPECT_TRUE(plan.meets_deadline);
  EXPECT_DOUBLE_EQ(plan.predicted_ns, 100.0);

  // A generous deadline: accuracy order reasserts itself.
  QueryBound slow;
  slow.deadline_ns = 10000000;
  plan = PlanQuery(f.registry, QueryKind::kDistinct, slow, f.ctx());
  EXPECT_EQ(plan.handle->Name(), "fine");
  EXPECT_TRUE(plan.meets_deadline);

  // A deadline nothing meets: fastest option, flagged.
  QueryBound harsh;
  harsh.deadline_ns = 10;
  plan = PlanQuery(f.registry, QueryKind::kDistinct, harsh, f.ctx());
  EXPECT_EQ(plan.handle->Name(), "coarse");
  EXPECT_FALSE(plan.meets_deadline);

  // Error bound + deadline: the error bound narrows the pool first.  Only
  // "fine" satisfies 0.05, and it cannot make the deadline — the planner
  // reports the honest degradation instead of silently switching synopses.
  QueryBound both;
  both.max_error = 0.05;
  both.deadline_ns = 10000;
  plan = PlanQuery(f.registry, QueryKind::kDistinct, both, f.ctx());
  EXPECT_EQ(plan.handle->Name(), "fine");
  EXPECT_TRUE(plan.meets_error);
  EXPECT_FALSE(plan.meets_deadline);
}

TEST(PlannerTest, RunPlannedQueryRecordsLatencyAndAchievedError) {
  ApproximateAnswerEngine engine(EngineOptions{});
  for (Value v : ZipfValues(20000, 300, 1.3, 7)) {
    ASSERT_TRUE(engine.Observe(StreamOp::Insert(v)).ok());
  }
  const SynopsisRegistry& registry = engine.registry();
  EXPECT_LT(registry.LastAchievedError(QueryKind::kCountWhere), 0.0);

  PlannedQuery query;
  query.kind = QueryKind::kCountWhere;
  query.range = ValueRange{0, 150};
  query.bound.max_error = 0.5;
  PlannedResponse response;
  RunPlannedQueryInto(registry, query, &response);

  // The measured half-width relative to the relation is the reported
  // bound, and it lands in the registry's planner stats.
  EXPECT_NE(response.method, "none");
  ASSERT_TRUE(std::isfinite(response.achieved_error));
  EXPECT_GT(response.achieved_error, 0.0);
  EXPECT_TRUE(response.met_error);
  EXPECT_GT(response.response_ns, 0);
  EXPECT_DOUBLE_EQ(registry.LastAchievedError(QueryKind::kCountWhere),
                   response.achieved_error);

  // The serving handle's latency profile saw the computation.
  const SynopsisHandle* served = nullptr;
  for (const SynopsisHandle* handle :
       registry.HandlesFor(QueryKind::kCountWhere)) {
    if (handle->Name() == response.method) served = handle;
  }
  ASSERT_NE(served, nullptr);
  EXPECT_GE(served->LatencyFor(QueryKind::kCountWhere).direct_observations,
            1);

  // A hot-list planned query fills the item vector, not the estimate.
  PlannedQuery top;
  top.kind = QueryKind::kHotList;
  top.k = 5;
  RunPlannedQueryInto(registry, top, &response);
  EXPECT_NE(response.method, "none");
  EXPECT_FALSE(response.hotlist.empty());
  EXPECT_LE(response.hotlist.size(), 5u);
}

}  // namespace
}  // namespace aqua
