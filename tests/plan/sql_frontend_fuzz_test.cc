// Fuzz pin for the /query SQL parser: this TU replaces global operator
// new/delete with counting versions and drives ParseSqlQuery with every
// truncation of a valid corpus, random garbage, overlong numerics, and
// kind-confused statements.  The contract under attack input is strict:
// a clean InvalidArgument (or OK for prefixes that happen to be complete
// statements), ZERO allocator calls either way — a hostile payload is
// rejected before the request touches the heap — and `*out` untouched on
// failure.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "plan/sql_frontend.h"
#include "random/random.h"

namespace {
std::atomic<std::int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace aqua {
namespace {

/// Parses `text` asserting the no-allocation contract; returns the status.
Status ParseCounting(std::string_view text) {
  ParsedSqlQuery parsed;
  parsed.target = "sentinel";
  const std::int64_t before = g_allocations.load(std::memory_order_relaxed);
  const Status status = ParseSqlQuery(text, &parsed);
  const std::int64_t delta =
      g_allocations.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(delta, 0) << "parse allocated " << delta << " times on: " << text;
  if (!status.ok()) {
    EXPECT_TRUE(status.IsInvalidArgument()) << text;
    EXPECT_EQ(parsed.target, "sentinel") << "*out written on failure: " << text;
  }
  return status;
}

const char* const kCorpus[] = {
    "SELECT APPROX(COUNT(*)) FROM stream WHERE v BETWEEN 0 AND 50 "
    "ERROR 2% CONFIDENCE 95% WITHIN 1ms;",
    "select approx(count(distinct v)) from price confidence 0.99",
    "SELECT APPROX(FREQUENCY(-42)) FROM region-7 WITHIN 250us",
    "SELECT APPROX(QUANTILE(0.25)) FROM s ERROR 0.1",
    "SELECT APPROX(MEDIAN) FROM stream",
    "SELECT APPROX(TOP(10)) FROM stream WITHIN 2 s",
};

TEST(SqlFrontendFuzzTest, TruncationAtEveryByteIsClean) {
  for (const char* statement : kCorpus) {
    const std::string_view full(statement);
    // Every prefix, including empty and full: never a crash, never an
    // allocation; the full statement must parse.
    for (std::size_t len = 0; len <= full.size(); ++len) {
      const Status status = ParseCounting(full.substr(0, len));
      if (len == full.size()) {
        EXPECT_TRUE(status.ok()) << full;
      }
    }
  }
}

TEST(SqlFrontendFuzzTest, RandomGarbageIsRejectedWithoutAllocating) {
  Random rng(0xF00DFACEULL);
  std::string text;
  text.reserve(512);
  for (int trial = 0; trial < 20000; ++trial) {
    const int len = static_cast<int>(rng.UniformInt(0, 256));
    text.clear();
    for (int i = 0; i < len; ++i) {
      // Full byte range: control bytes, UTF-8 fragments, NULs.
      text.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    ParseCounting(text);
  }
}

TEST(SqlFrontendFuzzTest, MutatedCorpusIsCleanEitherWay) {
  Random rng(0x5EEDFULL);
  std::string text;
  for (int trial = 0; trial < 20000; ++trial) {
    text = kCorpus[rng.UniformInt(
        0, static_cast<std::int64_t>(std::size(kCorpus)) - 1)];
    const int mutations = static_cast<int>(rng.UniformInt(1, 4));
    for (int m = 0; m < mutations; ++m) {
      const auto at = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(text.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:
          text[at] = static_cast<char>(rng.UniformInt(0, 255));
          break;
        case 1:
          text.erase(at, 1);
          break;
        default:
          text.insert(at, 1, static_cast<char>(rng.UniformInt(32, 126)));
          break;
      }
      if (text.empty()) text = "x";
    }
    ParseCounting(text);
  }
}

TEST(SqlFrontendFuzzTest, OverlongNumericsAreRejectedBeforeAllocation) {
  const std::string digits(4096, '9');
  const std::string decimals = "0." + std::string(4096, '0') + "1";
  // Overlong integers overflow from_chars; overlong doubles are cut off
  // by the parser's token-length bound before from_chars could reach for
  // a heap scratch buffer.
  EXPECT_FALSE(
      ParseCounting("SELECT APPROX(FREQUENCY(" + digits + ")) FROM s").ok());
  EXPECT_FALSE(ParseCounting("SELECT APPROX(TOP(" + digits + ")) FROM s").ok());
  EXPECT_FALSE(
      ParseCounting("SELECT APPROX(QUANTILE(" + decimals + ")) FROM s").ok());
  EXPECT_FALSE(ParseCounting("SELECT APPROX(COUNT(*)) FROM s WHERE v BETWEEN " +
                             digits + " AND 9")
                   .ok());
  EXPECT_FALSE(
      ParseCounting("SELECT APPROX(COUNT(*)) FROM s ERROR " + decimals).ok());
  EXPECT_FALSE(ParseCounting("SELECT APPROX(COUNT(*)) FROM s CONFIDENCE 0." +
                             std::string(4096, '9'))
                   .ok());
  EXPECT_FALSE(ParseCounting("SELECT APPROX(COUNT(*)) FROM s WITHIN 1" +
                             std::string(4096, '0') + "ms")
                   .ok());
  // Infinity and NaN spellings are numbers to from_chars but not to us.
  EXPECT_FALSE(ParseCounting("SELECT APPROX(COUNT(*)) FROM s ERROR inf").ok());
  EXPECT_FALSE(ParseCounting("SELECT APPROX(COUNT(*)) FROM s ERROR nan").ok());
}

TEST(SqlFrontendFuzzTest, KindConfusionIsRejected) {
  // WHERE belongs to COUNT(*); attaching it to any other aggregate is
  // client confusion, rejected rather than silently ignored.
  for (const char* agg :
       {"MEDIAN", "TOP(3)", "FREQUENCY(1)", "QUANTILE(0.5)",
        "COUNT(DISTINCT v)"}) {
    const std::string text = std::string("SELECT APPROX(") + agg +
                             ") FROM s WHERE v BETWEEN 0 AND 9";
    EXPECT_EQ(ParseCounting(text).message(), "bad WHERE") << text;
  }
  // Parameter shapes crossed between kinds.
  EXPECT_FALSE(ParseCounting("SELECT APPROX(TOP(0.5)) FROM s").ok());
  EXPECT_FALSE(ParseCounting("SELECT APPROX(FREQUENCY(abc)) FROM s").ok());
  EXPECT_FALSE(ParseCounting("SELECT APPROX(QUANTILE(*)) FROM s").ok());
  EXPECT_FALSE(ParseCounting("SELECT APPROX(COUNT(DISTINCT)) FROM s").ok());
  EXPECT_FALSE(ParseCounting("SELECT APPROX(MEDIAN(0.5)) FROM s").ok());
}

}  // namespace
}  // namespace aqua
