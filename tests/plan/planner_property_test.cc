// Statistical and equivalence properties of the planner:
//
//  1. The achieved error bound reported with a planned COUNT(*) answer
//     (half-width relative to the relation — the §6 error metric) must
//     *cover* the true error at the requested confidence: across many
//     random range queries, |estimate - truth| <= achieved_error * n at
//     least ~confidence of the time.  Statistical, so it runs under the
//     seed-sweep budget (tests/property/seed_sweep.h).
//
//  2. An unbounded planned query must be BIT-IDENTICAL to the legacy
//     dedicated route for every query kind — same synopsis, same estimate
//     doubles, same hot-list items.  Structural, so it holds on every
//     seed with no failure budget.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "plan/planner.h"
#include "property/seed_sweep.h"
#include "random/random.h"
#include "registry/builtin.h"
#include "warehouse/engine.h"
#include "workload/generators.h"

namespace aqua {
namespace {

std::int64_t TrueCount(const std::vector<Value>& values,
                       const ValueRange& range) {
  std::int64_t count = 0;
  for (Value v : values) {
    if (v >= range.low && v <= range.high) ++count;
  }
  return count;
}

TEST(PlannerPropertyTest, AchievedErrorCoversTrueErrorAtConfidence) {
  RunSeedSweep([](std::uint64_t base_seed) {
    constexpr int kInserts = 20000;
    constexpr std::int64_t kDomain = 1000;
    constexpr int kQueries = 200;
    constexpr double kConfidence = 0.95;

    ApproximateAnswerEngine engine(EngineOptions{});
    const std::vector<Value> stream =
        UniformValues(kInserts, kDomain, base_seed);
    for (Value v : stream) {
      EXPECT_TRUE(engine.Observe(StreamOp::Insert(v)).ok());
    }
    const SynopsisRegistry& registry = engine.registry();

    Random rng(base_seed ^ 0xC07E12EDULL);
    int covered = 0;
    PlannedResponse response;
    for (int trial = 0; trial < kQueries; ++trial) {
      const std::int64_t low = rng.UniformInt(0, kDomain - 1);
      const std::int64_t width = rng.UniformInt(1, kDomain / 2);
      PlannedQuery query;
      query.kind = QueryKind::kCountWhere;
      query.range = ValueRange{low, low + width};
      query.bound.confidence = kConfidence;
      RunPlannedQueryInto(registry, query, &response);
      EXPECT_NE(response.method, "none");
      EXPECT_TRUE(std::isfinite(response.achieved_error));

      const double truth =
          static_cast<double>(TrueCount(stream, query.range));
      const double true_error =
          std::abs(response.estimate.value - truth) / kInserts;
      if (true_error <= response.achieved_error) ++covered;
    }
    // 0.95-confidence intervals from one shared sample are correlated
    // across queries, so the empirical coverage is noisier than an
    // independent binomial — the band is generous and the sweep budget
    // absorbs one unlucky stream.
    const double coverage = static_cast<double>(covered) / kQueries;
    return coverage >= 0.85;
  });
}

TEST(PlannerPropertyTest, UnboundedPlannedQueryBitIdenticalToLegacyRoutes) {
  for (const std::uint64_t seed : kSweepSeeds) {
    ApproximateAnswerEngine engine(EngineOptions{});
    for (Value v : ZipfValues(25000, 400, 1.2, seed)) {
      ASSERT_TRUE(engine.Observe(StreamOp::Insert(v)).ok());
    }
    const SynopsisRegistry& registry = engine.registry();
    PlannedResponse response;

    const auto expect_same_estimate = [&](const QueryResponse<Estimate>& legacy,
                                          const char* what) {
      EXPECT_EQ(response.method, legacy.method) << what;
      EXPECT_EQ(response.estimate.value, legacy.answer.value) << what;
      EXPECT_EQ(response.estimate.ci_low, legacy.answer.ci_low) << what;
      EXPECT_EQ(response.estimate.ci_high, legacy.answer.ci_high) << what;
      EXPECT_EQ(response.estimate.confidence, legacy.answer.confidence)
          << what;
      EXPECT_EQ(response.estimate.sample_points, legacy.answer.sample_points)
          << what;
    };

    PlannedQuery query;
    query.kind = QueryKind::kCountWhere;
    query.range = ValueRange{10, 210};
    RunPlannedQueryInto(registry, query, &response);
    expect_same_estimate(registry.CountWhereAnswer(query.range, 0.95),
                         "count_where");

    query = PlannedQuery{};
    query.kind = QueryKind::kFrequency;
    query.value = 1;
    RunPlannedQueryInto(registry, query, &response);
    expect_same_estimate(registry.FrequencyAnswer(1), "frequency");

    query = PlannedQuery{};
    query.kind = QueryKind::kDistinct;
    RunPlannedQueryInto(registry, query, &response);
    expect_same_estimate(registry.DistinctValuesAnswer(), "distinct");

    query = PlannedQuery{};
    query.kind = QueryKind::kQuantile;
    query.q = 0.9;
    RunPlannedQueryInto(registry, query, &response);
    expect_same_estimate(registry.QuantileAnswer(0.9, 0.95), "quantile");

    query = PlannedQuery{};
    query.kind = QueryKind::kHotList;
    query.k = 10;
    RunPlannedQueryInto(registry, query, &response);
    HotListQuery legacy_query;
    legacy_query.k = 10;
    const QueryResponse<HotList> legacy =
        registry.HotListAnswer(legacy_query);
    EXPECT_EQ(response.method, legacy.method);
    ASSERT_EQ(response.hotlist.size(), legacy.answer.size());
    for (std::size_t i = 0; i < legacy.answer.size(); ++i) {
      EXPECT_EQ(response.hotlist[i].value, legacy.answer[i].value) << i;
      EXPECT_EQ(response.hotlist[i].estimated_count,
                legacy.answer[i].estimated_count)
          << i;
      EXPECT_EQ(response.hotlist[i].synopsis_count,
                legacy.answer[i].synopsis_count)
          << i;
    }
  }
}

}  // namespace
}  // namespace aqua
