#include "concurrency/sharded_synopsis.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "sample/reservoir_sample.h"
#include "workload/generators.h"

namespace aqua {
namespace {

ShardedSynopsis<ConciseSample> MakeConciseShards(std::size_t shards,
                                                 Words footprint,
                                                 std::uint64_t seed) {
  return ShardedSynopsis<ConciseSample>(shards, [&](std::size_t i) {
    return ConciseSample(ConciseSampleOptions{
        .footprint_bound = footprint,
        .seed = seed + 7919ULL * (i + 1)});
  });
}

TEST(ShardedSynopsisTest, AllInsertsLandInSomeShard) {
  auto sharded = MakeConciseShards(4, 200, 10);
  for (Value v = 0; v < 10000; ++v) sharded.Insert(v % 37);
  EXPECT_EQ(sharded.ObservedInserts(), 10000);
  for (std::size_t i = 0; i < sharded.num_shards(); ++i) {
    sharded.WithShard(i, [](const ConciseSample& s) {
      EXPECT_TRUE(s.Validate().ok());
      // Round-robin: every shard saw an equal slice.
      EXPECT_EQ(s.ObservedInserts(), 2500);
      return 0;
    });
  }
}

TEST(ShardedSynopsisTest, ConcurrentProducersAllObserved) {
  auto sharded = MakeConciseShards(8, 300, 20);
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 40000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sharded, t] {
      ShardedBatchInserter<ConciseSample> inserter(&sharded, 256);
      const std::vector<Value> data = ZipfValues(
          kPerThread, 500, 1.0, 300 + static_cast<std::uint64_t>(t));
      for (Value v : data) inserter.Add(v);
      // Destructor flushes the tail.
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(sharded.ObservedInserts(), kThreads * kPerThread);
  auto snapshot = sharded.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->ObservedInserts(), kThreads * kPerThread);
  EXPECT_TRUE(snapshot->Validate().ok());
  EXPECT_LE(snapshot->Footprint(), 300);
}

TEST(ShardedSynopsisTest, SnapshotThresholdCoversEveryShard) {
  auto sharded = MakeConciseShards(4, 100, 30);
  const std::vector<Value> data = ZipfValues(200000, 5000, 0.5, 31);
  ShardedBatchInserter<ConciseSample> inserter(&sharded, 1024);
  for (Value v : data) inserter.Add(v);
  inserter.Flush();
  auto snapshot = sharded.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  // Theorem-2 alignment: the merged threshold is at least every shard's.
  for (std::size_t i = 0; i < sharded.num_shards(); ++i) {
    const double shard_tau = sharded.WithShard(
        i, [](const ConciseSample& s) { return s.Threshold(); });
    EXPECT_GE(snapshot->Threshold(), shard_tau);
  }
  EXPECT_TRUE(snapshot->Validate().ok());
}

TEST(ShardedSynopsisTest, SnapshotOfReservoirShards) {
  ShardedSynopsis<ReservoirSample> sharded(4, [](std::size_t i) {
    return ReservoirSample(500, 40 + static_cast<std::uint64_t>(i));
  });
  const std::vector<Value> data = UniformValues(100000, 2000, 41);
  ShardedBatchInserter<ReservoirSample> inserter(&sharded, 512);
  for (Value v : data) inserter.Add(v);
  inserter.Flush();
  auto snapshot = sharded.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->ObservedInserts(), 100000);
  EXPECT_EQ(snapshot->SampleSize(), 500);
  // Merged reservoir keeps ingesting correctly.
  for (Value v : UniformValues(50000, 2000, 42)) snapshot->Insert(v);
  EXPECT_EQ(snapshot->ObservedInserts(), 150000);
  EXPECT_EQ(snapshot->SampleSize(), 500);
}

ShardedSynopsis<CountingSample> MakeCountingShards(std::size_t shards,
                                                   ShardRouting routing) {
  return ShardedSynopsis<CountingSample>(
      shards,
      [](std::size_t i) {
        return CountingSample(CountingSampleOptions{
            .footprint_bound = 100,
            .seed = 50 + static_cast<std::uint64_t>(i)});
      },
      routing);
}

TEST(ShardedSynopsisTest, DeleteRefusedUnderRoundRobin) {
  // Round-robin spreads a value's inserts across shards, so a delete has
  // no shard it can correctly land on; it must be refused, not silently
  // misapplied.
  auto sharded = MakeCountingShards(2, ShardRouting::kRoundRobin);
  sharded.Insert(7);
  EXPECT_TRUE(sharded.Delete(7).IsFailedPrecondition());
}

TEST(ShardedSynopsisTest, ValueRoutedDeleteReachesTheInsertingShard) {
  // Regression: with round-robin routing, one insert of v followed by one
  // delete of v could leave aggregate count 1 (the delete no-op'd on a
  // shard that never saw v).  Value routing sends both to the same shard.
  auto sharded = MakeCountingShards(2, ShardRouting::kByValue);
  for (Value v = 0; v < 8; ++v) {
    sharded.Insert(v);
    ASSERT_TRUE(sharded.Delete(v).ok());
  }
  std::int64_t total = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    total += sharded.WithShard(i, [](const CountingSample& s) {
      EXPECT_TRUE(s.Validate().ok());
      std::int64_t count = 0;
      for (Value v = 0; v < 8; ++v) count += s.CountOf(v);
      return count;
    });
  }
  EXPECT_EQ(total, 0);  // τ stays 1 under bound 100, so counts are exact
}

TEST(ShardedSynopsisTest, ValueRoutedCountsStayExactUnderDeletes) {
  auto sharded = MakeCountingShards(2, ShardRouting::kByValue);
  for (int i = 0; i < 1000; ++i) sharded.Insert(7);
  ASSERT_TRUE(sharded.Delete(7).ok());
  std::int64_t total = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    total += sharded.WithShard(i, [](const CountingSample& s) {
      EXPECT_TRUE(s.Validate().ok());
      return s.CountOf(7);
    });
  }
  EXPECT_EQ(total, 999);  // τ stays 1 under bound 100 with one value
}

TEST(ShardedSynopsisTest, ValueRoutedBatchKeepsValuesOnTheirShard) {
  // InsertBatch under kByValue must partition the batch the same way
  // Insert routes single values, or deletes would miss batched inserts.
  auto sharded = MakeCountingShards(4, ShardRouting::kByValue);
  std::vector<Value> batch;
  for (int rep = 0; rep < 10; ++rep) {
    for (Value v = 0; v < 40; ++v) batch.push_back(v);
  }
  sharded.InsertBatch(batch);
  EXPECT_EQ(sharded.ObservedInserts(), 400);
  for (Value v = 0; v < 40; ++v) {
    ASSERT_TRUE(sharded.Delete(v).ok());
    // All 10 occurrences live on the owning shard: count is now exactly 9.
    const std::size_t owner = sharded.ShardForValue(v);
    const Count count = sharded.WithShard(
        owner, [v](const CountingSample& s) { return s.CountOf(v); });
    EXPECT_EQ(count, 9);
  }
}

TEST(ShardedSynopsisTest, SnapshotsDrawIndependentRandomness) {
  // Snapshot() starts from a copy of shard 0; without a reseed its merge
  // draws would replay shard 0's future stream and successive snapshots
  // would be byte-identical.  Force merge-time subsampling (per-shard
  // footprints sum past the bound) and check two snapshots of the same
  // frozen state diverge.
  auto sharded = MakeConciseShards(4, 100, 90);
  const std::vector<Value> data = ZipfValues(200000, 5000, 0.5, 91);
  ShardedBatchInserter<ConciseSample> inserter(&sharded, 1024);
  for (Value v : data) inserter.Add(v);
  inserter.Flush();

  auto first = sharded.Snapshot();
  auto second = sharded.Snapshot();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(first->Validate().ok());
  EXPECT_TRUE(second->Validate().ok());
  auto sorted_entries = [](const ConciseSample& s) {
    std::vector<ValueCount> entries = s.Entries();
    std::sort(entries.begin(), entries.end(),
              [](const ValueCount& a, const ValueCount& b) {
                return a.value < b.value;
              });
    return entries;
  };
  EXPECT_NE(sorted_entries(*first), sorted_entries(*second))
      << "two snapshots replayed identical merge randomness";
}

TEST(ShardedSynopsisTest, SingleShardDegeneratesToShared) {
  auto sharded = MakeConciseShards(1, 100, 60);
  for (Value v : ZipfValues(20000, 100, 1.0, 61)) sharded.Insert(v);
  auto snapshot = sharded.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->ObservedInserts(), 20000);
  EXPECT_TRUE(snapshot->Validate().ok());
}

TEST(SharedSynopsisTest, InsertBatchRoutesThroughFastPath) {
  // Same seed, same batching: the shared wrapper must land in the same
  // state as calling the synopsis-level InsertBatch directly, proving it
  // routed through the fast path rather than the per-element loop.
  const std::vector<Value> data = ZipfValues(50000, 2000, 1.0, 70);
  ConciseSampleOptions o;
  o.footprint_bound = 300;
  o.seed = 71;
  ConciseSample direct(o);
  direct.InsertBatch(data);

  SharedSynopsis<ConciseSample> shared((ConciseSample(o)));
  shared.InsertBatch(data);
  shared.WithRead([&](const ConciseSample& s) {
    EXPECT_EQ(s.Threshold(), direct.Threshold());
    EXPECT_EQ(s.SampleSize(), direct.SampleSize());
    EXPECT_EQ(s.Cost().coin_flips, direct.Cost().coin_flips);
    return 0;
  });
}

TEST(ShardedSynopsisTest, ShardVersionsBumpOnEveryMutatingPath) {
  auto sharded = MakeConciseShards(2, 200, 80);
  EXPECT_EQ(sharded.ShardVersion(0), 0u);
  EXPECT_EQ(sharded.ShardVersion(1), 0u);

  sharded.Insert(1);
  EXPECT_EQ(sharded.ShardVersion(0) + sharded.ShardVersion(1), 1u);

  const std::vector<Value> batch{1, 2, 3, 4};
  sharded.InsertBatch(batch);
  const std::uint64_t after_batch =
      sharded.ShardVersion(0) + sharded.ShardVersion(1);
  EXPECT_GT(after_batch, 1u);

  sharded.WithShardMutable(0, [](ConciseSample& s) {
    s.Insert(99);
    return 0;
  });
  EXPECT_EQ(sharded.ShardVersion(0) + sharded.ShardVersion(1),
            after_batch + 1);

  // Read-only accessors must not bump.
  sharded.WithShard(0, [](const ConciseSample&) { return 0; });
  (void)sharded.Snapshot();
  EXPECT_EQ(sharded.ShardVersion(0) + sharded.ShardVersion(1),
            after_batch + 1);
}

TEST(ShardedSynopsisTest, SnapshotDeltaFoldsQuiescentShardsIntoBase) {
  auto sharded = MakeConciseShards(4, 4096, 90);
  for (Value v : ZipfValues(8000, 300, 1.0, 91)) sharded.Insert(v);

  ShardedSynopsis<ConciseSample>::DeltaState state;
  ShardedDeltaStats stats;

  // First call: no base exists — every shard is merged from scratch.
  auto first = sharded.SnapshotDelta(state, &stats);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(stats.full_rebuild);
  EXPECT_EQ(stats.merged_shards, 4u);
  EXPECT_EQ(stats.base_shards, 0u);
  EXPECT_EQ(first->ObservedInserts(), 8000);

  // Second call, nothing mutated: every shard is quiescent across a whole
  // window, so the call both merges them and folds them into the base.
  auto second = sharded.SnapshotDelta(state, &stats);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->ObservedInserts(), 8000);

  // Third call: the entire shard set is covered by the retained base — no
  // shard copy, no merge.
  auto third = sharded.SnapshotDelta(state, &stats);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(stats.full_rebuild);
  EXPECT_EQ(stats.merged_shards, 0u);
  EXPECT_EQ(stats.base_shards, 4u);
  EXPECT_EQ(stats.delta_fraction, 0.0);
  EXPECT_EQ(third->ObservedInserts(), 8000);
  EXPECT_TRUE(third->Validate().ok());
}

TEST(ShardedSynopsisTest, SnapshotDeltaMergesOnlyDirtyShards) {
  auto sharded = MakeConciseShards(4, 4096, 95);
  for (Value v : ZipfValues(8000, 300, 1.0, 96)) sharded.Insert(v);

  ShardedSynopsis<ConciseSample>::DeltaState state;
  ShardedDeltaStats stats;
  ASSERT_TRUE(sharded.SnapshotDelta(state, &stats).ok());

  // Keep shard 2 hot across the next window: it must not fold into the
  // base, while the quiescent shards 0/1/3 do.
  sharded.WithShardMutable(2, [](ConciseSample& s) {
    s.Insert(12345);
    return 0;
  });
  ASSERT_TRUE(sharded.SnapshotDelta(state, &stats).ok());

  // Dirty it again: this call serves 0/1/3 from the base and re-merges
  // only shard 2.
  sharded.WithShardMutable(2, [](ConciseSample& s) {
    s.Insert(54321);
    return 0;
  });
  auto delta = sharded.SnapshotDelta(state, &stats);
  ASSERT_TRUE(delta.ok());
  EXPECT_FALSE(stats.full_rebuild);
  EXPECT_EQ(stats.merged_shards, 1u);
  EXPECT_EQ(stats.base_shards, 3u);
  EXPECT_DOUBLE_EQ(stats.delta_fraction, 0.25);
  EXPECT_EQ(delta->ObservedInserts(), 8002);
  EXPECT_TRUE(delta->Validate().ok());
}

TEST(ShardedSynopsisTest, SnapshotDeltaDiscardsBaseWhenInBaseShardMutates) {
  auto sharded = MakeConciseShards(4, 4096, 97);
  for (Value v : ZipfValues(8000, 300, 1.0, 98)) sharded.Insert(v);

  ShardedSynopsis<ConciseSample>::DeltaState state;
  ShardedDeltaStats stats;
  ASSERT_TRUE(sharded.SnapshotDelta(state, &stats).ok());
  ASSERT_TRUE(sharded.SnapshotDelta(state, &stats).ok());  // folds all four

  // A shard the base already covers mutates: a merge is not reversible, so
  // the whole base is poisoned and the call degrades to a full re-merge.
  sharded.WithShardMutable(1, [](ConciseSample& s) {
    s.Insert(777);
    return 0;
  });
  auto rebuilt = sharded.SnapshotDelta(state, &stats);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE(stats.full_rebuild);
  EXPECT_EQ(stats.merged_shards, 4u);
  EXPECT_EQ(stats.base_shards, 0u);
  EXPECT_EQ(rebuilt->ObservedInserts(), 8001);
}

TEST(ShardedSynopsisTest, SnapshotDeltaMatchesFullSnapshotContents) {
  // Below the footprint bound a concise sample is an exact multiset, so
  // the base+delta merge must reproduce Snapshot()'s contents bit-for-bit
  // across rounds of churn (round-robin InsertBatch dirties one shard per
  // round, exercising the base path on the others).
  auto sharded = MakeConciseShards(8, 8192, 100);
  ShardedSynopsis<ConciseSample>::DeltaState state;
  const auto sorted_entries = [](const ConciseSample& s) {
    std::vector<ValueCount> entries = s.Entries();
    std::sort(entries.begin(), entries.end(),
              [](const ValueCount& a, const ValueCount& b) {
                return a.value < b.value;
              });
    return entries;
  };
  for (int round = 0; round < 5; ++round) {
    const std::vector<Value> data =
        ZipfValues(2000, 400, 1.0, 101 + static_cast<std::uint64_t>(round));
    sharded.InsertBatch(data);
    auto delta = sharded.SnapshotDelta(state);
    auto full = sharded.Snapshot();
    ASSERT_TRUE(delta.ok());
    ASSERT_TRUE(full.ok());
    EXPECT_EQ(delta->ObservedInserts(), full->ObservedInserts());
    EXPECT_EQ(sorted_entries(*delta), sorted_entries(*full))
        << "round " << round;
  }
}

}  // namespace
}  // namespace aqua
