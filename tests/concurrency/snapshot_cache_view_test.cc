// Epoch consistency of the {snapshot, view} pair under concurrency:
// readers pin EpochState shared_ptrs from a SnapshotCache while writers
// keep feeding the underlying ShardedSynopsis and reporting ops, so
// refreshes race reads the whole time.  The invariant: whatever epoch a
// reader lands on, the frozen view agrees with *its* snapshot (scalars
// and answers), and a pinned epoch never changes underneath the reader —
// even long after newer epochs were published.  Assertions run via atomic
// violation counters (gtest EXPECTs are not thread-safe); the suite name
// keeps "SnapshotCache" so the ThreadSanitizer CI job picks it up, which
// is where the race-freedom teeth are.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/result.h"
#include "concurrency/sharded_synopsis.h"
#include "concurrency/snapshot_cache.h"
#include "core/concise_sample.h"
#include "hotlist/concise_hot_list.h"
#include "random/xoshiro256.h"
#include "registry/typed_handle.h"
#include "view/frozen_view.h"
#include "view/view_builders.h"
#include "workload/generators.h"

namespace aqua {
namespace {

ConciseSample MakeShard(std::size_t i) {
  ConciseSampleOptions options;
  options.footprint_bound = 512;
  std::uint64_t sm = 0xF007 ^ (0x9e3779b97f4a7c15ULL * (i + 1));
  options.seed = SplitMix64Next(sm);
  return ConciseSample(options);
}

using ConciseEpoch = EpochState<ConciseSample>;

/// Cache whose refresher merges the sharded synopsis and freezes a view
/// from the merged snapshot — the same shape TypedSynopsisHandle builds.
SnapshotCache<ConciseEpoch> MakeCache(ShardedSynopsis<ConciseSample>& sharded,
                                      std::int64_t max_stale_ops) {
  return SnapshotCache<ConciseEpoch>(
      [&sharded]() -> Result<ConciseEpoch> {
        AQUA_ASSIGN_OR_RETURN(ConciseSample merged, sharded.Snapshot());
        ConciseEpoch state{std::move(merged), std::nullopt, 0};
        state.view.emplace(BuildConciseView(state.snapshot));
        return state;
      },
      {.max_stale_ops = max_stale_ops,
       .max_stale_interval = std::chrono::hours(1)});
}

/// True when `state`'s view was frozen from `state`'s snapshot: every
/// frozen scalar re-derivable from the snapshot must agree.
bool ViewMatchesSnapshot(const ConciseEpoch& state) {
  if (!state.view.has_value()) return false;
  const FrozenView& view = *state.view;
  return view.sample_size() == state.snapshot.SampleSize() &&
         view.observed_inserts() == state.snapshot.ObservedInserts() &&
         view.entry_count() ==
             static_cast<std::int64_t>(state.snapshot.Entries().size());
}

TEST(SnapshotCacheViewStress, PinnedEpochStaysConsistentUnderIngest) {
  constexpr std::size_t kShards = 4;
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kBatches = 150;
  constexpr std::size_t kBatch = 256;

  ShardedSynopsis<ConciseSample> sharded(
      kShards, [](std::size_t i) { return MakeShard(i); },
      ShardRouting::kRoundRobin);
  SnapshotCache<ConciseEpoch> cache = MakeCache(sharded, /*max_stale_ops=*/512);

  std::atomic<bool> stop{false};
  std::atomic<int> get_failures{0};
  std::atomic<int> view_mismatches{0};
  std::atomic<int> pin_mutations{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&sharded, &cache, w] {
      const std::vector<Value> values = ZipfValues(
          kBatches * static_cast<std::int64_t>(kBatch), 5000, 1.0,
          0xBEE5 + static_cast<std::uint64_t>(w));
      const std::span<const Value> all(values);
      for (std::size_t i = 0; i < all.size(); i += kBatch) {
        sharded.InsertBatch(all.subspan(i, kBatch));
        cache.OnOps(static_cast<std::int64_t>(kBatch));
      }
    });
  }

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&cache, &stop, &get_failures, &view_mismatches,
                          &pin_mutations] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto result = cache.Get();
        if (!result.ok()) {
          get_failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const std::shared_ptr<const ConciseEpoch> state =
            result.ValueOrDie();
        if (!ViewMatchesSnapshot(*state)) {
          view_mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        // Hold the pin across a yield (refreshes keep landing meanwhile):
        // the epoch's frozen scalars must not move.
        const std::int64_t pinned_size = state->view->sample_size();
        const double pinned_f2 = state->view->MomentF(2);
        std::this_thread::yield();
        if (state->view->sample_size() != pinned_size ||
            state->view->MomentF(2) != pinned_f2 ||
            !ViewMatchesSnapshot(*state)) {
          pin_mutations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(get_failures.load(), 0);
  EXPECT_EQ(view_mismatches.load(), 0);
  EXPECT_EQ(pin_mutations.load(), 0);
  EXPECT_GE(cache.epoch(), 1u);

  // Quiesced: one final refreshed epoch still satisfies the invariant.
  cache.OnOps(1 << 20);
  const auto final_state = cache.Get();
  ASSERT_TRUE(final_state.ok());
  EXPECT_TRUE(ViewMatchesSnapshot(*final_state.ValueOrDie()));
}

TEST(SnapshotCacheViewStress, ViewAnswersMatchDirectPathWithinEpoch) {
  constexpr std::size_t kShards = 2;
  constexpr int kBatches = 120;
  constexpr std::size_t kBatch = 256;

  ShardedSynopsis<ConciseSample> sharded(
      kShards, [](std::size_t i) { return MakeShard(i); },
      ShardRouting::kRoundRobin);
  SnapshotCache<ConciseEpoch> cache = MakeCache(sharded, /*max_stale_ops=*/256);

  std::atomic<bool> stop{false};
  std::atomic<int> answer_mismatches{0};
  std::atomic<int> epochs_checked{0};

  std::thread writer([&sharded, &cache] {
    const std::vector<Value> values = ZipfValues(
        kBatches * static_cast<std::int64_t>(kBatch), 5000, 1.5, 0xFACADE);
    const std::span<const Value> all(values);
    for (std::size_t i = 0; i < all.size(); i += kBatch) {
      sharded.InsertBatch(all.subspan(i, kBatch));
      cache.OnOps(static_cast<std::int64_t>(kBatch));
    }
  });

  std::thread reader([&cache, &stop, &answer_mismatches, &epochs_checked] {
    HotListQuery query;
    query.k = 10;
    // On a single-core host the writer can finish before this thread is
    // first scheduled; keep going until at least one epoch was checked.
    while (!stop.load(std::memory_order_acquire) ||
           epochs_checked.load(std::memory_order_relaxed) == 0) {
      const auto result = cache.Get();
      if (!result.ok()) continue;
      const std::shared_ptr<const ConciseEpoch> state = result.ValueOrDie();
      // Within one pinned epoch, the O(k) view report and the O(m log m)
      // direct report over the same immutable snapshot must be identical
      // item for item — ingest racing in the background notwithstanding.
      const HotList from_view = state->view->HotListAnswer(query);
      const HotList direct = ConciseHotList(state->snapshot).Report(query);
      bool equal = from_view.size() == direct.size();
      for (std::size_t i = 0; equal && i < direct.size(); ++i) {
        equal = from_view[i].value == direct[i].value &&
                from_view[i].estimated_count == direct[i].estimated_count &&
                from_view[i].synopsis_count == direct[i].synopsis_count;
      }
      if (!equal) answer_mismatches.fetch_add(1, std::memory_order_relaxed);
      epochs_checked.fetch_add(1, std::memory_order_relaxed);
    }
  });

  writer.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(answer_mismatches.load(), 0);
  EXPECT_GT(epochs_checked.load(), 0);
}

}  // namespace
}  // namespace aqua
