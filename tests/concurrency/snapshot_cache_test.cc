// Single-threaded semantics of SnapshotCache: staleness bounds (ops and
// wall-interval), epoch swaps, hit/refresh accounting, refresher-failure
// tolerance, and Peek().  The racing behavior lives in
// sharded_stress_test.cc under TSan.

#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "common/result.h"
#include "concurrency/snapshot_cache.h"

namespace aqua {
namespace {

/// A trivial "synopsis": the number of times the refresher ran.
struct Counter {
  int builds = 0;
};

TEST(SnapshotCacheTest, FirstGetBuildsThenHits) {
  int builds = 0;
  SnapshotCache<Counter> cache(
      [&builds]() -> Result<Counter> { return Counter{++builds}; },
      {.max_stale_ops = 100,
       .max_stale_interval = std::chrono::hours(1)});
  EXPECT_EQ(cache.Peek(), nullptr);
  EXPECT_EQ(cache.epoch(), 0u);

  const auto first = cache.Get();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.ValueOrDie()->builds, 1);
  EXPECT_EQ(cache.epoch(), 1u);

  // No ops reported, interval far away: every Get() is a hit on epoch 1.
  for (int i = 0; i < 5; ++i) {
    const auto again = cache.Get();
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.ValueOrDie()->builds, 1);
  }
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(cache.Stats().hits, 5);
  EXPECT_EQ(cache.Stats().refreshes, 1);
}

TEST(SnapshotCacheTest, OpsBoundTriggersRefresh) {
  int builds = 0;
  SnapshotCache<Counter> cache(
      [&builds]() -> Result<Counter> { return Counter{++builds}; },
      {.max_stale_ops = 10, .max_stale_interval = std::chrono::hours(1)});
  (void)cache.Get();
  EXPECT_FALSE(cache.IsStale());

  cache.OnOps(9);
  EXPECT_FALSE(cache.IsStale());
  EXPECT_EQ(cache.Get().ValueOrDie()->builds, 1);  // still a hit

  cache.OnOps(1);  // reaches the bound
  EXPECT_TRUE(cache.IsStale());
  EXPECT_EQ(cache.Get().ValueOrDie()->builds, 2);
  EXPECT_EQ(cache.epoch(), 2u);
  EXPECT_FALSE(cache.IsStale());  // counter consumed by the refresh
}

TEST(SnapshotCacheTest, OpsDuringRefreshCarryOver) {
  int builds = 0;
  SnapshotCache<Counter>* cache_ptr = nullptr;
  SnapshotCache<Counter> cache(
      [&builds, &cache_ptr]() -> Result<Counter> {
        // Ingest lands *while* the merge runs: those ops must count toward
        // the next staleness window, not be silently absorbed.
        if (cache_ptr != nullptr && builds == 0) cache_ptr->OnOps(7);
        return Counter{++builds};
      },
      {.max_stale_ops = 5, .max_stale_interval = std::chrono::hours(1)});
  cache_ptr = &cache;
  (void)cache.Get();  // first build; refresher reports 7 mid-merge ops
  EXPECT_TRUE(cache.IsStale());  // 7 >= 5 already pending
  EXPECT_EQ(cache.Get().ValueOrDie()->builds, 2);
  EXPECT_FALSE(cache.IsStale());
}

TEST(SnapshotCacheTest, WallIntervalTriggersRefresh) {
  int builds = 0;
  SnapshotCache<Counter> cache(
      [&builds]() -> Result<Counter> { return Counter{++builds}; },
      {.max_stale_ops = 0,  // ops bound disabled
       .max_stale_interval = std::chrono::milliseconds(20)});
  (void)cache.Get();
  EXPECT_EQ(builds, 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(cache.IsStale());
  EXPECT_EQ(cache.Get().ValueOrDie()->builds, 2);
}

TEST(SnapshotCacheTest, DisabledBoundsNeverRefreshAgain) {
  int builds = 0;
  SnapshotCache<Counter> cache(
      [&builds]() -> Result<Counter> { return Counter{++builds}; },
      {.max_stale_ops = 0,
       .max_stale_interval = std::chrono::nanoseconds(0)});
  (void)cache.Get();
  cache.OnOps(1000000);
  EXPECT_FALSE(cache.IsStale());
  EXPECT_EQ(cache.Get().ValueOrDie()->builds, 1);
}

TEST(SnapshotCacheTest, FirstRefreshFailurePropagates) {
  SnapshotCache<Counter> cache(
      []() -> Result<Counter> {
        return Status::Internal("merge failed");
      },
      {.max_stale_ops = 1, .max_stale_interval = std::chrono::hours(1)});
  const auto result = cache.Get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(cache.epoch(), 0u);
}

TEST(SnapshotCacheTest, LaterRefreshFailureServesPreviousEpoch) {
  int builds = 0;
  bool fail = false;
  SnapshotCache<Counter> cache(
      [&builds, &fail]() -> Result<Counter> {
        if (fail) return Status::Internal("merge failed");
        return Counter{++builds};
      },
      {.max_stale_ops = 1, .max_stale_interval = std::chrono::hours(1)});
  ASSERT_TRUE(cache.Get().ok());
  fail = true;
  cache.OnOps(5);
  const auto served = cache.Get();  // refresh fails, previous epoch serves
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served.ValueOrDie()->builds, 1);
  EXPECT_EQ(cache.epoch(), 1u);
  fail = false;
  const auto recovered = cache.Get();  // still stale; now succeeds
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.ValueOrDie()->builds, 2);
  EXPECT_EQ(cache.epoch(), 2u);
}

TEST(SnapshotCacheTest, ForcedRefreshSwapsEpochWithoutStaleness) {
  int builds = 0;
  SnapshotCache<Counter> cache(
      [&builds]() -> Result<Counter> { return Counter{++builds}; },
      {.max_stale_ops = 1000, .max_stale_interval = std::chrono::hours(1)});
  (void)cache.Get();
  EXPECT_TRUE(cache.Refresh().ok());
  EXPECT_EQ(cache.epoch(), 2u);
  EXPECT_EQ(cache.Peek()->builds, 2);
}

TEST(SnapshotCacheTest, ExternalRefreshNeverRebuildsInline) {
  int builds = 0;
  SnapshotCache<Counter> cache(
      [&builds]() -> Result<Counter> { return Counter{++builds}; },
      {.max_stale_ops = 1,
       .max_stale_interval = std::chrono::hours(1),
       .external_refresh = true});
  // Bootstrap: the very first Get() must still build inline — serving null
  // would be worse than one inline build.
  EXPECT_EQ(cache.Get().ValueOrDie()->builds, 1);
  EXPECT_EQ(cache.Stats().inline_refreshes, 1);

  cache.OnOps(100);
  ASSERT_TRUE(cache.IsStale());
  // Stale + warmed: every Get() is a pointer copy of the current epoch; the
  // re-merge belongs to the pump.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(cache.Get().ValueOrDie()->builds, 1);
  }
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(cache.Stats().inline_refreshes, 1);
  EXPECT_EQ(cache.Stats().stale_served, 5);
  EXPECT_TRUE(cache.IsStale());  // nothing consumed the staleness

  // Only Refresh() — the pump's entry point — rebuilds.
  ASSERT_TRUE(cache.Refresh().ok());
  EXPECT_EQ(cache.Stats().external_refreshes, 1);
  EXPECT_EQ(cache.Stats().inline_refreshes, 1);
  EXPECT_FALSE(cache.IsStale());
  EXPECT_EQ(cache.Get().ValueOrDie()->builds, 2);
}

TEST(SnapshotCacheTest, RefreshFailuresAreCountedNotSwallowed) {
  int builds = 0;
  bool fail = false;
  SnapshotCache<Counter> cache(
      [&builds, &fail]() -> Result<Counter> {
        if (fail) return Status::Internal("merge failed");
        return Counter{++builds};
      },
      {.max_stale_ops = 1, .max_stale_interval = std::chrono::hours(1)});
  ASSERT_TRUE(cache.Get().ok());
  EXPECT_EQ(cache.Stats().refresh_failures, 0);

  fail = true;
  cache.OnOps(5);
  ASSERT_TRUE(cache.Get().ok());  // previous epoch serves
  EXPECT_EQ(cache.Stats().refresh_failures, 1);
  EXPECT_FALSE(cache.Refresh().ok());  // forced refresh surfaces the status
  EXPECT_EQ(cache.Stats().refresh_failures, 2);

  fail = false;
  ASSERT_TRUE(cache.Refresh().ok());
  EXPECT_EQ(cache.Stats().refresh_failures, 2);
  EXPECT_EQ(cache.Peek()->builds, 2);
}

TEST(SnapshotCacheTest, RefreshLatencyPercentilesTrackTheMerge) {
  SnapshotCache<Counter> cache(
      []() -> Result<Counter> {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        return Counter{1};
      },
      {.max_stale_ops = 1000, .max_stale_interval = std::chrono::hours(1)});
  EXPECT_EQ(cache.Stats().refresh_ns_p50, 0);
  (void)cache.Get();
  ASSERT_TRUE(cache.Refresh().ok());
  ASSERT_TRUE(cache.Refresh().ok());
  const auto stats = cache.Stats();
  EXPECT_GE(stats.refresh_ns_p50, 2'000'000);
  EXPECT_GE(stats.refresh_ns_p99, stats.refresh_ns_p50);
}

}  // namespace
}  // namespace aqua
