#include "concurrency/shared_synopsis.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "hotlist/counting_hot_list.h"
#include "workload/generators.h"

namespace aqua {
namespace {

TEST(SharedSynopsisTest, SingleThreadBehavesLikePlain) {
  SharedSynopsis<ConciseSample> shared(
      ConciseSample(ConciseSampleOptions{.footprint_bound = 100, .seed = 1}));
  for (Value v = 0; v < 1000; ++v) shared.Insert(v % 10);
  shared.WithRead([](const ConciseSample& s) {
    EXPECT_EQ(s.ObservedInserts(), 1000);
    EXPECT_TRUE(s.Validate().ok());
    return 0;
  });
}

TEST(SharedSynopsisTest, ConcurrentInsertsAllObserved) {
  SharedSynopsis<ConciseSample> shared(ConciseSample(
      ConciseSampleOptions{.footprint_bound = 500, .seed = 2}));
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared, t] {
      const std::vector<Value> data =
          ZipfValues(kPerThread, 1000, 1.0, 100 + static_cast<std::uint64_t>(t));
      for (Value v : data) shared.Insert(v);
    });
  }
  for (std::thread& t : threads) t.join();
  shared.WithRead([&](const ConciseSample& s) {
    EXPECT_EQ(s.ObservedInserts(), kThreads * kPerThread);
    EXPECT_TRUE(s.Validate().ok());
    EXPECT_LE(s.Footprint(), 500);
    return 0;
  });
}

TEST(SharedSynopsisTest, BatchInserterFlushesEverything) {
  SharedSynopsis<CountingSample> shared(CountingSample(
      CountingSampleOptions{.footprint_bound = 300, .seed = 3}));
  constexpr int kThreads = 4;
  constexpr std::int64_t kPerThread = 30000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared, t] {
      BatchInserter<CountingSample> inserter(&shared, 512);
      const std::vector<Value> data = ZipfValues(
          kPerThread, 500, 1.25, 200 + static_cast<std::uint64_t>(t));
      for (Value v : data) inserter.Add(v);
      // Destructor flushes the tail.
    });
  }
  for (std::thread& t : threads) t.join();
  shared.WithRead([&](const CountingSample& s) {
    EXPECT_EQ(s.ObservedInserts(), kThreads * kPerThread);
    EXPECT_TRUE(s.Validate().ok());
    return 0;
  });
}

TEST(SharedSynopsisTest, ConcurrentReadsDuringWrites) {
  SharedSynopsis<CountingSample> shared(CountingSample(
      CountingSampleOptions{.footprint_bound = 200, .seed = 4}));
  std::thread writer([&shared] {
    const std::vector<Value> data = ZipfValues(200000, 1000, 1.2, 5);
    for (Value v : data) shared.Insert(v);
  });
  std::int64_t queries = 0;
  while (queries < 50) {
    const HotList hot = shared.WithRead([](const CountingSample& s) {
      return CountingHotList(s).Report({.k = 5, .beta = 3});
    });
    // Reports are internally consistent snapshots.
    for (std::size_t i = 1; i < hot.size(); ++i) {
      ASSERT_LE(hot[i].estimated_count, hot[i - 1].estimated_count);
    }
    ++queries;
  }
  writer.join();
  shared.WithRead([](const CountingSample& s) {
    EXPECT_TRUE(s.Validate().ok());
    return 0;
  });
}

TEST(SharedSynopsisTest, DeletesUnderConcurrency) {
  SharedSynopsis<CountingSample> shared(CountingSample(
      CountingSampleOptions{.footprint_bound = 400, .seed = 6}));
  // Pre-populate so deletes hit live values.
  for (int i = 0; i < 10000; ++i) shared.Insert(i % 50);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&shared, t] {
      for (int i = 0; i < 2000; ++i) {
        if ((i + t) % 2 == 0) {
          shared.Insert(i % 50);
        } else {
          (void)shared.Delete(i % 50);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  shared.WithRead([](const CountingSample& s) {
    EXPECT_TRUE(s.Validate().ok());
    return 0;
  });
}

}  // namespace
}  // namespace aqua
