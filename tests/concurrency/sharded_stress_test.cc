// Concurrency stress tests: Snapshot() racing InsertBatch()/Delete() on a
// ShardedSynopsis under both routing policies, and SnapshotCache readers
// racing ingest-side OnOps() and forced Refresh() calls.  The assertions
// are deliberately weak (counts within the bounds the interleaving allows,
// merged snapshots structurally valid) — the tests' real teeth are the
// ThreadSanitizer CI job, which fails on any data race these interleavings
// expose.
//
// The container pins us to few cores, so each test keeps thread counts
// small and iteration counts moderate; TSan's happens-before analysis does
// not need parallel *speed*, only overlapping critical sections.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "concurrency/sharded_synopsis.h"
#include "concurrency/snapshot_cache.h"
#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "random/xoshiro256.h"
#include "workload/generators.h"

namespace aqua {
namespace {

ConciseSample MakeConciseShard(std::size_t i, Words footprint = 512) {
  ConciseSampleOptions options;
  options.footprint_bound = footprint;
  std::uint64_t sm = 0xC0FFEE ^ (0x9e3779b97f4a7c15ULL * (i + 1));
  options.seed = SplitMix64Next(sm);
  return ConciseSample(options);
}

CountingSample MakeCountingShard(std::size_t i, Words footprint = 512) {
  CountingSampleOptions options;
  options.footprint_bound = footprint;
  std::uint64_t sm = 0xD0D0 ^ (0x9e3779b97f4a7c15ULL * (i + 1));
  options.seed = SplitMix64Next(sm);
  return CountingSample(options);
}

TEST(ShardedStress, SnapshotRacesInsertBatchRoundRobin) {
  constexpr std::size_t kShards = 4;
  constexpr int kWriters = 2;
  constexpr int kBatches = 200;
  constexpr std::size_t kBatch = 256;
  ShardedSynopsis<ConciseSample> sharded(
      kShards, [](std::size_t i) { return MakeConciseShard(i); },
      ShardRouting::kRoundRobin);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&sharded, w] {
      const std::vector<Value> values = ZipfValues(
          kBatches * static_cast<std::int64_t>(kBatch), 500, 1.0, 77 + w);
      for (std::size_t off = 0; off < values.size(); off += kBatch) {
        sharded.InsertBatch(
            std::span<const Value>(values.data() + off, kBatch));
      }
    });
  }
  std::thread reader([&sharded, &stop] {
    std::int64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const Result<ConciseSample> snapshot = sharded.Snapshot();
      ASSERT_TRUE(snapshot.ok());
      // Observed inserts only grow; a merged snapshot reflects some prefix
      // of each shard's stream.
      const std::int64_t n = snapshot.ValueOrDie().ObservedInserts();
      EXPECT_GE(n, last);
      last = n;
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  const Result<ConciseSample> final_snapshot = sharded.Snapshot();
  ASSERT_TRUE(final_snapshot.ok());
  EXPECT_EQ(final_snapshot.ValueOrDie().ObservedInserts(),
            static_cast<std::int64_t>(kWriters * kBatches * kBatch));
}

TEST(ShardedStress, SnapshotRacesInsertAndDeleteByValue) {
  constexpr std::size_t kShards = 4;
  ShardedSynopsis<CountingSample> sharded(
      kShards, [](std::size_t i) { return MakeCountingShard(i); },
      ShardRouting::kByValue);

  // Seed every value with enough occurrences that concurrent deletes always
  // find something to delete on the owning shard.
  std::vector<Value> warmup;
  for (Value v = 1; v <= 64; ++v) {
    for (int i = 0; i < 50; ++i) warmup.push_back(v);
  }
  sharded.InsertBatch(warmup);

  std::atomic<bool> stop{false};
  std::thread inserter([&sharded] {
    const std::vector<Value> values = ZipfValues(20000, 64, 0.5, 1234);
    for (std::size_t off = 0; off < values.size(); off += 128) {
      const std::size_t len = std::min<std::size_t>(128, values.size() - off);
      sharded.InsertBatch(std::span<const Value>(values.data() + off, len));
    }
  });
  std::thread deleter([&sharded] {
    Xoshiro256 rng(4321);
    for (int i = 0; i < 2000; ++i) {
      // Every value has >= 50 seeded occurrences and only 2000 deletes run,
      // so deletes of present values must succeed (Theorem 5 exactness).
      const Value v = static_cast<Value>(1 + rng() % 64);
      const Status status = sharded.Delete(v);
      EXPECT_TRUE(status.ok()) << status.message();
    }
  });
  std::thread reader([&sharded, &stop] {
    // Counting samples are unmergeable (no Snapshot()); race the read path
    // that exists: per-shard locked reads of the aggregate count and a
    // shard-local copy under the shard lock.
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_GE(sharded.ObservedInserts(), 0);
      sharded.WithShard(0, [](const CountingSample& shard) {
        const CountingSample copy = shard;
        EXPECT_GE(copy.ObservedInserts(), 0);
        return 0;
      });
    }
  });
  inserter.join();
  deleter.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  // ObservedInserts counts the insert stream only (deletes adjust counts,
  // not n); every one of warmup + 20000 inserts must be accounted for.
  const std::int64_t expected =
      static_cast<std::int64_t>(warmup.size()) + 20000;
  EXPECT_EQ(sharded.ObservedInserts(), expected);
}

TEST(ShardedStress, RoundRobinDeleteRefusedDuringRace) {
  ShardedSynopsis<CountingSample> sharded(
      2, [](std::size_t i) { return MakeCountingShard(i); },
      ShardRouting::kRoundRobin);
  sharded.InsertBatch(std::vector<Value>(100, 7));
  const Status status = sharded.Delete(7);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotCacheStress, GetRacesOnOpsAndRefresh) {
  constexpr std::size_t kShards = 4;
  ShardedSynopsis<ConciseSample> sharded(
      kShards, [](std::size_t i) { return MakeConciseShard(i); },
      ShardRouting::kRoundRobin);
  SnapshotCache<ConciseSample> cache(
      [&sharded] { return sharded.Snapshot(); },
      {.max_stale_ops = 512,
       .max_stale_interval = std::chrono::milliseconds(1)});

  std::atomic<bool> stop{false};
  std::thread writer([&sharded, &cache] {
    const std::vector<Value> values = ZipfValues(50000, 500, 1.0, 99);
    for (std::size_t off = 0; off < values.size(); off += 128) {
      const std::size_t len = std::min<std::size_t>(128, values.size() - off);
      sharded.InsertBatch(std::span<const Value>(values.data() + off, len));
      cache.OnOps(static_cast<std::int64_t>(len));
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&cache, &stop] {
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto snapshot = cache.Get();
        ASSERT_TRUE(snapshot.ok());
        ASSERT_NE(snapshot.ValueOrDie(), nullptr);
        EXPECT_GE(snapshot.ValueOrDie()->ObservedInserts(), 0);
        const std::uint64_t epoch = cache.epoch();
        EXPECT_GE(epoch, last_epoch);  // epochs only move forward
        last_epoch = epoch;
      }
    });
  }
  std::thread maintenance([&cache, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_TRUE(cache.Refresh().ok());
    }
  });
  writer.join();
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  maintenance.join();

  // After the dust settles, one forced refresh must observe every insert.
  ASSERT_TRUE(cache.Refresh().ok());
  EXPECT_EQ(cache.Peek()->ObservedInserts(), 50000);

  const auto stats = cache.Stats();
  EXPECT_GT(stats.refreshes, 0);
}

TEST(SnapshotCacheStress, PinnedEpochSurvivesConcurrentSwaps) {
  ShardedSynopsis<ConciseSample> sharded(
      2, [](std::size_t i) { return MakeConciseShard(i); },
      ShardRouting::kRoundRobin);
  sharded.InsertBatch(std::vector<Value>(1000, 42));
  SnapshotCache<ConciseSample> cache(
      [&sharded] { return sharded.Snapshot(); },
      {.max_stale_ops = 1, .max_stale_interval = std::chrono::nanoseconds(0)});

  // Pin an epoch, then force many swaps; the pinned snapshot must stay
  // valid and unchanged (readers never block refreshes, refreshes never
  // mutate a published snapshot).
  const auto pinned = cache.Get();
  ASSERT_TRUE(pinned.ok());
  const std::int64_t pinned_inserts =
      pinned.ValueOrDie()->ObservedInserts();
  std::thread churn([&sharded, &cache] {
    for (int i = 0; i < 200; ++i) {
      sharded.InsertBatch(std::vector<Value>(10, 7));
      cache.OnOps(10);
      (void)cache.Get();
    }
  });
  churn.join();
  EXPECT_EQ(pinned.ValueOrDie()->ObservedInserts(), pinned_inserts);
  EXPECT_GT(cache.epoch(), 1u);
}

}  // namespace
}  // namespace aqua
