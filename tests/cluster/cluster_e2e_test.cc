// End-to-end cluster test: one aggregator + two ingest aqua_serve
// processes, a zipf stream round-robined across the ingest nodes, deltas
// shipped over real HTTP, and the aggregator's answers cross-checked
// against a single-process oracle fed the concatenated stream.
//
// Two legs:
//  - exact regime (footprint >> stream length): the merged answers must be
//    byte-identical to the oracle's — same JSON, modulo response_ns;
//  - sampled regime: the merged answers are statistical, checked under the
//    seed-swept tolerance policy of tests/property/seed_sweep.h (the
//    chi-square-grade rigor lives in wire_merge_property_test.cc; here the
//    bands pin that nothing is grossly off over real HTTP).
//
// The binary path is injected by CMake as AQUA_SERVE_BINARY; every ctest
// entry carries a TIMEOUT so a hung process fails rather than wedging CI.

#include <cmath>
#include <memory>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_util.h"
#include "property/seed_sweep.h"
#include "server/cluster.h"
#include "server/e2e_util.h"
#include "server/json.h"
#include "server/serving_engine.h"
#include "workload/generators.h"

namespace aqua {
namespace {

using namespace e2e;  // NOLINT(build/namespaces): test-local helpers
using cluster_test::FreshDataDir;
using cluster_test::JsonInt;

std::vector<std::string> AggregatorArgs(Words footprint) {
  return {"--role",   "aggregator",
          "--shards", "1",
          "--footprint", std::to_string(footprint)};
}

std::vector<std::string> IngestArgs(const std::string& node_id,
                                    const std::string& data_dir,
                                    std::uint16_t aggregator_port,
                                    Words footprint) {
  return {"--role",
          "ingest",
          "--node-id",
          node_id,
          "--data-dir",
          data_dir,
          "--push-to",
          "127.0.0.1:" + std::to_string(aggregator_port),
          "--shards",
          "1",
          "--footprint",
          std::to_string(footprint),
          // Pushes are driven manually via /cluster/push_now so the test
          // controls exactly when deltas ship.
          "--push-interval-ms",
          "60000",
          "--checkpoint-ops",
          "0"};
}

/// POSTs `values` to the node's /ingest in chunks, asserting every ack.
void IngestChunks(std::uint16_t port, const std::vector<Value>& values,
                  std::size_t chunk = 500) {
  for (std::size_t at = 0; at < values.size(); at += chunk) {
    std::string body = "[";
    const std::size_t end = std::min(values.size(), at + chunk);
    for (std::size_t i = at; i < end; ++i) {
      if (i > at) body += ",";
      body += std::to_string(values[i]);
    }
    body += "]";
    const RawResponse ack = Post(port, "/ingest", body);
    ASSERT_EQ(ack.status, 200) << ack.body;
  }
}

void PushNow(std::uint16_t port) {
  const RawResponse pushed = Post(port, "/cluster/push_now", "{}");
  ASSERT_EQ(pushed.status, 200) << pushed.body;
}

/// Splits even-index values to node 1, odd to node 2 — the round-robin a
/// load balancer would apply.
void SplitStream(const std::vector<Value>& data, std::vector<Value>* first,
                 std::vector<Value>* second) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    (i % 2 == 0 ? first : second)->push_back(data[i]);
  }
}

/// The single-process oracle: same selection, same bounds, fed the whole
/// stream.
std::unique_ptr<ServingEngine> MakeOracle(Words footprint,
                                          const std::vector<Value>& data) {
  ServingEngineOptions options;
  static_cast<SynopsisSelection&>(options) = ClusterSelection();
  options.shards = 1;
  options.footprint_bound = footprint;
  auto oracle = std::make_unique<ServingEngine>(options);
  oracle->InsertBatch(data);
  return oracle;
}

std::string ExpectedEstimateJson(const QueryResponse<Estimate>& response) {
  std::string out;
  JsonWriter w(&out);
  w.BeginObject();
  w.Key("estimate").Double(response.answer.value);
  w.Key("ci_low").Double(response.answer.ci_low);
  w.Key("ci_high").Double(response.answer.ci_high);
  w.Key("confidence").Double(response.answer.confidence);
  w.Key("sample_points").Int(response.answer.sample_points);
  w.Key("method").String(response.method);
  w.EndObject();
  return out;
}

TEST(ClusterE2eTest, TwoIngestClusterMatchesOracleExactly) {
  constexpr Words kFootprint = 4096;  // exact regime for a 2000-op stream
  const std::vector<Value> data = ZipfValues(2000, 50, 1.0, 777);
  std::vector<Value> first, second;
  SplitStream(data, &first, &second);

  ServerProcess aggregator(AggregatorArgs(kFootprint));
  ServerProcess node1(IngestArgs("n1", FreshDataDir("e2e_exact_n1"),
                                 aggregator.port(), kFootprint));
  ServerProcess node2(IngestArgs("n2", FreshDataDir("e2e_exact_n2"),
                                 aggregator.port(), kFootprint));

  IngestChunks(node1.port(), first);
  IngestChunks(node2.port(), second);
  PushNow(node1.port());
  PushNow(node2.port());

  // push_now is synchronous through the commit: by the time both acked,
  // the aggregator has merged both frames.
  const RawResponse status = Fetch(aggregator.port(), "/cluster/status");
  ASSERT_EQ(status.status, 200) << status.body;
  EXPECT_EQ(JsonInt(status.body, "ops_applied"), 2000);
  EXPECT_EQ(JsonInt(status.body, "frames_accepted"), 2);
  EXPECT_EQ(JsonInt(status.body, "frames_deduped"), 0);
  EXPECT_EQ(JsonInt(status.body, "merge_rounds"), 2);

  const std::unique_ptr<ServingEngine> oracle =
      MakeOracle(kFootprint, data);

  // Hot list: identical JSON (the exact regime makes the synopsis state,
  // and therefore the render, deterministic).
  const RawResponse hotlist =
      Fetch(aggregator.port(), "/hotlist?k=10&beta=2");
  ASSERT_EQ(hotlist.status, 200) << hotlist.body;
  HotListQuery query;
  query.k = 10;
  query.beta = 2.0;
  const QueryResponse<HotList> expected_hot = oracle->HotListAnswer(query);
  ASSERT_FALSE(expected_hot.answer.empty());
  std::string expected_hot_json;
  {
    JsonWriter w(&expected_hot_json);
    w.BeginObject();
    w.Key("items").BeginArray();
    for (const HotListItem& item : expected_hot.answer) {
      w.BeginObject();
      w.Key("value").Int(item.value);
      w.Key("estimated_count").Double(item.estimated_count);
      w.Key("synopsis_count").Int(item.synopsis_count);
      w.EndObject();
    }
    w.EndArray();
    w.Key("method").String(expected_hot.method);
    w.EndObject();
  }
  EXPECT_EQ(StripResponseNs(hotlist.body), expected_hot_json);
  EXPECT_EQ(expected_hot.method, "concise-sample");

  // Frequencies, a range count, and a quantile: identical JSON.
  for (Value v : {Value{1}, Value{2}, Value{17}, Value{49}}) {
    const RawResponse got = Fetch(aggregator.port(),
                                  "/frequency?value=" + std::to_string(v));
    ASSERT_EQ(got.status, 200) << got.body;
    EXPECT_EQ(StripResponseNs(got.body),
              ExpectedEstimateJson(oracle->FrequencyAnswer(v)))
        << "value=" << v;
  }
  const RawResponse counted =
      Fetch(aggregator.port(), "/count_where?low=5&high=25");
  ASSERT_EQ(counted.status, 200) << counted.body;
  EXPECT_EQ(StripResponseNs(counted.body),
            ExpectedEstimateJson(
                oracle->CountWhereAnswer(ValueRange{5, 25}, 0.95)));
  const RawResponse quantile = Fetch(aggregator.port(), "/quantile?q=0.5");
  ASSERT_EQ(quantile.status, 200) << quantile.body;
  EXPECT_EQ(StripResponseNs(quantile.body),
            ExpectedEstimateJson(oracle->QuantileAnswer(0.5, 0.95)));

  // Cluster ingest roles drop the counting sample, so /delete answers 409
  // (no delete-capable synopsis) instead of silently diverging.
  const RawResponse deleted = Post(node1.port(), "/delete", "[1]");
  EXPECT_EQ(deleted.status, 409) << deleted.body;
}

TEST(ClusterE2eTest, SampledClusterTracksOracleWithinSweepBands) {
  // Sampled regime over real HTTP, one sweep seed at a time: the top hot
  // value must match the stream's true top value, and the merged frequency
  // estimate of that value must sit within a generous band (≈4 sigma of
  // the binomial sampling noise at this footprint).
  RunSeedSweep([](std::uint64_t base) {
    constexpr Words kFootprint = 512;
    constexpr std::int64_t kN = 20000;
    const std::vector<Value> data = ZipfValues(kN, 500, 1.1, base);
    std::vector<Value> first, second;
    SplitStream(data, &first, &second);
    std::int64_t top_value = 0, top_count = 0;
    {
      std::vector<std::int64_t> freq(501, 0);
      for (Value v : data) ++freq[static_cast<std::size_t>(v)];
      for (std::int64_t v = 1; v <= 500; ++v) {
        if (freq[static_cast<std::size_t>(v)] > top_count) {
          top_count = freq[static_cast<std::size_t>(v)];
          top_value = v;
        }
      }
    }

    ServerProcess aggregator(AggregatorArgs(kFootprint));
    ServerProcess node1(
        IngestArgs("n1", FreshDataDir("e2e_swept_n1_" + std::to_string(base)),
                   aggregator.port(), kFootprint));
    ServerProcess node2(
        IngestArgs("n2", FreshDataDir("e2e_swept_n2_" + std::to_string(base)),
                   aggregator.port(), kFootprint));
    IngestChunks(node1.port(), first, 2000);
    IngestChunks(node2.port(), second, 2000);
    PushNow(node1.port());
    PushNow(node2.port());

    const RawResponse status = Fetch(aggregator.port(), "/cluster/status");
    EXPECT_EQ(JsonInt(status.body, "ops_applied"), kN);  // hard bookkeeping

    const RawResponse hotlist =
        Fetch(aggregator.port(), "/hotlist?k=3&beta=2");
    if (hotlist.status != 200) return false;
    const std::int64_t served_top = JsonInt(hotlist.body, "value");
    if (served_top != top_value) return false;

    const RawResponse frequency = Fetch(
        aggregator.port(), "/frequency?value=" + std::to_string(top_value));
    if (frequency.status != 200) return false;
    const double estimate =
        static_cast<double>(JsonInt(frequency.body, "estimate"));
    // Concise sampling noise: est ~ tau * Binomial(f, 1/tau) with
    // tau ≈ n / footprint, sd ≈ sqrt(f * tau).  4.5 sigma.
    const double tau =
        static_cast<double>(kN) / static_cast<double>(kFootprint);
    const double band = 4.5 * std::sqrt(static_cast<double>(top_count) * tau);
    return std::abs(estimate - static_cast<double>(top_count)) <= band;
  });
}

}  // namespace
}  // namespace aqua
