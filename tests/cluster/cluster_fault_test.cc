// Fault-injection tests for cluster mode: real aqua_serve processes are
// SIGKILLed mid-stream (no shutdown handler, no flush) and restarted over
// the same --data-dir, asserting
//  - a crashed ingest node recovers its synopsis state *byte-identically*
//    from checkpoint + WAL (exact regime, cluster_util.h), even with a torn
//    record appended to the WAL tail — the "killed mid-append" shape;
//  - a node killed in the ack→commit window (--debug-commit-hold-ms) re-
//    sends its uncommitted frame after restart and the aggregator dedupes
//    it by (node, seq): ops_applied never double-counts.
//
// The binary path is injected by CMake as AQUA_SERVE_BINARY.

#include <chrono>
#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_util.h"
#include "server/e2e_util.h"
#include "workload/generators.h"

namespace aqua {
namespace {

using namespace e2e;  // NOLINT(build/namespaces): test-local helpers
using cluster_test::FreshDataDir;
using cluster_test::JsonBool;
using cluster_test::JsonInt;

std::vector<std::string> IngestArgs(const std::string& data_dir,
                                    std::uint16_t aggregator_port,
                                    int commit_hold_ms = 0) {
  std::vector<std::string> args = {
      "--role",          "ingest",
      "--node-id",       "n1",
      "--data-dir",      data_dir,
      "--push-to",       "127.0.0.1:" + std::to_string(aggregator_port),
      "--shards",        "1",
      "--footprint",     std::to_string(cluster_test::kExactBound),
      "--push-interval-ms", "60000",
      "--checkpoint-ops", "0"};
  if (commit_hold_ms > 0) {
    args.push_back("--debug-commit-hold-ms");
    args.push_back(std::to_string(commit_hold_ms));
  }
  return args;
}

void IngestValues(std::uint16_t port, const std::vector<Value>& values,
                  std::size_t from, std::size_t count) {
  std::string body = "[";
  for (std::size_t i = from; i < from + count; ++i) {
    if (i > from) body += ",";
    body += std::to_string(values[i]);
  }
  body += "]";
  const RawResponse ack = Post(port, "/ingest", body);
  ASSERT_EQ(ack.status, 200) << ack.body;
}

/// The node's serialized synopsis state over the wire (exact regime: a pure
/// function of the op sequence, so recovery must reproduce it bit for bit).
std::string StateBytes(std::uint16_t port, const std::string& synopsis) {
  const RawResponse state =
      Fetch(port, "/cluster/state?synopsis=" + synopsis);
  EXPECT_EQ(state.status, 200);
  EXPECT_FALSE(state.body.empty());
  return state.body;
}

TEST(ClusterFaultTest, SigkilledNodeRecoversByteIdenticalState) {
  const std::string data_dir = FreshDataDir("fault_recover_n1");
  const std::vector<Value> data = ZipfValues(600, 60, 0.9, 4242);

  ServerProcess aggregator({"--role", "aggregator", "--shards", "1"});
  std::optional<ServerProcess> node;
  node.emplace(IngestArgs(data_dir, aggregator.port()));

  // 300 ops -> push (export+commit seq 1) -> checkpoint (WAL rotates to
  // base 300) -> 200 more ops living only in the WAL suffix.
  IngestValues(node->port(), data, 0, 300);
  ASSERT_EQ(Post(node->port(), "/cluster/push_now", "{}").status, 200);
  ASSERT_EQ(Post(node->port(), "/cluster/checkpoint_now", "{}").status, 200);
  IngestValues(node->port(), data, 300, 200);

  const std::string concise_before =
      StateBytes(node->port(), "concise-sample");
  const std::string traditional_before =
      StateBytes(node->port(), "traditional-sample");
  {
    const RawResponse status = Fetch(node->port(), "/cluster/status");
    ASSERT_EQ(JsonInt(status.body, "op_count"), 500) << status.body;
  }

  // SIGKILL, then fake the torn record a crash mid-WAL-append leaves: a
  // record key promising more payload bytes than exist.
  node->KillNow();
  {
    std::ofstream wal(data_dir + "/wal.log",
                      std::ios::binary | std::ios::app);
    const char torn[] = {'\x6D', '\x02', '\x7F'};
    wal.write(torn, sizeof(torn));
  }

  node.emplace(IngestArgs(data_dir, aggregator.port()));
  const RawResponse status = Fetch(node->port(), "/cluster/status");
  ASSERT_EQ(status.status, 200) << status.body;
  EXPECT_EQ(JsonInt(status.body, "op_count"), 500) << status.body;
  EXPECT_TRUE(JsonBool(status.body, "recovered_checkpoint")) << status.body;
  EXPECT_EQ(JsonInt(status.body, "recovered_ops"), 200) << status.body;
  EXPECT_EQ(JsonInt(status.body, "next_seq"), 2) << status.body;
  EXPECT_EQ(JsonInt(status.body, "exported_up_to"), 300) << status.body;
  EXPECT_FALSE(JsonBool(status.body, "pending")) << status.body;

  // The recovered synopses are the pre-crash synopses, byte for byte.
  EXPECT_EQ(StateBytes(node->port(), "concise-sample"), concise_before);
  EXPECT_EQ(StateBytes(node->port(), "traditional-sample"),
            traditional_before);

  // The cluster keeps going: the recovered node ships the 200 recovered ops
  // plus 100 fresh ones as one seq-2 delta, and the aggregator lands at
  // exactly 600 applied ops — nothing lost, nothing doubled.
  IngestValues(node->port(), data, 500, 100);
  ASSERT_EQ(Post(node->port(), "/cluster/push_now", "{}").status, 200);
  const RawResponse agg = Fetch(aggregator.port(), "/cluster/status");
  EXPECT_EQ(JsonInt(agg.body, "ops_applied"), 600) << agg.body;
  EXPECT_EQ(JsonInt(agg.body, "frames_accepted"), 2) << agg.body;
  EXPECT_EQ(JsonInt(agg.body, "frames_deduped"), 0) << agg.body;
}

TEST(ClusterFaultTest, KillInCommitWindowNeverDoubleApplies) {
  const std::string data_dir = FreshDataDir("fault_commit_hold_n1");
  const std::vector<Value> data = ZipfValues(350, 40, 1.0, 99);

  ServerProcess aggregator({"--role", "aggregator", "--shards", "1"});
  std::optional<ServerProcess> node;
  // 15s hold between the aggregator's ack and the WAL commit marker: a
  // window the test can reliably SIGKILL inside.
  node.emplace(IngestArgs(data_dir, aggregator.port(), /*hold_ms=*/15000));

  IngestValues(node->port(), data, 0, 250);

  // Fire push_now without waiting for its response (it blocks in the hold),
  // then wait until the aggregator has *applied* the frame.
  const int push_fd = ConnectTo(node->port());
  SendRequest(push_fd, "POST", "/cluster/push_now", "{}");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    const RawResponse agg = Fetch(aggregator.port(), "/cluster/status");
    if (JsonInt(agg.body, "frames_accepted") == 1) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "aggregator never accepted the held frame: " << agg.body;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Applied on the aggregator, uncommitted on the node — kill it there.
  node->KillNow();
  close(push_fd);

  node.emplace(IngestArgs(data_dir, aggregator.port()));
  {
    const RawResponse status = Fetch(node->port(), "/cluster/status");
    ASSERT_EQ(status.status, 200) << status.body;
    EXPECT_EQ(JsonInt(status.body, "op_count"), 250) << status.body;
    EXPECT_TRUE(JsonBool(status.body, "pending")) << status.body;
    EXPECT_EQ(JsonInt(status.body, "next_seq"), 2) << status.body;
  }

  // The recovered node re-sends seq 1; the aggregator recognizes it and
  // applies nothing.
  ASSERT_EQ(Post(node->port(), "/cluster/push_now", "{}").status, 200);
  {
    const RawResponse agg = Fetch(aggregator.port(), "/cluster/status");
    EXPECT_EQ(JsonInt(agg.body, "frames_accepted"), 1) << agg.body;
    EXPECT_EQ(JsonInt(agg.body, "frames_deduped"), 1) << agg.body;
    EXPECT_EQ(JsonInt(agg.body, "ops_applied"), 250) << agg.body;
  }
  {
    const RawResponse status = Fetch(node->port(), "/cluster/status");
    EXPECT_FALSE(JsonBool(status.body, "pending")) << status.body;
    EXPECT_EQ(JsonInt(status.body, "exported_up_to"), 250) << status.body;
  }

  // And the protocol moves on: fresh ops ship as seq 2 and are applied
  // exactly once.
  IngestValues(node->port(), data, 250, 100);
  ASSERT_EQ(Post(node->port(), "/cluster/push_now", "{}").status, 200);
  const RawResponse agg = Fetch(aggregator.port(), "/cluster/status");
  EXPECT_EQ(JsonInt(agg.body, "ops_applied"), 350) << agg.body;
  EXPECT_EQ(JsonInt(agg.body, "frames_accepted"), 2) << agg.body;
  EXPECT_EQ(JsonInt(agg.body, "frames_deduped"), 1) << agg.body;
}

}  // namespace
}  // namespace aqua
