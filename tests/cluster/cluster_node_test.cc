// In-process tests of the cluster replication protocol: WAL-ahead ingest,
// export/commit-marked delta shipping, checkpoint + WAL-suffix recovery,
// the skip-prefix rule, torn-tail truncation, and (node, seq) dedupe on
// the acceptor.  Every recovery assertion is byte-level: these tests run
// in the exact regime (see cluster_util.h), where serialized synopsis
// state is a pure function of the op sequence, so "recovered == pre-crash"
// is EXPECT_EQ on bytes, not a statistical claim.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_util.h"
#include "core/concise_sample.h"
#include "persist/delta_frame.h"
#include "registry/builtin.h"
#include "server/cluster.h"
#include "workload/generators.h"

namespace aqua {
namespace {

using cluster_test::CapturingTransport;
using cluster_test::FreshDataDir;
using cluster_test::InProcNode;
using cluster_test::kExactBound;
using cluster_test::MakeNode;
using cluster_test::RegistryStateBytes;

std::vector<std::uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(ClusterNodeTest, FreshNodeIngestsPushesAndCommits) {
  const std::string dir = FreshDataDir("cluster_fresh");
  CapturingTransport transport;
  InProcNode node = MakeNode(dir, "n1", 0xA1, transport.Fn());
  ASSERT_TRUE(node.replicator->Init().ok());

  const std::vector<Value> data = ZipfValues(400, 120, 1.0, 11);
  ASSERT_TRUE(node.replicator->Ingest(data).ok());
  ASSERT_TRUE(node.replicator->PushNow().ok());

  ASSERT_EQ(transport.frames.size(), 1u);
  const Result<DeltaFrame> frame = DecodeDeltaFrame(transport.frames[0]);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.ValueOrDie().node_id, "n1");
  EXPECT_EQ(frame.ValueOrDie().seq, 1u);
  EXPECT_EQ(frame.ValueOrDie().covers_ops,
            static_cast<std::int64_t>(data.size()));
  // The frame ships exactly the cluster selection: traditional + concise.
  ASSERT_EQ(frame.ValueOrDie().synopses.size(), 2u);

  const IngestReplicator::Stats stats = node.replicator->GetStats();
  EXPECT_EQ(stats.op_count, static_cast<std::int64_t>(data.size()));
  EXPECT_EQ(stats.next_seq, 2u);
  EXPECT_EQ(stats.exported_up_to, static_cast<std::int64_t>(data.size()));
  EXPECT_FALSE(stats.pending);
  EXPECT_EQ(stats.pushes_ok, 1);
  EXPECT_EQ(stats.pushes_failed, 0);

  // Nothing new to export: PushNow is a no-op, no empty frames ship.
  ASSERT_TRUE(node.replicator->PushNow().ok());
  EXPECT_EQ(transport.frames.size(), 1u);
}

TEST(ClusterNodeTest, AcceptorAppliesMergesAndDedupesBySeq) {
  // Build a real frame by running a node, then drive the acceptor with it
  // directly.
  const std::string dir = FreshDataDir("cluster_acceptor");
  CapturingTransport transport;
  InProcNode node = MakeNode(dir, "n2", 0xA2, transport.Fn());
  ASSERT_TRUE(node.replicator->Init().ok());
  const std::vector<Value> data = ZipfValues(300, 90, 1.0, 12);
  ASSERT_TRUE(node.replicator->Ingest(data).ok());
  ASSERT_TRUE(node.replicator->PushNow().ok());
  ASSERT_EQ(transport.frames.size(), 1u);
  const DeltaFrame frame =
      DecodeDeltaFrame(transport.frames[0]).ValueOrDie();

  std::unique_ptr<SynopsisRegistry> registry =
      MakeClusterDeltaFactory(kExactBound)(0xA66);
  DeltaAcceptor acceptor(registry.get());
  const Result<DeltaAcceptor::AcceptOutcome> first = acceptor.Accept(frame);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.ValueOrDie().duplicate);
  EXPECT_EQ(registry->observed_inserts(),
            static_cast<std::int64_t>(data.size()));
  EXPECT_EQ(registry->merge_rounds(), 1u);
  // In the exact regime the merged concise sample IS the composition.
  const ConciseSample merged =
      registry->StateCopy<ConciseSample>(kConciseSynopsisName).ValueOrDie();
  EXPECT_EQ(merged.ObservedInserts(), static_cast<std::int64_t>(data.size()));

  // The same seq again — a crashed node re-pushing — must dedupe, not
  // double-apply: counters and synopsis state stay untouched.
  const Result<DeltaAcceptor::AcceptOutcome> again = acceptor.Accept(frame);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.ValueOrDie().duplicate);
  EXPECT_EQ(registry->observed_inserts(),
            static_cast<std::int64_t>(data.size()));
  EXPECT_EQ(registry->merge_rounds(), 1u);
  const DeltaAcceptor::Stats stats = acceptor.GetStats();
  EXPECT_EQ(stats.frames_accepted, 1);
  EXPECT_EQ(stats.frames_deduped, 1);
  EXPECT_EQ(stats.ops_applied, static_cast<std::int64_t>(data.size()));
  ASSERT_EQ(stats.nodes.size(), 1u);
  EXPECT_EQ(stats.nodes[0].first, "n2");
  EXPECT_EQ(stats.nodes[0].second, 1u);
}

TEST(ClusterNodeTest, FrameThatFailsValidationAppliesNothingAndIsRetryable) {
  const std::string dir = FreshDataDir("cluster_badframe");
  CapturingTransport transport;
  InProcNode node = MakeNode(dir, "n3", 0xA3, transport.Fn());
  ASSERT_TRUE(node.replicator->Init().ok());
  ASSERT_TRUE(node.replicator->Ingest(ZipfValues(200, 60, 1.0, 13)).ok());
  ASSERT_TRUE(node.replicator->PushNow().ok());
  DeltaFrame frame = DecodeDeltaFrame(transport.frames[0]).ValueOrDie();

  std::unique_ptr<SynopsisRegistry> registry =
      MakeClusterDeltaFactory(kExactBound)(0xA77);
  DeltaAcceptor acceptor(registry.get());
  // Corrupt the frame at the synopsis level: an unknown name fails phase 1
  // (validation), before any merge lands.
  DeltaFrame bad = frame;
  bad.synopses[0].first = "no-such-synopsis";
  const Result<DeltaAcceptor::AcceptOutcome> rejected = acceptor.Accept(bad);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry->observed_inserts(), 0);
  EXPECT_EQ(registry->merge_rounds(), 0u);
  // The seq was NOT recorded for a frame that failed validation — the
  // corrected retry applies normally.
  const Result<DeltaAcceptor::AcceptOutcome> retried = acceptor.Accept(frame);
  ASSERT_TRUE(retried.ok());
  EXPECT_FALSE(retried.ValueOrDie().duplicate);
  EXPECT_EQ(registry->observed_inserts(), 200);
}

TEST(ClusterNodeTest, FailedPushLeavesFramePendingAndCheckpointRefuses) {
  const std::string dir = FreshDataDir("cluster_pending");
  CapturingTransport transport;
  transport.fail_next = -1;  // every push fails
  InProcNode node = MakeNode(dir, "n4", 0xA4, transport.Fn());
  ASSERT_TRUE(node.replicator->Init().ok());
  ASSERT_TRUE(node.replicator->Ingest(ZipfValues(150, 40, 1.0, 14)).ok());
  ASSERT_FALSE(node.replicator->PushNow().ok());

  IngestReplicator::Stats stats = node.replicator->GetStats();
  EXPECT_TRUE(stats.pending);
  EXPECT_EQ(stats.pending_seq, 1u);
  EXPECT_EQ(stats.pushes_failed, 1);
  EXPECT_EQ(stats.exported_up_to, 0);

  // A checkpoint taken now would straddle an uncommitted export — refused.
  const Status checkpoint = node.replicator->CheckpointNow();
  ASSERT_FALSE(checkpoint.ok());
  EXPECT_EQ(checkpoint.code(), StatusCode::kFailedPrecondition);

  // When the transport heals, the NEXT PushNow retries the pending frame
  // first — same seq, same bytes — before exporting anything new.
  transport.fail_next = 0;
  ASSERT_TRUE(node.replicator->PushNow().ok());
  ASSERT_EQ(transport.frames.size(), 2u);
  EXPECT_EQ(transport.frames[0], transport.frames[1]);
  stats = node.replicator->GetStats();
  EXPECT_FALSE(stats.pending);
  EXPECT_EQ(stats.exported_up_to, 150);
  ASSERT_TRUE(node.replicator->CheckpointNow().ok());
}

TEST(ClusterNodeTest, CheckpointPlusWalSuffixRecoversByteIdentically) {
  const std::string dir = FreshDataDir("cluster_recover");
  const std::vector<Value> first = ZipfValues(250, 80, 1.0, 15);
  const std::vector<Value> second = ZipfValues(150, 80, 1.0, 16);

  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> pre_crash;
  {
    CapturingTransport transport;
    InProcNode node = MakeNode(dir, "n5", 0xA5, transport.Fn());
    ASSERT_TRUE(node.replicator->Init().ok());
    ASSERT_TRUE(node.replicator->Ingest(first).ok());
    ASSERT_TRUE(node.replicator->PushNow().ok());
    ASSERT_TRUE(node.replicator->CheckpointNow().ok());
    ASSERT_TRUE(node.replicator->Ingest(second).ok());
    pre_crash = RegistryStateBytes(*node.main);
    // SIGKILL equivalent: the node object is dropped with the WAL suffix
    // un-checkpointed and the current delta round un-pushed.
  }

  CapturingTransport transport;
  InProcNode recovered = MakeNode(dir, "n5", 0xA5, transport.Fn());
  ASSERT_TRUE(recovered.replicator->Init().ok());
  const IngestReplicator::Stats stats = recovered.replicator->GetStats();
  EXPECT_TRUE(stats.recovered_checkpoint);
  EXPECT_EQ(stats.recovered_ops, 150);
  EXPECT_EQ(stats.op_count, 400);
  EXPECT_EQ(stats.next_seq, 2u);
  EXPECT_EQ(stats.exported_up_to, 250);
  EXPECT_FALSE(stats.pending);
  // The byte-level contract: every synopsis re-serializes to exactly its
  // pre-crash bytes.
  EXPECT_EQ(RegistryStateBytes(*recovered.main), pre_crash);

  // The recovered delta round must also be byte-equal to the live one: a
  // control node fed the same stream without a crash exports the same
  // frame for seq 2.
  ASSERT_TRUE(recovered.replicator->PushNow().ok());
  ASSERT_EQ(transport.frames.size(), 1u);
  CapturingTransport control_transport;
  InProcNode control = MakeNode(FreshDataDir("cluster_recover_control"),
                                "n5", 0xA5, control_transport.Fn());
  ASSERT_TRUE(control.replicator->Init().ok());
  ASSERT_TRUE(control.replicator->Ingest(first).ok());
  ASSERT_TRUE(control.replicator->PushNow().ok());
  ASSERT_TRUE(control.replicator->Ingest(second).ok());
  ASSERT_TRUE(control.replicator->PushNow().ok());
  ASSERT_EQ(control_transport.frames.size(), 2u);
  EXPECT_EQ(transport.frames[0], control_transport.frames[1]);
}

TEST(ClusterNodeTest, ExportedUncommittedFrameIsRederivedByteIdentically) {
  const std::string dir = FreshDataDir("cluster_rederive");
  const std::vector<Value> data = ZipfValues(350, 100, 1.0, 17);
  std::vector<std::uint8_t> original_frame;
  {
    CapturingTransport transport;
    transport.fail_next = -1;  // the push leaves the node, the ack never
                               // lands — seq 1 stays exported, uncommitted
    InProcNode node = MakeNode(dir, "n6", 0xA6, transport.Fn());
    ASSERT_TRUE(node.replicator->Init().ok());
    ASSERT_TRUE(node.replicator->Ingest(data).ok());
    ASSERT_FALSE(node.replicator->PushNow().ok());
    ASSERT_EQ(transport.frames.size(), 1u);
    original_frame = transport.frames[0];
  }

  CapturingTransport transport;
  InProcNode recovered = MakeNode(dir, "n6", 0xA6, transport.Fn());
  ASSERT_TRUE(recovered.replicator->Init().ok());
  IngestReplicator::Stats stats = recovered.replicator->GetStats();
  EXPECT_TRUE(stats.pending);
  EXPECT_EQ(stats.pending_seq, 1u);
  EXPECT_EQ(stats.next_seq, 2u);
  // Recovery re-derived the lost frame from the WAL alone; it must be
  // byte-identical — this is what lets the aggregator's (node, seq) dedupe
  // treat any re-push as the same logical delta.
  ASSERT_TRUE(recovered.replicator->PushNow().ok());
  ASSERT_EQ(transport.frames.size(), 1u);
  EXPECT_EQ(transport.frames[0], original_frame);
  stats = recovered.replicator->GetStats();
  EXPECT_FALSE(stats.pending);
  EXPECT_EQ(stats.exported_up_to, 350);
}

TEST(ClusterNodeTest, SkipPrefixRuleCoversCrashBetweenRenameAndRotation) {
  const std::string dir = FreshDataDir("cluster_skip_prefix");
  const std::vector<Value> data = ZipfValues(300, 70, 1.0, 18);
  std::vector<std::uint8_t> pre_rotation_wal;
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> pre_crash;
  {
    CapturingTransport transport;
    InProcNode node = MakeNode(dir, "n7", 0xA7, transport.Fn());
    ASSERT_TRUE(node.replicator->Init().ok());
    ASSERT_TRUE(node.replicator->Ingest(data).ok());
    pre_rotation_wal = ReadFileBytes(dir + "/wal.log");
    ASSERT_TRUE(node.replicator->CheckpointNow().ok());
    pre_crash = RegistryStateBytes(*node.main);
  }
  // Rewind the WAL to its pre-rotation contents: exactly the on-disk state
  // a crash between the checkpoint rename and the WAL rotation leaves —
  // the checkpoint already folds in ops the WAL still carries.
  WriteFileBytes(dir + "/wal.log", pre_rotation_wal);

  CapturingTransport transport;
  InProcNode recovered = MakeNode(dir, "n7", 0xA7, transport.Fn());
  ASSERT_TRUE(recovered.replicator->Init().ok());
  const IngestReplicator::Stats stats = recovered.replicator->GetStats();
  EXPECT_TRUE(stats.recovered_checkpoint);
  EXPECT_EQ(stats.op_count, 300);
  // Every WAL op predated the checkpoint: all skipped, none double-applied.
  EXPECT_EQ(stats.recovered_ops, 0);
  EXPECT_EQ(RegistryStateBytes(*recovered.main), pre_crash);
}

TEST(ClusterNodeTest, TornWalTailIsTruncatedAndNodeResumes) {
  const std::string dir = FreshDataDir("cluster_torn");
  const std::vector<Value> data = ZipfValues(200, 50, 1.0, 19);
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> pre_crash;
  {
    CapturingTransport transport;
    InProcNode node = MakeNode(dir, "n8", 0xA8, transport.Fn());
    ASSERT_TRUE(node.replicator->Init().ok());
    ASSERT_TRUE(node.replicator->Ingest(data).ok());
    pre_crash = RegistryStateBytes(*node.main);
  }
  // SIGKILL mid-append: half a record lands after the acked prefix.
  {
    std::ofstream out(dir + "/wal.log", std::ios::binary | std::ios::app);
    out.put('\x6D');
    out.put('\x02');
    out.put('\x7F');
  }

  CapturingTransport transport;
  InProcNode recovered = MakeNode(dir, "n8", 0xA8, transport.Fn());
  ASSERT_TRUE(recovered.replicator->Init().ok());
  EXPECT_EQ(recovered.replicator->GetStats().op_count, 200);
  EXPECT_EQ(RegistryStateBytes(*recovered.main), pre_crash);
  // The truncated WAL reopened for append: the node keeps ingesting, and a
  // further restart replays the whole (repaired) log cleanly.
  ASSERT_TRUE(recovered.replicator->Ingest(ZipfValues(50, 50, 1.0, 20)).ok());
  const auto repaired = RegistryStateBytes(*recovered.main);
  recovered.replicator.reset();
  recovered.main.reset();
  CapturingTransport transport2;
  InProcNode again = MakeNode(dir, "n8", 0xA8, transport2.Fn());
  ASSERT_TRUE(again.replicator->Init().ok());
  EXPECT_EQ(again.replicator->GetStats().op_count, 250);
  EXPECT_EQ(RegistryStateBytes(*again.main), repaired);
}

TEST(ClusterNodeTest, AggregatorNeverDoubleAppliesAcrossNodeRecovery) {
  // The lost-ack scenario end to end, in process: the frame reaches the
  // aggregator and applies, but the node never learns — it crashes, recovers,
  // re-derives, re-pushes.  The aggregator must dedupe, and the merged
  // state must equal exactly one application.
  const std::string dir = FreshDataDir("cluster_once");
  const std::vector<Value> data = ZipfValues(280, 75, 1.0, 21);

  std::unique_ptr<SynopsisRegistry> registry =
      MakeClusterDeltaFactory(kExactBound)(0xA99);
  DeltaAcceptor acceptor(registry.get());
  bool drop_ack = true;
  const auto transport = [&](const std::vector<std::uint8_t>& bytes) {
    const Result<DeltaFrame> frame = DecodeDeltaFrame(bytes);
    if (!frame.ok()) return frame.status();
    const Result<DeltaAcceptor::AcceptOutcome> outcome =
        acceptor.Accept(frame.ValueOrDie());
    if (!outcome.ok()) return outcome.status();
    if (drop_ack) return Status::FailedPrecondition("ack lost");
    return Status::OK();
  };

  {
    InProcNode node = MakeNode(dir, "n9", 0xAA, transport);
    ASSERT_TRUE(node.replicator->Init().ok());
    ASSERT_TRUE(node.replicator->Ingest(data).ok());
    ASSERT_FALSE(node.replicator->PushNow().ok());  // applied, ack lost
    EXPECT_EQ(acceptor.GetStats().ops_applied, 280);
  }

  drop_ack = false;
  InProcNode recovered = MakeNode(dir, "n9", 0xAA, transport);
  ASSERT_TRUE(recovered.replicator->Init().ok());
  ASSERT_TRUE(recovered.replicator->PushNow().ok());

  const DeltaAcceptor::Stats stats = acceptor.GetStats();
  EXPECT_EQ(stats.frames_accepted, 1);
  EXPECT_EQ(stats.frames_deduped, 1);
  EXPECT_EQ(stats.ops_applied, 280);
  EXPECT_EQ(registry->observed_inserts(), 280);
  const ConciseSample merged =
      registry->StateCopy<ConciseSample>(kConciseSynopsisName).ValueOrDie();
  // Exact regime: one application means the merged sample IS the stream's
  // composition — a double-apply would exactly double every count.
  EXPECT_EQ(merged.ObservedInserts(), 280);
  std::int64_t sampled = 0;
  for (const ValueCount& e : merged.Entries()) sampled += e.count;
  EXPECT_EQ(sampled, 280);
}

}  // namespace
}  // namespace aqua
