// Shared helpers for the cluster-mode test harness: in-process replicator
// nodes with an injected (capturing / fault-injecting) push transport, a
// byte-level registry state dump for recovery comparisons, and spawn/poll
// helpers for the multi-process tests that drive real aqua_serve binaries.
#ifndef AQUA_TESTS_CLUSTER_CLUSTER_UTIL_H_
#define AQUA_TESTS_CLUSTER_CLUSTER_UTIL_H_

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "registry/registry.h"
#include "server/cluster.h"

namespace aqua::cluster_test {

/// The exact regime: with the footprint bound comfortably above the stream
/// length every synopsis keeps everything (concise threshold 1, reservoir
/// never full), so serialized state is a deterministic function of the op
/// sequence — restarts and restores can be compared byte for byte.  Tests
/// that byte-compare recovered state MUST keep their streams under this.
inline constexpr Words kExactBound = 4096;

/// A fresh per-test data directory (recreated empty every call).
inline std::string FreshDataDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// An injectable push transport: records every frame it is handed, and can
/// be told to fail the next N sends (retryable FailedPrecondition, the
/// same class a connection refusal maps to) or to reject every send.
struct CapturingTransport {
  std::vector<std::vector<std::uint8_t>> frames;
  int fail_next = 0;

  std::function<Status(const std::vector<std::uint8_t>&)> Fn() {
    return [this](const std::vector<std::uint8_t>& bytes) {
      frames.push_back(bytes);
      if (fail_next != 0) {
        if (fail_next > 0) --fail_next;
        return Status::FailedPrecondition("injected push failure");
      }
      return Status::OK();
    };
  }
};

/// An in-process ingest node: its serving registry plus the replicator
/// wired to an injected transport.  The registry uses the same factory as
/// the delta rounds, so the whole node is byte-deterministic.
struct InProcNode {
  std::unique_ptr<SynopsisRegistry> main;
  std::unique_ptr<IngestReplicator> replicator;
};

inline InProcNode MakeNode(
    const std::string& data_dir, const std::string& node_id,
    std::uint64_t node_seed,
    std::function<Status(const std::vector<std::uint8_t>&)> transport,
    int push_attempts = 1) {
  InProcNode node;
  node.main = MakeClusterDeltaFactory(kExactBound)(node_seed);
  IngestReplicatorOptions options;
  options.node_id = node_id;
  options.data_dir = data_dir;
  options.node_seed = node_seed;
  options.push_attempts = push_attempts;
  options.push_backoff = std::chrono::milliseconds(1);
  options.push_transport = std::move(transport);
  node.replicator = std::make_unique<IngestReplicator>(
      node.main.get(), MakeClusterDeltaFactory(kExactBound),
      std::move(options));
  return node;
}

/// Serialized state of every persistable handle, in registration order —
/// the byte-level identity recovery tests compare.
inline std::vector<std::pair<std::string, std::vector<std::uint8_t>>>
RegistryStateBytes(const SynopsisRegistry& registry) {
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> out;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const SynopsisHandle* handle = registry.handle_at(i);
    if (!handle->Capabilities().persistable || !handle->valid()) continue;
    Result<std::vector<std::uint8_t>> state = handle->EncodeState();
    EXPECT_TRUE(state.ok()) << handle->Name();
    out.emplace_back(std::string(handle->Name()),
                     state.ok() ? std::move(state).ValueOrDie()
                                : std::vector<std::uint8_t>());
  }
  return out;
}

/// Extracts the integer after `"key":` in a flat JSON body; -1 if absent.
/// (The status bodies are machine-written flat objects — a full parser
/// would be noise here.)
inline std::int64_t JsonInt(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return -1;
  return std::stoll(body.substr(at + needle.size()));
}

inline bool JsonBool(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return false;
  return body.compare(at + needle.size(), 4, "true") == 0;
}

}  // namespace aqua::cluster_test

#endif  // AQUA_TESTS_CLUSTER_CLUSTER_UTIL_H_
