#include "hotlist/maintained_hot_list.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "hotlist/counting_hot_list.h"
#include "workload/generators.h"

namespace aqua {
namespace {

CountingSampleOptions Opts(Words bound, std::uint64_t seed) {
  return CountingSampleOptions{.footprint_bound = bound, .seed = seed};
}

/// Reference: top-k counts straight from the underlying sample's entries.
/// Comparing count sequences (not values) keeps the check exact even when
/// equal counts tie at the k-th rank.
std::vector<Count> ReferenceTopK(const CountingSample& sample,
                                 std::int64_t k) {
  std::vector<ValueCount> entries = sample.Entries();
  std::sort(entries.begin(), entries.end(),
            [](const ValueCount& a, const ValueCount& b) {
              return a.count > b.count ||
                     (a.count == b.count && a.value < b.value);
            });
  std::vector<Count> top;
  for (std::int64_t i = 0;
       i < k && i < static_cast<std::int64_t>(entries.size()); ++i) {
    top.push_back(entries[static_cast<std::size_t>(i)].count);
  }
  return top;
}

std::vector<Count> ReportedValues(const HotList& list) {
  std::vector<Count> counts;
  for (const HotListItem& item : list) counts.push_back(item.synopsis_count);
  return counts;
}

TEST(MaintainedHotListTest, EmptyReportsNothing) {
  MaintainedHotList hot(Opts(100, 1), 10);
  EXPECT_TRUE(hot.Report(5).empty());
}

TEST(MaintainedHotListTest, MatchesReferenceOnInsertOnlyStream) {
  MaintainedHotList hot(Opts(500, 2), 30);
  for (Value v : ZipfValues(200000, 2000, 1.25, 3)) hot.Insert(v);
  EXPECT_EQ(ReportedValues(hot.Report(10)),
            ReferenceTopK(hot.sample(), 10));
  EXPECT_EQ(ReportedValues(hot.Report(30)),
            ReferenceTopK(hot.sample(), 30));
}

TEST(MaintainedHotListTest, MatchesReferenceAtEveryCheckpoint) {
  MaintainedHotList hot(Opts(200, 4), 15);
  const std::vector<Value> data = ZipfValues(100000, 1000, 1.0, 5);
  std::int64_t i = 0;
  for (Value v : data) {
    hot.Insert(v);
    if (++i % 20000 == 0) {
      ASSERT_EQ(ReportedValues(hot.Report(10)),
                ReferenceTopK(hot.sample(), 10))
          << "at insert " << i;
    }
  }
}

TEST(MaintainedHotListTest, HandlesDeletesViaRebuild) {
  MaintainedHotList hot(Opts(300, 6), 20);
  const UpdateStream stream = MixedStream(100000, 1000, 1.2, 0.25, 5000, 7);
  for (const StreamOp& op : stream) {
    if (op.kind == StreamOp::Kind::kInsert) {
      hot.Insert(op.value);
    } else {
      ASSERT_TRUE(hot.Delete(op.value).ok());
    }
  }
  EXPECT_EQ(ReportedValues(hot.Report(10)),
            ReferenceTopK(hot.sample(), 10));
  EXPECT_GT(hot.rebuilds(), 0);
}

TEST(MaintainedHotListTest, EstimatesMatchCountingHotList) {
  MaintainedHotList hot(Opts(500, 8), 25);
  CountingSample mirror(Opts(500, 8));
  for (Value v : ZipfValues(150000, 1000, 1.25, 9)) {
    hot.Insert(v);
    mirror.Insert(v);
  }
  // Identical seeds → identical samples; the maintained report's estimates
  // must agree with the on-demand reporter for the same values.
  const HotList maintained = hot.Report(10);
  const HotList on_demand = CountingHotList(mirror).Report({.k = 10});
  ASSERT_FALSE(maintained.empty());
  for (std::size_t i = 0;
       i < std::min(maintained.size(), on_demand.size()); ++i) {
    EXPECT_EQ(maintained[i].value, on_demand[i].value) << i;
    EXPECT_DOUBLE_EQ(maintained[i].estimated_count,
                     on_demand[i].estimated_count)
        << i;
  }
}

TEST(MaintainedHotListTest, KCappedAtCandidateCapacity) {
  MaintainedHotList hot(Opts(200, 10), 5);
  for (Value v : ZipfValues(50000, 100, 1.5, 11)) hot.Insert(v);
  EXPECT_LE(hot.Report(50).size(), 5u);
}

TEST(MaintainedHotListTest, FewRebuildsOnInsertOnlyStreams) {
  MaintainedHotList hot(Opts(500, 12), 20);
  for (Value v : ZipfValues(200000, 2000, 1.0, 13)) hot.Insert(v);
  (void)hot.Report(10);
  // Rebuilds only after threshold raises, which are logarithmically rare.
  EXPECT_LE(hot.rebuilds(), hot.sample().Cost().threshold_raises + 1);
}

}  // namespace
}  // namespace aqua
