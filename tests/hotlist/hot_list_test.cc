#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hotlist/concise_hot_list.h"
#include "hotlist/counting_hot_list.h"
#include "hotlist/exact_hot_list.h"
#include "hotlist/traditional_hot_list.h"
#include "metrics/hotlist_accuracy.h"
#include "warehouse/relation.h"
#include "workload/generators.h"

namespace aqua {
namespace {

struct Fixture {
  Relation relation;
  ReservoirSample traditional;
  ConciseSample concise;
  CountingSample counting;

  Fixture(std::int64_t n, std::int64_t d, double alpha, Words m,
          std::uint64_t seed)
      : traditional(m, seed + 1),
        concise(ConciseSampleOptions{.footprint_bound = m, .seed = seed + 2}),
        counting(
            CountingSampleOptions{.footprint_bound = m, .seed = seed + 3}) {
    for (Value v : ZipfValues(n, d, alpha, seed)) {
      relation.Insert(v);
      traditional.Insert(v);
      concise.Insert(v);
      counting.Insert(v);
    }
  }
};

TEST(ExactHotListTest, ReportsTopKExactly) {
  ExactHotList exact({{1, 100}, {2, 50}, {3, 25}, {4, 10}});
  const HotList top2 = exact.Report({.k = 2});
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].value, 1);
  EXPECT_DOUBLE_EQ(top2[0].estimated_count, 100.0);
  EXPECT_EQ(top2[1].value, 2);
}

TEST(ExactHotListTest, KZeroReportsEverything) {
  ExactHotList exact({{1, 3}, {2, 2}, {3, 1}});
  EXPECT_EQ(exact.Report({.k = 0}).size(), 3u);
}

TEST(ExactHotListTest, SortsDescendingWithValueTieBreak) {
  ExactHotList exact({{5, 10}, {2, 10}, {9, 20}});
  const HotList list = exact.Report({.k = 0});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].value, 9);
  EXPECT_EQ(list[1].value, 2);
  EXPECT_EQ(list[2].value, 5);
}

TEST(TraditionalHotListTest, ScalesCountsByNOverM) {
  // Deterministic setup: stream shorter than capacity, so the sample is the
  // whole stream and scale = 1.
  ReservoirSample sample(1000, 7);
  for (int i = 0; i < 60; ++i) sample.Insert(1);
  for (int i = 0; i < 30; ++i) sample.Insert(2);
  for (int i = 0; i < 10; ++i) sample.Insert(3);
  TraditionalHotList hot(sample);
  const HotList list = hot.Report({.k = 0, .beta = 3});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_DOUBLE_EQ(list[0].estimated_count, 60.0);
  EXPECT_EQ(list[0].value, 1);
  EXPECT_DOUBLE_EQ(list[2].estimated_count, 10.0);
}

TEST(TraditionalHotListTest, BetaFiltersLowCounts) {
  ReservoirSample sample(1000, 8);
  for (int i = 0; i < 10; ++i) sample.Insert(1);
  sample.Insert(2);  // singleton: below β = 3
  sample.Insert(2);
  sample.Insert(3);
  TraditionalHotList hot(sample);
  const HotList list = hot.Report({.k = 0, .beta = 3});
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].value, 1);
}

TEST(TraditionalHotListTest, ReportsQuantizedCounts) {
  // Figure 5's horizontal rows: every reported count is a multiple of n/m.
  Fixture f(200000, 2000, 1.0, 1000, 42);
  TraditionalHotList hot(f.traditional);
  const HotList list = hot.Report({.k = 0, .beta = 3});
  ASSERT_FALSE(list.empty());
  const double unit = 200000.0 / 1000.0;
  for (const HotListItem& item : list) {
    const double multiple = item.estimated_count / unit;
    EXPECT_NEAR(multiple, std::round(multiple), 1e-9);
  }
}

TEST(ConciseHotListTest, UsesSampleSizeForScale) {
  Fixture f(200000, 500, 1.5, 100, 43);
  ASSERT_GT(f.concise.SampleSize(), f.concise.Footprint());
  ConciseHotList hot(f.concise);
  const HotList list = hot.Report({.k = 5, .beta = 3});
  ASSERT_FALSE(list.empty());
  // The top estimate should be within 35% of the true top count.
  const Count top_true = ExactTopK(f.relation.ExactCounts(), 1)[0].count;
  EXPECT_NEAR(list[0].estimated_count, static_cast<double>(top_true),
              0.35 * static_cast<double>(top_true));
}

TEST(CountingHotListTest, CompensationFormula) {
  // ĉ = τ(1 - 2/e)/(1 - 1/e) - 1 ≈ 0.418τ - 1, clamped at 0.
  EXPECT_DOUBLE_EQ(CountingHotList::Compensation(1.0), 0.0);
  EXPECT_NEAR(CountingHotList::Compensation(1000.0), 0.418 * 1000.0 - 1.0,
              1.0);
  EXPECT_NEAR(CountingHotList::Compensation(100.0) /
                  CountingHotList::Compensation(200.0),
              (0.418 * 100 - 1) / (0.418 * 200 - 1), 0.01);
}

TEST(CountingHotListTest, ExactWhenThresholdIsOne) {
  CountingSample sample(CountingSampleOptions{.footprint_bound = 1000,
                                              .seed = 9});
  for (int i = 0; i < 100; ++i) sample.Insert(1);
  for (int i = 0; i < 50; ++i) sample.Insert(2);
  CountingHotList hot(sample);
  const HotList list = hot.Report({.k = 0});
  ASSERT_EQ(list.size(), 2u);
  EXPECT_DOUBLE_EQ(list[0].estimated_count, 100.0);
  EXPECT_DOUBLE_EQ(list[1].estimated_count, 50.0);
}

TEST(CountingHotListTest, NeverReportsBelowPointFiveEightTwoTau) {
  // Theorem 8(i).
  Fixture f(300000, 5000, 1.25, 1000, 44);
  CountingHotList hot(f.counting);
  const double tau = f.counting.Threshold();
  const double c_hat = CountingHotList::Compensation(tau);
  for (const HotListItem& item : hot.Report({.k = 0})) {
    EXPECT_GE(static_cast<double>(item.synopsis_count), tau - c_hat - 1e-9);
  }
}

TEST(HotListComparisonTest, AccuracyOrderingOnModerateSkew) {
  // §6: counting >= concise >= traditional in accuracy.  Compare top-20
  // recall on the Figure 6 configuration (smaller n for test speed).
  double recall_trad = 0.0, recall_concise = 0.0, recall_counting = 0.0;
  constexpr int kTrials = 3;
  constexpr std::int64_t kK = 20;
  for (int t = 0; t < kTrials; ++t) {
    Fixture f(200000, 20000, 1.25, 1000,
              1000 + static_cast<std::uint64_t>(t) * 17);
    const auto exact = f.relation.ExactCounts();
    const HotListQuery q{.k = 0, .beta = 3};
    recall_trad +=
        EvaluateHotList(TraditionalHotList(f.traditional).Report(q), exact,
                        kK)
            .Recall(kK);
    recall_concise +=
        EvaluateHotList(ConciseHotList(f.concise).Report(q), exact, kK)
            .Recall(kK);
    recall_counting +=
        EvaluateHotList(CountingHotList(f.counting).Report(q), exact, kK)
            .Recall(kK);
  }
  EXPECT_GE(recall_counting, recall_concise - 0.05 * kTrials);
  EXPECT_GE(recall_concise, recall_trad - 0.05 * kTrials);
  EXPECT_GT(recall_counting, recall_trad);
}

TEST(HotListComparisonTest, CountingCountErrorSmallerThanTraditional) {
  Fixture f(300000, 5000, 1.0, 1000, 45);
  const auto exact = f.relation.ExactCounts();
  const HotListQuery q{.k = 0, .beta = 3};
  const HotListAccuracy trad = EvaluateHotList(
      TraditionalHotList(f.traditional).Report(q), exact, 30);
  const HotListAccuracy counting =
      EvaluateHotList(CountingHotList(f.counting).Report(q), exact, 30);
  EXPECT_LT(counting.mean_relative_count_error,
            trad.mean_relative_count_error);
}

TEST(HotListComparisonTest, LargerBetaReportsFewer) {
  Fixture f(100000, 2000, 1.0, 500, 46);
  ConciseHotList hot(f.concise);
  const std::size_t at3 = hot.Report({.k = 0, .beta = 3}).size();
  const std::size_t at10 = hot.Report({.k = 0, .beta = 10}).size();
  EXPECT_LE(at10, at3);
}

TEST(HotListComparisonTest, KCutsReportLength) {
  Fixture f(100000, 500, 1.5, 500, 47);
  ConciseHotList hot(f.concise);
  const HotList all = hot.Report({.k = 0, .beta = 3});
  const HotList top5 = hot.Report({.k = 5, .beta = 3});
  ASSERT_GE(all.size(), top5.size());
  // Ties at the 5th count may legitimately push past k.
  EXPECT_LE(top5.size(), all.size());
  EXPECT_GE(top5.size(), std::min<std::size_t>(5u, all.size()));
}

}  // namespace
}  // namespace aqua
