#include "estimate/distinct_values.h"

#include <gtest/gtest.h>

#include <vector>

#include "container/flat_hash_map.h"
#include "random/random.h"
#include "workload/generators.h"

namespace aqua {
namespace {

TEST(ExpectedDistinctValuesTest, MomentFormEqualsStableFormForSmallM) {
  // Theorem 4's alternating-sum form must agree with the direct form.
  const std::vector<Value> data = ZipfValues(5000, 50, 1.0, 1);
  const FrequencyMoments fm = FrequencyMoments::FromData(data);
  const ExpectedDistinctValues edv(fm);
  for (std::int64_t m : {1, 2, 5, 10, 20, 30}) {
    EXPECT_NEAR(edv.MomentForm(m), edv.Stable(m),
                1e-6 * std::max(1.0, edv.Stable(m)))
        << "m=" << m;
  }
}

TEST(ExpectedDistinctValuesTest, SingleSampleIsOneDistinct) {
  const std::vector<Value> data = {1, 1, 2, 3};
  const FrequencyMoments fm = FrequencyMoments::FromData(data);
  EXPECT_NEAR(ExpectedDistinctValues(fm).Stable(1), 1.0, 1e-12);
}

TEST(ExpectedDistinctValuesTest, ApproachesDAsMGrows) {
  const std::vector<Value> data = UniformValues(10000, 20, 2);
  const FrequencyMoments fm = FrequencyMoments::FromData(data);
  const ExpectedDistinctValues edv(fm);
  EXPECT_NEAR(edv.Stable(10000), 20.0, 0.05);
  EXPECT_LT(edv.Stable(5), edv.Stable(50));
}

TEST(ExpectedDistinctValuesTest, GainIsMMinusDistinct) {
  const std::vector<Value> data = ZipfValues(20000, 100, 1.5, 3);
  const FrequencyMoments fm = FrequencyMoments::FromData(data);
  const ExpectedDistinctValues edv(fm);
  const std::int64_t m = 500;
  EXPECT_NEAR(edv.ExpectedGain(m),
              static_cast<double>(m) - edv.Stable(m), 1e-9);
  EXPECT_GT(edv.ExpectedGain(m), 0.0);
}

TEST(ExpectedDistinctValuesTest, MatchesSimulation) {
  // Draw with-replacement samples and compare the empirical mean distinct
  // count to the formula.
  const std::vector<Value> data = ZipfValues(5000, 200, 1.0, 4);
  const FrequencyMoments fm = FrequencyMoments::FromData(data);
  const ExpectedDistinctValues edv(fm);
  constexpr std::int64_t kM = 100;
  constexpr int kTrials = 400;
  Random rng(5);
  double mean_distinct = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    FlatHashMap<Value, Count> seen;
    for (std::int64_t i = 0; i < kM; ++i) {
      const Value v = data[static_cast<std::size_t>(
          rng.UniformU64(data.size()))];
      seen.TryInsert(v, 1);
    }
    mean_distinct += static_cast<double>(seen.size());
  }
  mean_distinct /= kTrials;
  EXPECT_NEAR(mean_distinct, edv.Stable(kM), 0.05 * edv.Stable(kM));
}

TEST(ExpectedDistinctValuesTest, SkewReducesExpectedDistinct) {
  const FrequencyMoments uniform =
      FrequencyMoments::FromData(ZipfValues(50000, 1000, 0.0, 6));
  const FrequencyMoments skewed =
      FrequencyMoments::FromData(ZipfValues(50000, 1000, 2.0, 6));
  const std::int64_t m = 500;
  EXPECT_LT(ExpectedDistinctValues(skewed).Stable(m),
            ExpectedDistinctValues(uniform).Stable(m));
}

}  // namespace
}  // namespace aqua
