#include "estimate/frequency_moments.h"

#include <gtest/gtest.h>

#include <vector>

namespace aqua {
namespace {

TEST(FrequencyMomentsTest, EmptyData) {
  const FrequencyMoments fm =
      FrequencyMoments::FromData(std::vector<Value>{});
  EXPECT_EQ(fm.size(), 0);
  EXPECT_EQ(fm.distinct_values(), 0);
  EXPECT_DOUBLE_EQ(fm.Moment(2), 0.0);
}

TEST(FrequencyMomentsTest, KnownSmallDataset) {
  // {a×3, b×2, c×1}: F0=3, F1=6, F2=14, F3=36.
  const std::vector<Value> data = {7, 7, 7, 8, 8, 9};
  const FrequencyMoments fm = FrequencyMoments::FromData(data);
  EXPECT_EQ(fm.distinct_values(), 3);
  EXPECT_EQ(fm.size(), 6);
  EXPECT_DOUBLE_EQ(fm.Moment(0), 3.0);
  EXPECT_DOUBLE_EQ(fm.Moment(1), 6.0);
  EXPECT_DOUBLE_EQ(fm.Moment(2), 14.0);
  EXPECT_DOUBLE_EQ(fm.Moment(3), 36.0);
}

TEST(FrequencyMomentsTest, NormalizedMomentIsStable) {
  const std::vector<Value> data = {7, 7, 7, 8, 8, 9};
  const FrequencyMoments fm = FrequencyMoments::FromData(data);
  // F2/n² = 14/36.
  EXPECT_NEAR(fm.NormalizedMoment(2), 14.0 / 36.0, 1e-12);
  // Normalized F1 is always 1.
  EXPECT_NEAR(fm.NormalizedMoment(1), 1.0, 1e-12);
}

TEST(FrequencyMomentsTest, FromCountsAgreesWithFromData) {
  const std::vector<Value> data = {1, 1, 2, 3, 3, 3, 3};
  const FrequencyMoments a = FrequencyMoments::FromData(data);
  const FrequencyMoments b =
      FrequencyMoments::FromCounts({{1, 2}, {2, 1}, {3, 4}});
  EXPECT_EQ(a.size(), b.size());
  EXPECT_DOUBLE_EQ(a.Moment(2), b.Moment(2));
  EXPECT_DOUBLE_EQ(a.Moment(5), b.Moment(5));
}

TEST(FrequencyMomentsTest, UniformDataMinimizesF2) {
  // For fixed n and D, F2 is minimized when counts are equal.
  const FrequencyMoments uniform =
      FrequencyMoments::FromCounts({{1, 5}, {2, 5}, {3, 5}, {4, 5}});
  const FrequencyMoments skewed =
      FrequencyMoments::FromCounts({{1, 17}, {2, 1}, {3, 1}, {4, 1}});
  EXPECT_LT(uniform.Moment(2), skewed.Moment(2));
}

}  // namespace
}  // namespace aqua
