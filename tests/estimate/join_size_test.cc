#include "estimate/join_size.h"

#include <gtest/gtest.h>

#include "warehouse/relation.h"
#include "workload/generators.h"

namespace aqua {
namespace {

struct JoinFixture {
  Relation r_relation, s_relation;
  CountingSample r_counting, s_counting;
  ConciseSample r_concise, s_concise;
  double exact_join = 0.0;

  JoinFixture(std::int64_t n_r, double alpha_r, std::int64_t n_s,
              double alpha_s, std::int64_t domain, std::uint64_t seed)
      : r_counting(CountingSampleOptions{.footprint_bound = 1000,
                                         .seed = seed + 1}),
        s_counting(CountingSampleOptions{.footprint_bound = 1000,
                                         .seed = seed + 2}),
        r_concise(ConciseSampleOptions{.footprint_bound = 1000,
                                       .seed = seed + 3}),
        s_concise(ConciseSampleOptions{.footprint_bound = 1000,
                                       .seed = seed + 4}) {
    for (Value v : ZipfValues(n_r, domain, alpha_r, seed + 5)) {
      r_relation.Insert(v);
      r_counting.Insert(v);
      r_concise.Insert(v);
    }
    for (Value v : ZipfValues(n_s, domain, alpha_s, seed + 6)) {
      s_relation.Insert(v);
      s_counting.Insert(v);
      s_concise.Insert(v);
    }
    for (const ValueCount& vc : r_relation.ExactCounts()) {
      exact_join += static_cast<double>(vc.count) *
                    static_cast<double>(s_relation.FrequencyOf(vc.value));
    }
  }
};

TEST(JoinSizeEstimatorTest, CountingEstimateWithinModestError) {
  JoinFixture f(400000, 1.2, 200000, 1.0, 10000, 1);
  const double estimate = JoinSizeEstimator::FromCounting(
      f.r_counting, f.s_counting, f.r_relation.distinct_values(),
      f.s_relation.distinct_values());
  EXPECT_NEAR(estimate, f.exact_join, 0.15 * f.exact_join);
}

TEST(JoinSizeEstimatorTest, ConciseEstimateWithinModestError) {
  JoinFixture f(400000, 1.2, 200000, 1.0, 10000, 2);
  const double estimate = JoinSizeEstimator::FromConcise(
      f.r_concise, f.s_concise, f.r_relation.distinct_values(),
      f.s_relation.distinct_values());
  EXPECT_NEAR(estimate, f.exact_join, 0.3 * f.exact_join);
}

TEST(JoinSizeEstimatorTest, ExactWhenBothSamplesHoldEverything) {
  // Small domains: τ stays 1, the counting samples are exact histograms,
  // and the tail term is zero.
  JoinFixture f(30000, 1.0, 20000, 1.5, 200, 3);
  ASSERT_DOUBLE_EQ(f.r_counting.Threshold(), 1.0);
  ASSERT_DOUBLE_EQ(f.s_counting.Threshold(), 1.0);
  const double estimate = JoinSizeEstimator::FromCounting(
      f.r_counting, f.s_counting, f.r_relation.distinct_values(),
      f.s_relation.distinct_values());
  EXPECT_NEAR(estimate, f.exact_join, 1e-6 * f.exact_join);
}

TEST(JoinSizeEstimatorTest, SkewDominatedJoinTrackedByHead) {
  // Highly skewed join: the hot head carries ~all the mass; the estimate
  // must track it even with a large untracked tail.
  JoinFixture f(500000, 1.6, 500000, 1.6, 50000, 4);
  const double estimate = JoinSizeEstimator::FromCounting(
      f.r_counting, f.s_counting, f.r_relation.distinct_values(),
      f.s_relation.distinct_values());
  EXPECT_NEAR(estimate, f.exact_join, 0.1 * f.exact_join);
}

TEST(JoinSizeEstimatorTest, DisjointRelationsEstimateNearZero) {
  // R over [1,100], S over [10001,10100]: exact join 0; only the generic
  // tail term can contribute, and it must be tiny relative to |R|·|S|.
  CountingSample r(CountingSampleOptions{.footprint_bound = 500, .seed = 5});
  CountingSample s(CountingSampleOptions{.footprint_bound = 500, .seed = 6});
  for (Value v : ZipfValues(50000, 100, 1.0, 7)) r.Insert(v);
  for (Value v : ZipfValues(50000, 100, 1.0, 8)) s.Insert(v + 10000);
  const double estimate = JoinSizeEstimator::FromCounting(r, s, 100, 100);
  EXPECT_LT(estimate, 0.01 * 50000.0 * 50000.0 / 100.0);
}

}  // namespace
}  // namespace aqua
