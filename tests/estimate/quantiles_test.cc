#include "estimate/quantiles.h"

#include <gtest/gtest.h>

#include "core/concise_sample.h"
#include "workload/generators.h"

namespace aqua {
namespace {

TEST(QuantileEstimatorTest, EmptySample) {
  QuantileEstimator q(std::vector<Value>{});
  EXPECT_EQ(q.Median(), 0);
  EXPECT_DOUBLE_EQ(q.RankOf(5), 0.0);
}

TEST(QuantileEstimatorTest, ExactOnFullPopulation) {
  std::vector<Value> values;
  for (Value v = 1; v <= 100; ++v) values.push_back(v);
  QuantileEstimator q(values);
  EXPECT_EQ(q.Quantile(0.0), 1);
  EXPECT_EQ(q.Median(), 51);
  EXPECT_EQ(q.Quantile(0.25), 26);
  EXPECT_EQ(q.Quantile(1.0), 100);
  EXPECT_DOUBLE_EQ(q.RankOf(50), 0.5);
  EXPECT_DOUBLE_EQ(q.RankOf(0), 0.0);
  EXPECT_DOUBLE_EQ(q.RankOf(1000), 1.0);
}

TEST(QuantileEstimatorTest, SampleQuantilesNearTruth) {
  const std::vector<Value> data = UniformValues(500000, 10000, 1);
  const std::vector<Value> sample = UniformValues(4000, 10000, 2);
  QuantileEstimator q(sample);
  // Uniform over [1,10000]: the q-quantile is ≈ 10000q.
  EXPECT_NEAR(static_cast<double>(q.Median()), 5000.0, 400.0);
  EXPECT_NEAR(static_cast<double>(q.Quantile(0.9)), 9000.0, 300.0);
}

TEST(QuantileEstimatorTest, BoundsContainTruthAtStatedRate) {
  // Uniform [1, 1000]: true q-quantile = 1000q.  Check 95% CI coverage.
  constexpr int kTrials = 200;
  int covered = 0;
  for (int t = 0; t < kTrials; ++t) {
    const std::vector<Value> sample =
        UniformValues(500, 1000, 100 + static_cast<std::uint64_t>(t));
    QuantileEstimator q(sample);
    const Estimate e = q.QuantileWithBounds(0.5, 0.95);
    covered += (e.ci_low <= 500.0 && 500.0 <= e.ci_high);
  }
  EXPECT_GE(covered, static_cast<int>(kTrials * 0.88));
}

TEST(QuantileEstimatorTest, ConciseSampleQuantilesOnSkewedData) {
  // On zipf data the median is a tiny value; the concise sample's point
  // expansion answers it despite the 500-word footprint.
  const std::vector<Value> data = ZipfValues(400000, 10000, 1.2, 3);
  ConciseSample concise(
      ConciseSampleOptions{.footprint_bound = 500, .seed = 4});
  for (Value v : data) concise.Insert(v);
  QuantileEstimator q(concise.ToPointSample());

  std::vector<Value> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  const Value true_median = sorted[sorted.size() / 2];
  // Rank error, not value error, is what the sample bounds: the estimated
  // median's rank in the data must be near 0.5.
  const auto below = std::lower_bound(sorted.begin(), sorted.end(),
                                      q.Median()) -
                     sorted.begin();
  const double rank = static_cast<double>(below) /
                      static_cast<double>(sorted.size());
  EXPECT_NEAR(rank, 0.5, 0.08);
  EXPECT_LE(std::abs(static_cast<double>(q.Median() - true_median)),
            std::max<double>(2.0, 0.5 * static_cast<double>(true_median)));
}

}  // namespace
}  // namespace aqua
