#include "estimate/aggregates.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/concise_sample.h"
#include "random/random.h"
#include "workload/generators.h"

namespace aqua {
namespace {

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(SampleEstimator::NormalQuantile(0.95), 1.95996, 1e-3);
  EXPECT_NEAR(SampleEstimator::NormalQuantile(0.99), 2.57583, 1e-3);
  EXPECT_NEAR(SampleEstimator::NormalQuantile(0.6827), 1.0, 1e-2);
}

TEST(SampleEstimatorTest, EmptySampleYieldsZeroEstimate) {
  SampleEstimator est(std::vector<Value>{}, 100);
  const Estimate e = est.Selectivity([](Value) { return true; });
  EXPECT_DOUBLE_EQ(e.value, 0.0);
  EXPECT_EQ(e.sample_points, 0);
}

TEST(SampleEstimatorTest, SelectivityExactOnFullPopulationSample) {
  std::vector<Value> sample;
  for (Value v = 0; v < 100; ++v) sample.push_back(v);
  SampleEstimator est(sample, 100);
  const Estimate e = est.Selectivity([](Value v) { return v < 25; });
  EXPECT_DOUBLE_EQ(e.value, 0.25);
  EXPECT_TRUE(e.Contains(0.25));
}

TEST(SampleEstimatorTest, SelectivityNearTruthOnRandomSample) {
  const std::vector<Value> data = UniformValues(200000, 1000, 1);
  const std::vector<Value> sample = UniformValues(5000, 1000, 2);
  SampleEstimator est(sample, static_cast<std::int64_t>(data.size()));
  const Estimate e = est.Selectivity([](Value v) { return v <= 300; });
  EXPECT_NEAR(e.value, 0.3, 0.03);
  EXPECT_GT(e.ci_high, e.ci_low);
}

TEST(SampleEstimatorTest, HoeffdingIntervalWiderOrEqualNearHalf) {
  const std::vector<Value> sample = UniformValues(2000, 10, 3);
  SampleEstimator est(sample, 100000);
  const auto pred = [](Value v) { return v <= 5; };
  const Estimate normal = est.Selectivity(pred);
  const Estimate hoeff = est.SelectivityHoeffding(pred);
  EXPECT_GE(hoeff.HalfWidth(), normal.HalfWidth() * 0.8);
}

TEST(SampleEstimatorTest, CountWhereScalesByN) {
  std::vector<Value> sample(100, 1);
  sample.resize(200, 2);
  SampleEstimator est(sample, 10000);
  const Estimate e = est.CountWhere([](Value v) { return v == 1; });
  EXPECT_DOUBLE_EQ(e.value, 5000.0);
}

TEST(SampleEstimatorTest, AverageAndSum) {
  std::vector<Value> sample = {2, 4, 6, 8};
  SampleEstimator est(sample, 1000);
  const Estimate avg = est.Average();
  EXPECT_DOUBLE_EQ(avg.value, 5.0);
  const Estimate sum = est.Sum();
  EXPECT_DOUBLE_EQ(sum.value, 5000.0);
  EXPECT_LT(sum.ci_low, sum.value);
  EXPECT_GT(sum.ci_high, sum.value);
}

TEST(SampleEstimatorTest, ConfidenceIntervalCoverage) {
  // Repeat sampling; the 95% CI must contain the true selectivity in
  // roughly 95% of trials (allow down to 88% for finite-sample slack).
  constexpr int kTrials = 200;
  constexpr double kTrueSelectivity = 0.2;  // values 1..200 of 1..1000
  int covered = 0;
  for (int t = 0; t < kTrials; ++t) {
    const std::vector<Value> sample =
        UniformValues(1000, 1000, 100 + static_cast<std::uint64_t>(t));
    SampleEstimator est(sample, 1000000);
    const Estimate e =
        est.Selectivity([](Value v) { return v <= 200; }, 0.95);
    covered += e.Contains(kTrueSelectivity);
  }
  EXPECT_GE(covered, static_cast<int>(kTrials * 0.88));
}

TEST(SampleEstimatorTest, ConciseSampleTightensInterval) {
  // §1.1: more sample points for the same footprint → tighter CIs.  Build a
  // concise sample and a traditional-sized sample with equal footprints on
  // skewed data and compare interval widths for a selective predicate.
  const std::vector<Value> data = ZipfValues(300000, 500, 1.5, 4);
  ConciseSample concise(
      ConciseSampleOptions{.footprint_bound = 200, .seed = 5});
  for (Value v : data) concise.Insert(v);
  std::vector<Value> concise_points = concise.ToPointSample();
  ASSERT_GT(concise_points.size(), 400u);  // beats its footprint

  // ToPointSample groups equal values; shuffle before slicing so the prefix
  // is itself a uniform subsample (what a traditional sample of footprint
  // 200 would hold).
  Random shuffle_rng(6);
  for (std::size_t i = concise_points.size(); i > 1; --i) {
    std::swap(concise_points[i - 1],
              concise_points[shuffle_rng.UniformU64(i)]);
  }
  std::vector<Value> traditional_points(
      concise_points.begin(), concise_points.begin() + 200);
  SampleEstimator est_concise(concise_points,
                              static_cast<std::int64_t>(data.size()));
  SampleEstimator est_traditional(traditional_points,
                                  static_cast<std::int64_t>(data.size()));
  const auto pred = [](Value v) { return v <= 3; };
  EXPECT_LT(est_concise.Selectivity(pred).HalfWidth(),
            est_traditional.Selectivity(pred).HalfWidth());
}

}  // namespace
}  // namespace aqua
