#include "estimate/frequency_estimator.h"

#include <gtest/gtest.h>

#include "warehouse/relation.h"
#include "workload/generators.h"

namespace aqua {
namespace {

TEST(FrequencyEstimatorTest, ConciseEstimateNearTruthForHotValue) {
  ConciseSample sample(
      ConciseSampleOptions{.footprint_bound = 1000, .seed = 1});
  Relation relation;
  for (Value v : ZipfValues(300000, 5000, 1.25, 2)) {
    sample.Insert(v);
    relation.Insert(v);
  }
  const Count truth = relation.FrequencyOf(1);
  const Estimate e = FrequencyEstimator::FromConcise(sample, 1);
  EXPECT_NEAR(e.value, static_cast<double>(truth),
              0.3 * static_cast<double>(truth));
  EXPECT_LE(e.ci_low, e.value);
  EXPECT_GE(e.ci_high, e.value);
}

TEST(FrequencyEstimatorTest, ConciseAbsentValueEstimatesZero) {
  ConciseSample sample(
      ConciseSampleOptions{.footprint_bound = 100, .seed = 3});
  for (Value v : ZipfValues(50000, 100, 1.0, 4)) sample.Insert(v);
  const Estimate e = FrequencyEstimator::FromConcise(sample, 99999);
  EXPECT_DOUBLE_EQ(e.value, 0.0);
}

TEST(FrequencyEstimatorTest, CountingEnvelopeContainsTruth) {
  CountingSample sample(
      CountingSampleOptions{.footprint_bound = 1000, .seed = 5});
  Relation relation;
  for (Value v : ZipfValues(300000, 5000, 1.25, 6)) {
    sample.Insert(v);
    relation.Insert(v);
  }
  // The lower bound (count <= f_v) is deterministic under insert-only
  // streams; the upper bound holds with the requested coverage.
  std::int64_t covered = 0, total = 0;
  for (const ValueCount& e : sample.Entries()) {
    const Estimate est =
        FrequencyEstimator::FromCounting(sample, e.value, 0.95);
    const auto truth = static_cast<double>(relation.FrequencyOf(e.value));
    ASSERT_GE(truth, est.ci_low) << "value " << e.value;
    covered += (truth <= est.ci_high + 1e-9);
    ++total;
  }
  ASSERT_GT(total, 100);
  EXPECT_GE(static_cast<double>(covered) / static_cast<double>(total), 0.92);
}

TEST(FrequencyEstimatorTest, CountingAbsentValueEnvelope) {
  CountingSample sample(
      CountingSampleOptions{.footprint_bound = 100, .seed = 7});
  for (Value v : ZipfValues(100000, 5000, 1.0, 8)) sample.Insert(v);
  const Estimate e = FrequencyEstimator::FromCounting(sample, -1, 0.95);
  EXPECT_DOUBLE_EQ(e.value, 0.0);
  EXPECT_DOUBLE_EQ(e.ci_low, 0.0);
  // Upper bound: γτ with γ = ln 20 ≈ 3.0.
  EXPECT_NEAR(e.ci_high, 3.0 * sample.Threshold(),
              0.01 * sample.Threshold());
}

TEST(FrequencyEstimatorTest, CountingExactAtThresholdOne) {
  CountingSample sample(
      CountingSampleOptions{.footprint_bound = 1000, .seed = 9});
  for (int i = 0; i < 123; ++i) sample.Insert(5);
  const Estimate e = FrequencyEstimator::FromCounting(sample, 5);
  EXPECT_DOUBLE_EQ(e.value, 123.0);
}

}  // namespace
}  // namespace aqua
