#include "estimate/distinct_estimators.h"

#include <gtest/gtest.h>

#include "core/concise_sample.h"
#include "sample/reservoir_sample.h"
#include "warehouse/relation.h"
#include "workload/generators.h"

namespace aqua {
namespace {

TEST(SampleDistinctStatisticsTest, CountsFromEntries) {
  const std::vector<ValueCount> entries = {{1, 1}, {2, 1}, {3, 2}, {4, 5}};
  const auto s = SampleDistinctStatistics::FromEntries(entries);
  EXPECT_EQ(s.sample_size, 9);
  EXPECT_EQ(s.distinct, 4);
  EXPECT_EQ(s.singletons, 2);
  EXPECT_EQ(s.doubletons, 1);
}

TEST(DistinctEstimatorsTest, KnownFormulas) {
  SampleDistinctStatistics s;
  s.sample_size = 100;
  s.distinct = 40;
  s.singletons = 20;
  s.doubletons = 10;
  EXPECT_DOUBLE_EQ(DistinctEstimators::NaiveScale(s, 10000), 4000.0);
  EXPECT_DOUBLE_EQ(DistinctEstimators::Chao84(s), 40.0 + 400.0 / 20.0);
  EXPECT_DOUBLE_EQ(DistinctEstimators::Jackknife1(s), 40.0 + 20.0 * 0.99);
  EXPECT_DOUBLE_EQ(DistinctEstimators::SqrtScale(s, 10000),
                   10.0 * 20.0 + 20.0);
}

TEST(DistinctEstimatorsTest, Chao84ZeroDoubletonsFallback) {
  SampleDistinctStatistics s;
  s.sample_size = 10;
  s.distinct = 5;
  s.singletons = 3;
  s.doubletons = 0;
  EXPECT_DOUBLE_EQ(DistinctEstimators::Chao84(s), 5.0 + 3.0);
}

TEST(DistinctEstimatorsTest, EmptySample) {
  SampleDistinctStatistics s;
  EXPECT_DOUBLE_EQ(DistinctEstimators::NaiveScale(s, 100), 0.0);
  EXPECT_DOUBLE_EQ(DistinctEstimators::Jackknife1(s), 0.0);
  EXPECT_DOUBLE_EQ(DistinctEstimators::SqrtScale(s, 100), 0.0);
  EXPECT_DOUBLE_EQ(DistinctEstimators::ChaoLee(s, {}), 0.0);
}

TEST(DistinctEstimatorsTest, ExhaustiveSampleIsExact) {
  // A sample of the whole relation has f1 counting truly-unique values;
  // every estimator should land at D for a no-singleton dataset.
  std::vector<ValueCount> entries;
  for (Value v = 1; v <= 50; ++v) entries.push_back({v, 4});
  const auto s = SampleDistinctStatistics::FromEntries(entries);
  EXPECT_DOUBLE_EQ(DistinctEstimators::Chao84(s), 50.0);
  EXPECT_DOUBLE_EQ(DistinctEstimators::Jackknife1(s), 50.0);
  EXPECT_DOUBLE_EQ(DistinctEstimators::SqrtScale(s, 200), 50.0);
}

TEST(DistinctEstimatorsTest, ConciseSampleDrivesReasonableEstimates) {
  // End to end: estimate D from a concise sample of a uniform relation.
  // Uniform data is the easy regime for coverage estimators.
  Relation relation;
  ConciseSample sample(
      ConciseSampleOptions{.footprint_bound = 2000, .seed = 1});
  for (Value v : UniformValues(300000, 3000, 2)) {
    relation.Insert(v);
    sample.Insert(v);
  }
  const std::vector<ValueCount> entries = sample.Entries();
  const auto s = SampleDistinctStatistics::FromEntries(entries);
  const auto truth = static_cast<double>(relation.distinct_values());

  const double chao_lee = DistinctEstimators::ChaoLee(s, entries);
  const double sqrt_scale =
      DistinctEstimators::SqrtScale(s, relation.size());
  EXPECT_NEAR(chao_lee, truth, 0.5 * truth);
  // GEE's guarantee is only a sqrt(n/m) ratio bound — check exactly that.
  const double ratio = std::sqrt(static_cast<double>(relation.size()) /
                                 static_cast<double>(s.sample_size));
  EXPECT_GE(sqrt_scale, truth / ratio);
  EXPECT_LE(sqrt_scale, truth * ratio);
  // Chao84 is a lower bound in expectation.
  EXPECT_LE(DistinctEstimators::Chao84(s), truth * 1.2);
}

TEST(DistinctEstimatorsTest, OrderingOnSkewedData) {
  // On skewed data the naive scale-up wildly overshoots relative to the
  // coverage-based estimators.
  ReservoirSample reservoir(2000, 3);
  Relation relation;
  for (Value v : ZipfValues(300000, 3000, 1.2, 4)) {
    relation.Insert(v);
    reservoir.Insert(v);
  }
  // Fold the reservoir into entries.
  std::vector<Value> points = reservoir.Points();
  std::sort(points.begin(), points.end());
  std::vector<ValueCount> entries;
  for (std::size_t i = 0; i < points.size();) {
    std::size_t j = i;
    while (j < points.size() && points[j] == points[i]) ++j;
    entries.push_back({points[i], static_cast<Count>(j - i)});
    i = j;
  }
  const auto s = SampleDistinctStatistics::FromEntries(entries);
  const auto truth = static_cast<double>(relation.distinct_values());
  const double naive = DistinctEstimators::NaiveScale(s, relation.size());
  const double chao = DistinctEstimators::Chao84(s);
  EXPECT_GT(naive, truth * 2.0);
  EXPECT_LT(std::abs(chao - truth), std::abs(naive - truth));
}

}  // namespace
}  // namespace aqua
