#include "warehouse/catalog.h"

#include <gtest/gtest.h>

#include "core/counting_sample.h"
#include "workload/generators.h"

namespace aqua {
namespace {

TEST(SynopsisCatalogTest, RegistrationRules) {
  SynopsisCatalog catalog(10000, 1);
  EXPECT_TRUE(catalog.RegisterAttribute("sales.item").ok());
  EXPECT_TRUE(catalog.RegisterAttribute("sales.item")
                  .code() == StatusCode::kAlreadyExists);
  EXPECT_TRUE(catalog.RegisterAttribute("").IsInvalidArgument());
  AttributeOptions bad;
  bad.weight = 0.0;
  EXPECT_TRUE(catalog.RegisterAttribute("x", bad).IsInvalidArgument());
  EXPECT_FALSE(catalog.sealed());
}

TEST(SynopsisCatalogTest, SealSplitsBudgetByWeight) {
  SynopsisCatalog catalog(12000, 2);
  AttributeOptions heavy;
  heavy.weight = 2.0;
  ASSERT_TRUE(catalog.RegisterAttribute("hot", heavy).ok());
  ASSERT_TRUE(catalog.RegisterAttribute("cold").ok());  // weight 1
  ASSERT_TRUE(catalog.Seal().ok());
  EXPECT_EQ(catalog.ShareOf("hot"), 8000);
  EXPECT_EQ(catalog.ShareOf("cold"), 4000);
  EXPECT_NE(catalog.registry("hot"), nullptr);
  EXPECT_EQ(catalog.registry("unknown"), nullptr);
}

TEST(SynopsisCatalogTest, SealRejectsStarvedAttributes) {
  SynopsisCatalog catalog(40, 3);
  ASSERT_TRUE(catalog.RegisterAttribute("a").ok());
  ASSERT_TRUE(catalog.RegisterAttribute("b").ok());
  EXPECT_TRUE(catalog.Seal().IsResourceExhausted());
}

TEST(SynopsisCatalogTest, SealRequiresAttributesAndSynopses) {
  SynopsisCatalog empty(1000, 4);
  EXPECT_TRUE(empty.Seal().IsFailedPrecondition());

  SynopsisCatalog none(1000, 5);
  AttributeOptions no_synopses;
  no_synopses.maintain_traditional = false;
  no_synopses.maintain_concise = false;
  no_synopses.maintain_counting = false;
  no_synopses.maintain_distinct_sketch = false;
  ASSERT_TRUE(none.RegisterAttribute("a", no_synopses).ok());
  EXPECT_TRUE(none.Seal().IsInvalidArgument());
}

TEST(SynopsisCatalogTest, ObserveBeforeSealFails) {
  SynopsisCatalog catalog(1000, 6);
  ASSERT_TRUE(catalog.RegisterAttribute("a").ok());
  EXPECT_TRUE(catalog.Observe("a", StreamOp::Insert(1))
                  .IsFailedPrecondition());
}

TEST(SynopsisCatalogTest, RoutesOpsAndQueriesPerAttribute) {
  SynopsisCatalog catalog(8000, 7);
  ASSERT_TRUE(catalog.RegisterAttribute("products").ok());
  ASSERT_TRUE(catalog.RegisterAttribute("regions").ok());
  ASSERT_TRUE(catalog.Seal().ok());

  for (Value v : ZipfValues(100000, 1000, 1.25, 8)) {
    ASSERT_TRUE(catalog.Observe("products", StreamOp::Insert(v)).ok());
  }
  for (Value v : ZipfValues(50000, 50, 0.8, 9)) {
    ASSERT_TRUE(catalog.Observe("regions", StreamOp::Insert(v)).ok());
  }
  EXPECT_TRUE(catalog.Observe("nope", StreamOp::Insert(1)).IsNotFound());

  auto products = catalog.HotListFor("products", {.k = 5, .beta = 3});
  ASSERT_TRUE(products.ok());
  EXPECT_FALSE(products->answer.empty());
  EXPECT_EQ(products->method, "counting-sample");

  auto freq = catalog.FrequencyFor("regions", 1);
  ASSERT_TRUE(freq.ok());
  EXPECT_GT(freq->answer.value, 0.0);

  EXPECT_FALSE(catalog.HotListFor("nope", {.k = 1}).ok());
  // The two engines are independent: products' hot value 1 has a far
  // larger estimate than regions' (different stream sizes and skews).
  auto regions = catalog.HotListFor("regions", {.k = 1, .beta = 3});
  ASSERT_TRUE(regions.ok());
}

TEST(SynopsisCatalogTest, StaysWithinGlobalBudget) {
  SynopsisCatalog catalog(6000, 10);
  ASSERT_TRUE(catalog.RegisterAttribute("a").ok());
  ASSERT_TRUE(catalog.RegisterAttribute("b").ok());
  ASSERT_TRUE(catalog.RegisterAttribute("c").ok());
  ASSERT_TRUE(catalog.Seal().ok());
  for (Value v : ZipfValues(150000, 5000, 1.0, 11)) {
    ASSERT_TRUE(catalog.Observe("a", StreamOp::Insert(v)).ok());
    ASSERT_TRUE(catalog.Observe("b", StreamOp::Insert(v / 2 + 1)).ok());
    ASSERT_TRUE(catalog.Observe("c", StreamOp::Insert(v % 100)).ok());
  }
  EXPECT_LE(catalog.TotalFootprint(), catalog.budget());
}

TEST(SynopsisCatalogTest, DeletesRouteToCountingSamples) {
  SynopsisCatalog catalog(4000, 12);
  ASSERT_TRUE(catalog.RegisterAttribute("a").ok());
  ASSERT_TRUE(catalog.Seal().ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(catalog.Observe("a", StreamOp::Insert(7)).ok());
  }
  ASSERT_TRUE(catalog.Observe("a", StreamOp::Delete(7)).ok());
  const SynopsisRegistry* registry = catalog.registry("a");
  ASSERT_NE(registry, nullptr);
  const auto counting =
      registry->StateCopy<CountingSample>(kCountingSynopsisName);
  ASSERT_TRUE(counting.ok());
  EXPECT_EQ(counting.ValueOrDie().CountOf(7), 999);
  // The concise sample is invalidated by the first delete (§4.1).
  const SynopsisHandle* concise = registry->handle(kConciseSynopsisName);
  ASSERT_NE(concise, nullptr);
  EXPECT_FALSE(concise->valid());
}

}  // namespace
}  // namespace aqua
