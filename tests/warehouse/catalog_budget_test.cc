// Budget invariants of the multi-attribute catalog (§1: many synopses must
// share memory that "remains a precious resource"): weighted shares never
// exceed the global budget, per-attribute footprints stay within their
// shares even under heavily skewed ingest, and the lifecycle errors
// (re-seal, observe-before-seal, degenerate weights) are all rejected.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "warehouse/catalog.h"
#include "workload/generators.h"

namespace aqua {
namespace {

TEST(CatalogBudgetTest, SumOfSharesNeverExceedsBudget) {
  SynopsisCatalog catalog(10000, 1);
  AttributeOptions heavy;
  heavy.weight = 2.5;
  AttributeOptions light;
  light.weight = 0.7;
  ASSERT_TRUE(catalog.RegisterAttribute("a", heavy).ok());
  ASSERT_TRUE(catalog.RegisterAttribute("b").ok());  // weight 1.0
  ASSERT_TRUE(catalog.RegisterAttribute("c", light).ok());
  ASSERT_TRUE(catalog.Seal().ok());

  Words total_share = 0;
  for (const std::string& name : catalog.AttributeNames()) {
    total_share += catalog.ShareOf(name);
  }
  EXPECT_LE(total_share, catalog.budget());
  // floor() per attribute loses less than one word per attribute.
  EXPECT_GE(total_share, catalog.budget() - 3);
}

TEST(CatalogBudgetTest, RejectsZeroAndNegativeWeights) {
  SynopsisCatalog catalog(10000, 2);
  AttributeOptions zero;
  zero.weight = 0.0;
  EXPECT_TRUE(catalog.RegisterAttribute("z", zero).IsInvalidArgument());
  AttributeOptions negative;
  negative.weight = -1.5;
  EXPECT_TRUE(catalog.RegisterAttribute("n", negative).IsInvalidArgument());
  EXPECT_EQ(catalog.attribute_count(), 0u);
}

TEST(CatalogBudgetTest, FootprintStaysWithinShareUnderSkewedIngest) {
  CatalogOptions options;
  options.seed = 3;
  options.shards = 2;  // exercise the per-shard division too
  SynopsisCatalog catalog(8000, options);
  AttributeOptions heavy;
  heavy.weight = 3.0;
  ASSERT_TRUE(catalog.RegisterAttribute("skewed", heavy).ok());
  ASSERT_TRUE(catalog.RegisterAttribute("uniform").ok());
  ASSERT_TRUE(catalog.Seal().ok());

  // Hammer one attribute with a heavy-tailed stream and the other with a
  // wide uniform one; neither may outgrow its share.
  ASSERT_TRUE(
      catalog.InsertBatch("skewed", ZipfValues(200000, 5000, 1.3, 4)).ok());
  ASSERT_TRUE(
      catalog.InsertBatch("uniform", UniformValues(200000, 20000, 5)).ok());

  for (const std::string& name : catalog.AttributeNames()) {
    const SynopsisRegistry* registry = catalog.registry(name);
    ASSERT_NE(registry, nullptr);
    EXPECT_LE(registry->TotalFootprint(), catalog.ShareOf(name)) << name;
  }
  EXPECT_LE(catalog.TotalFootprint(), catalog.budget());
}

TEST(CatalogBudgetTest, LifecycleErrors) {
  SynopsisCatalog catalog(4000, 6);
  ASSERT_TRUE(catalog.RegisterAttribute("a").ok());

  // Query and ingest both require Seal() first.
  EXPECT_TRUE(catalog.Observe("a", StreamOp::Insert(1))
                  .IsFailedPrecondition());
  EXPECT_TRUE(catalog.HotListFor("a", {.k = 1}).status()
                  .IsFailedPrecondition());

  ASSERT_TRUE(catalog.Seal().ok());
  EXPECT_TRUE(catalog.Seal().IsFailedPrecondition());  // re-seal
  EXPECT_TRUE(catalog.RegisterAttribute("late").IsFailedPrecondition());
}

TEST(CatalogBudgetTest, StarvedSketchAndSampleSharesRejected) {
  // Each attribute's share must cover the sketch's fixed words...
  SynopsisCatalog sketch_starved(200, 7);
  ASSERT_TRUE(sketch_starved.RegisterAttribute("a").ok());
  ASSERT_TRUE(sketch_starved.RegisterAttribute("b").ok());
  EXPECT_TRUE(sketch_starved.Seal().IsResourceExhausted());

  // ...and leave a usable slice per sample synopsis after the carve
  // (120 words / 3 attributes / 3 sample synopses = 13 < the 16 minimum).
  SynopsisCatalog sample_starved(120, 8);
  AttributeOptions samples_only;
  samples_only.maintain_distinct_sketch = false;
  ASSERT_TRUE(sample_starved.RegisterAttribute("a", samples_only).ok());
  ASSERT_TRUE(sample_starved.RegisterAttribute("b", samples_only).ok());
  ASSERT_TRUE(sample_starved.RegisterAttribute("c", samples_only).ok());
  EXPECT_TRUE(sample_starved.Seal().IsResourceExhausted());
}

TEST(CatalogBudgetTest, CountWhereAndDistinctPerAttribute) {
  // Satellite coverage for the catalog's two new query kinds: estimates
  // answer per attribute and track that attribute's stream, not another's.
  SynopsisCatalog catalog(12000, 9);
  ASSERT_TRUE(catalog.RegisterAttribute("narrow").ok());
  ASSERT_TRUE(catalog.RegisterAttribute("wide").ok());
  ASSERT_TRUE(catalog.Seal().ok());

  ASSERT_TRUE(
      catalog.InsertBatch("narrow", UniformValues(100000, 100, 10)).ok());
  ASSERT_TRUE(
      catalog.InsertBatch("wide", UniformValues(100000, 4000, 11)).ok());

  // narrow: ~half the stream falls in [1, 50].
  const auto narrow_count = catalog.CountWhereFor(
      "narrow", [](Value v) { return v <= 50; }, 0.95);
  ASSERT_TRUE(narrow_count.ok());
  EXPECT_NEAR(narrow_count->answer.value, 50000.0, 20000.0);

  // wide: only ~1.25% does.
  const auto wide_count = catalog.CountWhereFor(
      "wide", [](Value v) { return v <= 50; }, 0.95);
  ASSERT_TRUE(wide_count.ok());
  EXPECT_LT(wide_count->answer.value, 15000.0);

  const auto narrow_distinct = catalog.DistinctFor("narrow");
  ASSERT_TRUE(narrow_distinct.ok());
  EXPECT_EQ(narrow_distinct->method, "fm-sketch");
  EXPECT_GT(narrow_distinct->answer.value, 100.0 / 3.0);
  EXPECT_LT(narrow_distinct->answer.value, 100.0 * 3.0);

  const auto wide_distinct = catalog.DistinctFor("wide");
  ASSERT_TRUE(wide_distinct.ok());
  EXPECT_GT(wide_distinct->answer.value, narrow_distinct->answer.value);

  EXPECT_TRUE(catalog.CountWhereFor("nope", [](Value) { return true; }, 0.95)
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(catalog.DistinctFor("nope").status().IsNotFound());
}

}  // namespace
}  // namespace aqua
