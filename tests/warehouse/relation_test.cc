#include "warehouse/relation.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace aqua {
namespace {

TEST(RelationTest, StartsEmpty) {
  Relation r;
  EXPECT_EQ(r.size(), 0);
  EXPECT_EQ(r.distinct_values(), 0);
  EXPECT_EQ(r.FrequencyOf(1), 0);
}

TEST(RelationTest, InsertTracksFrequencies) {
  Relation r;
  r.Insert(1);
  r.Insert(1);
  r.Insert(2);
  EXPECT_EQ(r.size(), 3);
  EXPECT_EQ(r.distinct_values(), 2);
  EXPECT_EQ(r.FrequencyOf(1), 2);
  EXPECT_EQ(r.FrequencyOf(2), 1);
}

TEST(RelationTest, DeleteDecrementsAndRemoves) {
  Relation r;
  r.Insert(1);
  r.Insert(1);
  ASSERT_TRUE(r.Delete(1).ok());
  EXPECT_EQ(r.FrequencyOf(1), 1);
  ASSERT_TRUE(r.Delete(1).ok());
  EXPECT_EQ(r.FrequencyOf(1), 0);
  EXPECT_EQ(r.distinct_values(), 0);
  EXPECT_TRUE(r.Delete(1).IsInvalidArgument());
}

TEST(RelationTest, ApplyRoutesOps) {
  Relation r;
  ASSERT_TRUE(r.Apply(StreamOp::Insert(5)).ok());
  ASSERT_TRUE(r.Apply(StreamOp::Delete(5)).ok());
  EXPECT_TRUE(r.Apply(StreamOp::Delete(5)).IsInvalidArgument());
}

TEST(RelationTest, ExactCountsRoundTrip) {
  Relation r;
  for (int i = 0; i < 5; ++i) r.Insert(10);
  for (int i = 0; i < 3; ++i) r.Insert(20);
  auto counts = r.ExactCounts();
  std::sort(counts.begin(), counts.end(),
            [](const ValueCount& a, const ValueCount& b) {
              return a.value < b.value;
            });
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], (ValueCount{10, 5}));
  EXPECT_EQ(counts[1], (ValueCount{20, 3}));
}

TEST(RelationTest, MaterializeExpandsMultiset) {
  Relation r;
  r.Insert(7);
  r.Insert(7);
  r.Insert(8);
  std::vector<Value> all = r.Materialize();
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<Value>{7, 7, 8}));
}

}  // namespace
}  // namespace aqua
