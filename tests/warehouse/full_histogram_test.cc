#include "warehouse/full_histogram.h"

#include <gtest/gtest.h>

#include "warehouse/relation.h"
#include "workload/generators.h"

namespace aqua {
namespace {

TEST(FullHistogramTest, ExactFrequencies) {
  FullHistogram h(100);
  for (int i = 0; i < 7; ++i) h.Insert(1);
  for (int i = 0; i < 3; ++i) h.Insert(2);
  EXPECT_EQ(h.FrequencyOf(1), 7);
  EXPECT_EQ(h.FrequencyOf(2), 3);
  EXPECT_EQ(h.FrequencyOf(3), 0);
  EXPECT_EQ(h.ObservedInserts(), 10);
}

TEST(FullHistogramTest, OneDiskAccessPerUpdate) {
  FullHistogram h(100);
  for (Value v : ZipfValues(5000, 100, 1.0, 1)) h.Insert(v);
  ASSERT_TRUE(h.Delete(1).ok());
  EXPECT_EQ(h.DiskAccesses(), 5001);
  EXPECT_EQ(h.Cost().lookups, 5001);
}

TEST(FullHistogramTest, DeleteErrorsOnAbsentValue) {
  FullHistogram h(10);
  EXPECT_TRUE(h.Delete(99).IsInvalidArgument());
}

TEST(FullHistogramTest, SynopsisFootprintCapped) {
  FullHistogram h(100);
  for (Value v = 0; v < 1000; ++v) h.Insert(v);
  EXPECT_EQ(h.Footprint(), 100);           // top 50 pairs
  EXPECT_EQ(h.DiskFootprint(), 2 * 1000);  // the disk copy is O(D)
}

TEST(FullHistogramTest, TopPairsAreExactTop) {
  FullHistogram h(100);
  Relation relation;
  for (Value v : ZipfValues(50000, 500, 1.2, 2)) {
    h.Insert(v);
    relation.Insert(v);
  }
  const auto top = h.TopPairs(10);
  ASSERT_EQ(top.size(), 10u);
  for (const ValueCount& vc : top) {
    EXPECT_EQ(vc.count, relation.FrequencyOf(vc.value));
  }
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].count, top[i].count);
  }
}

TEST(FullHistogramTest, ReportAnswersExactlyUpToHalfFootprint) {
  FullHistogram h(40);  // synopsis: top 20 pairs
  Relation relation;
  for (Value v : ZipfValues(50000, 500, 1.5, 3)) {
    h.Insert(v);
    relation.Insert(v);
  }
  const HotList list = h.Report({.k = 10});
  ASSERT_GE(list.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(
        list[i].estimated_count,
        static_cast<double>(relation.FrequencyOf(list[i].value)));
  }
}

}  // namespace
}  // namespace aqua
