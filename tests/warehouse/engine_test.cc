#include "warehouse/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "metrics/hotlist_accuracy.h"
#include "warehouse/relation.h"
#include "workload/generators.h"

namespace aqua {
namespace {

EngineOptions AllOn(Words m, std::uint64_t seed) {
  EngineOptions o;
  o.footprint_bound = m;
  o.seed = seed;
  o.maintain_full_histogram = false;
  return o;
}

TEST(EngineTest, MaintainsConfiguredSynopses) {
  ApproximateAnswerEngine engine(AllOn(100, 1));
  EXPECT_NE(engine.traditional(), nullptr);
  EXPECT_NE(engine.concise(), nullptr);
  EXPECT_NE(engine.counting(), nullptr);
  EXPECT_EQ(engine.full_histogram(), nullptr);
}

TEST(EngineTest, ObserveRoutesInserts) {
  ApproximateAnswerEngine engine(AllOn(100, 2));
  for (Value v : ZipfValues(10000, 100, 1.0, 3)) {
    ASSERT_TRUE(engine.Observe(StreamOp::Insert(v)).ok());
  }
  EXPECT_EQ(engine.observed_inserts(), 10000);
  EXPECT_EQ(engine.traditional()->ObservedInserts(), 10000);
  EXPECT_EQ(engine.concise()->ObservedInserts(), 10000);
  EXPECT_EQ(engine.counting()->ObservedInserts(), 10000);
}

TEST(EngineTest, HotListPrefersCountingSample) {
  ApproximateAnswerEngine engine(AllOn(500, 4));
  for (Value v : ZipfValues(100000, 1000, 1.25, 5)) {
    ASSERT_TRUE(engine.Observe(StreamOp::Insert(v)).ok());
  }
  const auto response = engine.HotListAnswer({.k = 10, .beta = 3});
  EXPECT_EQ(response.method, "counting-sample");
  EXPECT_FALSE(response.answer.empty());
  EXPECT_GE(response.response_ns, 0);
}

TEST(EngineTest, DeletionsDropConciseAndTraditional) {
  ApproximateAnswerEngine engine(AllOn(100, 6));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine.Observe(StreamOp::Insert(7)).ok());
  }
  ASSERT_TRUE(engine.Observe(StreamOp::Delete(7)).ok());
  EXPECT_EQ(engine.traditional(), nullptr);
  EXPECT_EQ(engine.concise(), nullptr);
  ASSERT_NE(engine.counting(), nullptr);
  EXPECT_EQ(engine.counting()->CountOf(7), 99);
  EXPECT_EQ(engine.observed_deletes(), 1);
  // Hot lists still work, served by the counting sample.
  EXPECT_EQ(engine.HotListAnswer({.k = 1}).method, "counting-sample");
}

TEST(EngineTest, FullHistogramServesExactHotLists) {
  EngineOptions o = AllOn(100, 7);
  o.maintain_full_histogram = true;
  ApproximateAnswerEngine engine(o);
  Relation relation;
  for (Value v : ZipfValues(50000, 500, 1.5, 8)) {
    ASSERT_TRUE(engine.Observe(StreamOp::Insert(v)).ok());
    relation.Insert(v);
  }
  const auto response = engine.HotListAnswer({.k = 10});
  EXPECT_EQ(response.method, "full-histogram");
  const HotListAccuracy acc =
      EvaluateHotList(response.answer, relation.ExactCounts(), 10);
  EXPECT_EQ(acc.false_positives, 0);
  EXPECT_DOUBLE_EQ(acc.max_relative_count_error, 0.0);
}

TEST(EngineTest, FrequencyAnswerUsesCountingSample) {
  ApproximateAnswerEngine engine(AllOn(1000, 9));
  Relation relation;
  for (Value v : ZipfValues(100000, 1000, 1.25, 10)) {
    ASSERT_TRUE(engine.Observe(StreamOp::Insert(v)).ok());
    relation.Insert(v);
  }
  const auto response = engine.FrequencyAnswer(1);
  EXPECT_EQ(response.method, "counting-sample");
  const auto truth = static_cast<double>(relation.FrequencyOf(1));
  EXPECT_NEAR(response.answer.value, truth, 0.2 * truth);
}

TEST(EngineTest, CountWhereAnswerFromConciseSample) {
  ApproximateAnswerEngine engine(AllOn(1000, 11));
  for (Value v : UniformValues(100000, 1000, 12)) {
    ASSERT_TRUE(engine.Observe(StreamOp::Insert(v)).ok());
  }
  const auto response =
      engine.CountWhereAnswer([](Value v) { return v <= 100; });
  EXPECT_EQ(response.method, "concise-sample");
  EXPECT_NEAR(response.answer.value, 10000.0, 4000.0);
}

TEST(EngineTest, DistinctValuesAnswerWithinFactor) {
  ApproximateAnswerEngine engine(AllOn(1000, 13));
  for (Value v : UniformValues(200000, 5000, 14)) {
    ASSERT_TRUE(engine.Observe(StreamOp::Insert(v)).ok());
  }
  const auto response = engine.DistinctValuesAnswer();
  EXPECT_EQ(response.method, "fm-sketch");
  EXPECT_GT(response.answer.value, 5000.0 / 2.0);
  EXPECT_LT(response.answer.value, 5000.0 * 2.0);
}

TEST(EngineTest, TotalFootprintSumsSynopses) {
  ApproximateAnswerEngine engine(AllOn(100, 15));
  for (Value v : ZipfValues(10000, 1000, 1.0, 16)) {
    ASSERT_TRUE(engine.Observe(StreamOp::Insert(v)).ok());
  }
  const Words total = engine.TotalFootprint();
  EXPECT_GT(total, 0);
  // Three bounded samples plus the FM sketch's fixed 2 * kDefaultSketchMaps
  // words (bitmaps + salts).
  EXPECT_LE(total, 3 * 100 + 2 * kDefaultSketchMaps);
}

TEST(EngineTest, HotListFallsBackToConciseThenTraditional) {
  EngineOptions concise_only = AllOn(200, 20);
  concise_only.maintain_counting = false;
  ApproximateAnswerEngine engine(concise_only);
  for (Value v : ZipfValues(20000, 200, 1.2, 21)) {
    ASSERT_TRUE(engine.Observe(StreamOp::Insert(v)).ok());
  }
  EXPECT_EQ(engine.HotListAnswer({.k = 5, .beta = 3}).method,
            "concise-sample");

  EngineOptions traditional_only = AllOn(200, 22);
  traditional_only.maintain_counting = false;
  traditional_only.maintain_concise = false;
  ApproximateAnswerEngine engine2(traditional_only);
  for (Value v : ZipfValues(20000, 200, 1.2, 23)) {
    ASSERT_TRUE(engine2.Observe(StreamOp::Insert(v)).ok());
  }
  EXPECT_EQ(engine2.HotListAnswer({.k = 5, .beta = 3}).method,
            "traditional-sample");
  // CountWhere falls back to the traditional sample as well.
  EXPECT_EQ(engine2.CountWhereAnswer([](Value) { return true; }).method,
            "traditional-sample");
}

TEST(EngineTest, DeleteOfAbsentValueFailsFullHistogram) {
  EngineOptions o = AllOn(100, 24);
  o.maintain_full_histogram = true;
  ApproximateAnswerEngine engine(o);
  ASSERT_TRUE(engine.Observe(StreamOp::Insert(1)).ok());
  EXPECT_FALSE(engine.Observe(StreamOp::Delete(999)).ok());
}

TEST(EngineTest, ObserveBatchMatchesPerOpObserve) {
  // Same seed, same op stream: the batched ingestion path must land every
  // synopsis in exactly the state the per-op path produces (the batch
  // path only re-buckets the stream into insert runs; it consumes the
  // same random draws).
  EngineOptions o = AllOn(300, 30);
  o.maintain_full_histogram = true;
  ApproximateAnswerEngine per_op(o);
  ApproximateAnswerEngine batched(o);

  std::vector<StreamOp> ops;
  for (Value v : ZipfValues(30000, 400, 1.0, 31)) {
    ops.push_back(StreamOp::Insert(v));
  }
  for (const StreamOp& op : ops) ASSERT_TRUE(per_op.Observe(op).ok());
  ASSERT_TRUE(batched.ObserveBatch(ops).ok());

  EXPECT_EQ(batched.observed_inserts(), per_op.observed_inserts());
  EXPECT_EQ(batched.traditional()->Points(), per_op.traditional()->Points());
  EXPECT_EQ(batched.concise()->SampleSize(), per_op.concise()->SampleSize());
  EXPECT_EQ(batched.concise()->Threshold(), per_op.concise()->Threshold());
  EXPECT_EQ(batched.concise()->Cost().coin_flips,
            per_op.concise()->Cost().coin_flips);
  EXPECT_EQ(batched.counting()->Threshold(), per_op.counting()->Threshold());
  EXPECT_EQ(batched.counting()->CountedOccurrences(),
            per_op.counting()->CountedOccurrences());
  const auto response = batched.HotListAnswer({.k = 5});
  EXPECT_EQ(response.method, "full-histogram");
}

TEST(EngineTest, ObserveBatchHandlesInterleavedDeletes) {
  // Deletes split the insert runs; counts must come out exact on the
  // counting sample and the per-op engine must agree.
  EngineOptions o = AllOn(300, 32);
  ApproximateAnswerEngine per_op(o);
  ApproximateAnswerEngine batched(o);

  std::vector<StreamOp> ops;
  for (int round = 0; round < 50; ++round) {
    for (Value v = 0; v < 20; ++v) ops.push_back(StreamOp::Insert(v));
    ops.push_back(StreamOp::Delete(round % 20));
  }
  for (const StreamOp& op : ops) ASSERT_TRUE(per_op.Observe(op).ok());
  ASSERT_TRUE(batched.ObserveBatch(ops).ok());

  EXPECT_EQ(batched.observed_inserts(), per_op.observed_inserts());
  EXPECT_EQ(batched.observed_deletes(), per_op.observed_deletes());
  EXPECT_EQ(batched.observed_deletes(), 50);
  ASSERT_NE(batched.counting(), nullptr);
  for (Value v = 0; v < 20; ++v) {
    EXPECT_EQ(batched.counting()->CountOf(v), per_op.counting()->CountOf(v));
  }
}

// Asserts that every piece of engine state the batched path can influence
// matches the per-op path exactly: invalidation flags (which synopses
// survived the deletes), insert/delete accounting, counting-sample state,
// and the deterministic distinct sketch.
void ExpectEnginesIdentical(const ApproximateAnswerEngine& batched,
                            const ApproximateAnswerEngine& per_op,
                            Value domain) {
  EXPECT_EQ(batched.observed_inserts(), per_op.observed_inserts());
  EXPECT_EQ(batched.observed_deletes(), per_op.observed_deletes());
  // Invalidation flags: a delete anywhere in the stream must drop the
  // concise and traditional samples on *both* paths — run-splitting must
  // not let the batched path keep a uniform sample the per-op path lost.
  EXPECT_EQ(batched.traditional() == nullptr,
            per_op.traditional() == nullptr);
  EXPECT_EQ(batched.concise() == nullptr, per_op.concise() == nullptr);
  ASSERT_EQ(batched.counting() == nullptr, per_op.counting() == nullptr);
  if (batched.counting() != nullptr) {
    EXPECT_EQ(batched.counting()->Threshold(),
              per_op.counting()->Threshold());
    EXPECT_EQ(batched.counting()->CountedOccurrences(),
              per_op.counting()->CountedOccurrences());
    EXPECT_EQ(batched.counting()->ObservedInserts(),
              per_op.counting()->ObservedInserts());
    for (Value v = 0; v <= domain; ++v) {
      EXPECT_EQ(batched.counting()->CountOf(v), per_op.counting()->CountOf(v))
          << "value " << v;
    }
  }
  ASSERT_EQ(batched.distinct_sketch() == nullptr,
            per_op.distinct_sketch() == nullptr);
  if (batched.distinct_sketch() != nullptr) {
    EXPECT_DOUBLE_EQ(batched.distinct_sketch()->Estimate(),
                     per_op.distinct_sketch()->Estimate());
  }
}

TEST(EngineTest, ObserveBatchInvalidationMatchesPerOp) {
  // One delete mid-batch: both paths must drop the uniform samples at the
  // same stream position and agree on everything that remains.
  EngineOptions o = AllOn(300, 40);
  ApproximateAnswerEngine per_op(o);
  ApproximateAnswerEngine batched(o);

  std::vector<StreamOp> ops;
  for (Value v : ZipfValues(5000, 50, 1.0, 41)) {
    ops.push_back(StreamOp::Insert(v));
  }
  ops.push_back(StreamOp::Delete(1));
  for (Value v : ZipfValues(5000, 50, 1.0, 42)) {
    ops.push_back(StreamOp::Insert(v));
  }

  for (const StreamOp& op : ops) ASSERT_TRUE(per_op.Observe(op).ok());
  ASSERT_TRUE(batched.ObserveBatch(ops).ok());

  ExpectEnginesIdentical(batched, per_op, 50);
  EXPECT_EQ(batched.traditional(), nullptr);
  EXPECT_EQ(batched.concise(), nullptr);
  // Both engines answer hot lists the same way after invalidation.
  EXPECT_EQ(batched.HotListAnswer({.k = 5}).method, "counting-sample");
  EXPECT_EQ(per_op.HotListAnswer({.k = 5}).method, "counting-sample");
}

TEST(EngineTest, ObserveBatchDeleteFirstAndLastMatchPerOp) {
  // A batch that *starts* with a delete (no preceding insert run) and
  // *ends* with one (no following run) exercises both run-splitting edges.
  EngineOptions o = AllOn(200, 43);
  ApproximateAnswerEngine per_op(o);
  ApproximateAnswerEngine batched(o);

  std::vector<StreamOp> ops;
  ops.push_back(StreamOp::Delete(7));  // absent: Theorem 5 no-op, still ok
  for (Value v = 0; v < 30; ++v) {
    for (int r = 0; r < 10; ++r) ops.push_back(StreamOp::Insert(v));
  }
  ops.push_back(StreamOp::Delete(3));

  for (const StreamOp& op : ops) ASSERT_TRUE(per_op.Observe(op).ok());
  ASSERT_TRUE(batched.ObserveBatch(ops).ok());

  ExpectEnginesIdentical(batched, per_op, 30);
  EXPECT_EQ(batched.observed_deletes(), 2);
}

TEST(EngineTest, ObserveBatchConsecutiveDeletesMatchPerOp) {
  // Consecutive deletes produce empty insert runs between them; the
  // batched path must consume them one-by-one exactly like Observe.
  EngineOptions o = AllOn(200, 44);
  ApproximateAnswerEngine per_op(o);
  ApproximateAnswerEngine batched(o);

  std::vector<StreamOp> ops;
  for (int r = 0; r < 40; ++r) {
    for (Value v = 0; v < 10; ++v) ops.push_back(StreamOp::Insert(v));
  }
  for (int i = 0; i < 5; ++i) ops.push_back(StreamOp::Delete(2));
  for (Value v = 0; v < 10; ++v) ops.push_back(StreamOp::Insert(v));
  for (int i = 0; i < 3; ++i) ops.push_back(StreamOp::Delete(9));

  for (const StreamOp& op : ops) ASSERT_TRUE(per_op.Observe(op).ok());
  ASSERT_TRUE(batched.ObserveBatch(ops).ok());

  ExpectEnginesIdentical(batched, per_op, 10);
  EXPECT_EQ(batched.observed_deletes(), 8);
}

TEST(EngineTest, ObserveBatchPropagatesDeleteErrors) {
  EngineOptions o = AllOn(100, 33);
  o.maintain_full_histogram = true;
  ApproximateAnswerEngine engine(o);
  const std::vector<StreamOp> ops = {StreamOp::Insert(1),
                                     StreamOp::Delete(999)};
  EXPECT_FALSE(engine.ObserveBatch(ops).ok());
  // The insert run before the failing delete was applied.
  EXPECT_EQ(engine.observed_inserts(), 1);
}

TEST(EngineTest, NoSynopsesConfigured) {
  EngineOptions o;
  o.maintain_traditional = false;
  o.maintain_concise = false;
  o.maintain_counting = false;
  o.maintain_distinct_sketch = false;
  ApproximateAnswerEngine engine(o);
  ASSERT_TRUE(engine.Observe(StreamOp::Insert(1)).ok());
  EXPECT_EQ(engine.HotListAnswer({.k = 1}).method, "none");
  EXPECT_EQ(engine.CountWhereAnswer([](Value) { return true; }).method,
            "none");
  EXPECT_EQ(engine.DistinctValuesAnswer().method, "none");
}

}  // namespace
}  // namespace aqua
