// Tests of the type-erased synopsis registry: one descriptor registered
// once must be served by BOTH engines through the same accuracy-ordered
// answer path (the acceptance criterion for collapsing the per-engine
// method selection), capabilities must gate the concurrent machinery
// (mergeable synopses shard, unmergeable ones stay single-instance), and
// descriptor validation must reject incoherent cost/error models.

#include "registry/registry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "registry/builtin.h"
#include "server/serving_engine.h"
#include "warehouse/engine.h"
#include "workload/generators.h"

namespace aqua {
namespace {

/// A custom synopsis private to this test: exact distinct count via a set.
/// Deliberately minimal — no MergeFrom/Reseed/InsertBatch/Delete — so the
/// registry must fall back to per-element inserts and single-instance
/// (SharedSynopsis) execution in concurrent mode.
struct ExactDistinct {
  std::set<Value> values;
  void Insert(Value v) { values.insert(v); }
  Words Footprint() const { return static_cast<Words>(values.size()); }
};

SynopsisDescriptor<ExactDistinct> ExactDistinctDescriptor(
    std::string name = "exact-distinct",
    DeleteBehavior on_delete = DeleteBehavior::kIgnores,
    int accuracy = kAccuracyExact) {
  SynopsisDescriptor<ExactDistinct> d;
  d.name = std::move(name);
  d.on_delete = on_delete;
  d.Declare(QueryKind::kDistinct, accuracy,
            [](const ExactDistinct&, const QueryContext&, double) {
              return 0.0;
            });
  d.factory = [](std::uint64_t) { return ExactDistinct{}; };
  d.answers.distinct = [](const ExactDistinct& s, const QueryContext&) {
    Estimate e;
    e.value = static_cast<double>(s.values.size());
    e.ci_low = e.value;
    e.ci_high = e.value;
    e.confidence = 1.0;
    e.sample_points = static_cast<std::int64_t>(s.values.size());
    return e;
  };
  return d;
}

std::int64_t TrueDistinct(const std::vector<Value>& values) {
  return static_cast<std::int64_t>(
      std::set<Value>(values.begin(), values.end()).size());
}

// The tentpole's acceptance test: ONE descriptor, registered once per
// driver, served by both the single-threaded engine and the concurrent
// serving engine — same method tag, same exact answer, and it outranks the
// built-in FM sketch in both without any per-engine selection code.
TEST(SynopsisRegistryTest, CustomSynopsisServedByBothEngines) {
  const std::vector<Value> stream = UniformValues(20000, 700, 99);
  const auto truth = static_cast<double>(TrueDistinct(stream));

  ApproximateAnswerEngine engine(EngineOptions{});
  ASSERT_TRUE(engine.RegisterSynopsis(ExactDistinctDescriptor()).ok());
  for (Value v : stream) ASSERT_TRUE(engine.Observe(StreamOp::Insert(v)).ok());
  const auto warehouse_answer = engine.DistinctValuesAnswer();
  EXPECT_EQ(warehouse_answer.method, "exact-distinct");
  EXPECT_DOUBLE_EQ(warehouse_answer.answer.value, truth);

  ServingEngineOptions serving_options;
  serving_options.shards = 4;
  ServingEngine serving(serving_options);
  ASSERT_TRUE(serving.RegisterSynopsis(ExactDistinctDescriptor()).ok());
  serving.InsertBatch(stream);
  const auto serving_answer = serving.DistinctValuesAnswer();
  EXPECT_EQ(serving_answer.method, "exact-distinct");
  EXPECT_DOUBLE_EQ(serving_answer.answer.value, truth);
}

TEST(SynopsisRegistryTest, CapabilitiesGateShardingAndCaching) {
  ServingEngineOptions options;
  options.shards = 4;
  ServingEngine serving(options);
  ASSERT_TRUE(serving.RegisterSynopsis(ExactDistinctDescriptor()).ok());
  serving.InsertBatch(UniformValues(1000, 100, 7));

  const RegistryStats stats = serving.registry().GetStats();
  bool checked_sharded = false;
  bool checked_single = false;
  for (const SynopsisHandleStats& s : stats.synopses) {
    // Every concurrent handle answers from an epoch cache.
    EXPECT_TRUE(s.cached) << s.name;
    if (s.name == kConciseSynopsisName ||
        s.name == kTraditionalSynopsisName) {
      EXPECT_TRUE(s.sharded) << s.name;  // mergeable + reseedable
      checked_sharded = true;
    }
    if (s.name == kCountingSynopsisName || s.name == kDistinctSketchName ||
        s.name == "exact-distinct") {
      EXPECT_FALSE(s.sharded) << s.name;  // unmergeable
      checked_single = true;
    }
  }
  EXPECT_TRUE(checked_sharded);
  EXPECT_TRUE(checked_single);

  // The unsynchronized engine uses no caches at all.
  ApproximateAnswerEngine engine(EngineOptions{});
  for (const SynopsisHandleStats& s : engine.registry().GetStats().synopses) {
    EXPECT_FALSE(s.cached) << s.name;
    EXPECT_FALSE(s.sharded) << s.name;
  }
}

TEST(SynopsisRegistryTest, RegisterValidatesDescriptors) {
  SynopsisRegistry registry(SynopsisRegistry::Options{});

  // Coherent descriptor registers once, duplicates are rejected.
  ASSERT_TRUE(registry.Register(ExactDistinctDescriptor()).ok());
  EXPECT_EQ(registry.Register(ExactDistinctDescriptor()).code(),
            StatusCode::kAlreadyExists);

  auto unnamed = ExactDistinctDescriptor("");
  EXPECT_TRUE(registry.Register(std::move(unnamed)).IsInvalidArgument());

  auto no_factory = ExactDistinctDescriptor("no-factory");
  no_factory.factory = nullptr;
  EXPECT_TRUE(registry.Register(std::move(no_factory)).IsInvalidArgument());

  // kApplies without a Delete(Value) member cannot be honored.
  auto applies = ExactDistinctDescriptor("applies", DeleteBehavior::kApplies);
  EXPECT_TRUE(registry.Register(std::move(applies)).IsInvalidArgument());

  // A model entry without an answer function (and vice versa) is
  // incoherent, as is a declared kind with no error estimator — the
  // planner cannot score what it cannot predict.
  auto model_only = ExactDistinctDescriptor("model-only");
  model_only.Declare(QueryKind::kHotList, 1,
                     [](const ExactDistinct&, const QueryContext&, double) {
                       return 0.0;
                     });
  EXPECT_TRUE(registry.Register(std::move(model_only)).IsInvalidArgument());

  auto answer_only = ExactDistinctDescriptor("answer-only");
  answer_only.model[static_cast<int>(QueryKind::kDistinct)] = {};
  EXPECT_TRUE(registry.Register(std::move(answer_only)).IsInvalidArgument());

  auto no_estimator = ExactDistinctDescriptor("no-estimator");
  no_estimator.model[static_cast<int>(QueryKind::kDistinct)].error = nullptr;
  EXPECT_TRUE(registry.Register(std::move(no_estimator)).IsInvalidArgument());
}

TEST(SynopsisRegistryTest, CostErrorModelIsLiveAndMeasured) {
  // The model's static half (accuracy classes) is published through
  // Capabilities(); the live half (error estimators over current state,
  // measured latency EWMAs) through the handle.
  ApproximateAnswerEngine engine(EngineOptions{});
  const SynopsisHandle* concise =
      engine.registry().handle(kConciseSynopsisName);
  ASSERT_NE(concise, nullptr);
  EXPECT_EQ(concise->Capabilities().AccuracyClass(QueryKind::kCountWhere),
            kAccuracyConcise);
  EXPECT_TRUE(concise->Capabilities().Answers(QueryKind::kCountWhere));
  EXPECT_FALSE(concise->Capabilities().Answers(QueryKind::kDistinct));

  // An empty sample predicts nothing; an undeclared kind never predicts.
  QueryContext ctx{engine.registry().observed_inserts()};
  EXPECT_TRUE(std::isinf(
      concise->PredictedError(QueryKind::kCountWhere, ctx, 0.95)));
  for (Value v : UniformValues(5000, 200, 11)) {
    ASSERT_TRUE(engine.Observe(StreamOp::Insert(v)).ok());
  }
  ctx.observed_inserts = engine.registry().observed_inserts();
  const double err95 =
      concise->PredictedError(QueryKind::kCountWhere, ctx, 0.95);
  const double err99 =
      concise->PredictedError(QueryKind::kCountWhere, ctx, 0.99);
  EXPECT_GT(err95, 0.0);
  EXPECT_LT(err95, 1.0);
  EXPECT_GT(err99, err95);  // tighter confidence, wider predicted error
  EXPECT_TRUE(
      std::isinf(concise->PredictedError(QueryKind::kDistinct, ctx, 0.95)));

  // Answering feeds the measured latency profile on the path taken.
  EXPECT_EQ(concise->LatencyFor(QueryKind::kCountWhere).direct_observations,
            0);
  const auto response =
      engine.registry().CountWhereAnswer(ValueRange{1, 100}, 0.95);
  EXPECT_EQ(response.method, kConciseSynopsisName);
  const LatencyProfile profile = concise->LatencyFor(QueryKind::kCountWhere);
  EXPECT_GE(profile.direct_observations, 1);
  EXPECT_GT(profile.direct_ns, 0.0);
}

TEST(SynopsisRegistryTest, AccuracyOrderSelectsBestThenFallsBack) {
  // Two synopses answer the same kind; the better accuracy class must
  // serve until a delete invalidates it, then the worse one takes over —
  // the single answer path both engines now share.
  SynopsisRegistry registry(SynopsisRegistry::Options{});
  ASSERT_TRUE(registry
                  .Register(ExactDistinctDescriptor(
                      "fragile-distinct", DeleteBehavior::kInvalidates,
                      kAccuracyExact))
                  .ok());
  ASSERT_TRUE(registry
                  .Register(ExactDistinctDescriptor(
                      "sturdy-distinct", DeleteBehavior::kIgnores,
                      kAccuracyConcise))
                  .ok());

  for (Value v : UniformValues(500, 50, 3)) {
    ASSERT_TRUE(registry.Observe(StreamOp::Insert(v)).ok());
  }
  EXPECT_EQ(registry.DistinctValuesAnswer().method, "fragile-distinct");

  ASSERT_TRUE(registry.Delete(1).ok());
  EXPECT_FALSE(registry.handle("fragile-distinct")->valid());
  EXPECT_EQ(registry.DistinctValuesAnswer().method, "sturdy-distinct");

  // Invalidated handles stop counting toward the footprint.
  for (const SynopsisHandleStats& s : registry.GetStats().synopses) {
    if (s.name == "fragile-distinct") {
      EXPECT_EQ(s.footprint, 0);
    }
  }
}

TEST(SynopsisRegistryTest, PersistRoundTripsThroughHandles) {
  // The persist capability travels with the descriptor: encode a concise
  // sample out of one engine, restore it into a fresh one, and the restored
  // sample must be byte-identical in its observable state.
  ApproximateAnswerEngine source(EngineOptions{});
  for (Value v : ZipfValues(30000, 400, 1.1, 17)) {
    ASSERT_TRUE(source.Observe(StreamOp::Insert(v)).ok());
  }
  const SynopsisHandle* handle =
      source.registry().handle(kConciseSynopsisName);
  ASSERT_NE(handle, nullptr);
  EXPECT_TRUE(handle->Capabilities().persistable);
  const auto bytes = handle->EncodeState();
  ASSERT_TRUE(bytes.ok());

  ApproximateAnswerEngine restored(EngineOptions{});
  SynopsisHandle* target =
      restored.registry().mutable_handle(kConciseSynopsisName);
  ASSERT_NE(target, nullptr);
  ASSERT_TRUE(target->RestoreState(bytes.ValueOrDie()).ok());
  ASSERT_NE(restored.concise(), nullptr);
  EXPECT_EQ(restored.concise()->SampleSize(), source.concise()->SampleSize());
  EXPECT_EQ(restored.concise()->Threshold(), source.concise()->Threshold());

  // The sketch has no codec; the capability and the error say so.
  const SynopsisHandle* sketch =
      source.registry().handle(kDistinctSketchName);
  ASSERT_NE(sketch, nullptr);
  EXPECT_FALSE(sketch->Capabilities().persistable);
  EXPECT_EQ(sketch->EncodeState().status().code(),
            StatusCode::kUnimplemented);
}

TEST(SynopsisRegistryTest, DeleteBehaviorsRouteIndependently) {
  // One registry, three delete behaviors: kIgnores keeps serving,
  // kInvalidates stops, kApplies adjusts counts — all from one Delete call.
  ApproximateAnswerEngine engine(EngineOptions{});
  ASSERT_TRUE(engine.RegisterSynopsis(ExactDistinctDescriptor()).ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(engine.Observe(StreamOp::Insert(i % 10)).ok());
  }
  ASSERT_TRUE(engine.Observe(StreamOp::Delete(3)).ok());

  EXPECT_EQ(engine.concise(), nullptr);              // kInvalidates
  ASSERT_NE(engine.counting(), nullptr);             // kApplies
  EXPECT_EQ(engine.counting()->CountOf(3), 49);
  const auto distinct = engine.DistinctValuesAnswer();  // kIgnores
  EXPECT_EQ(distinct.method, "exact-distinct");
  EXPECT_DOUBLE_EQ(distinct.answer.value, 10.0);
}

}  // namespace
}  // namespace aqua
