// Bit-identity of the incremental (delta-patched) FrozenView build against
// a full rebuild from the same Spec.  The patch constructor keeps the
// previous epoch's orderings and linear-merges a sorted delta; because
// values are unique keys and both comparators are total orders, the merged
// sequences must equal the full sort's output *exactly* — orderings,
// prefix sums, moments and every answer byte.  These are structural
// assertions with no failure budget: they hold on every seed, every churn
// shape, and on both sides of the fallback threshold.

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/concise_sample.h"
#include "estimate/aggregates.h"
#include "property/seed_sweep.h"
#include "sample/capabilities.h"
#include "view/frozen_view.h"
#include "view/view_builders.h"
#include "workload/generators.h"

namespace aqua {
namespace {

void ExpectViewsBitIdentical(const FrozenView& full,
                             const FrozenView& patched) {
  ASSERT_EQ(full.entry_count(), patched.entry_count());
  ASSERT_EQ(full.sample_size(), patched.sample_size());
  EXPECT_EQ(full.observed_inserts(), patched.observed_inserts());

  const auto fv = full.ByValueOrder();
  const auto pv = patched.ByValueOrder();
  ASSERT_EQ(fv.size(), pv.size());
  for (std::size_t i = 0; i < fv.size(); ++i) {
    ASSERT_EQ(fv[i].value, pv[i].value) << "by_value[" << i << "]";
    ASSERT_EQ(fv[i].count, pv[i].count) << "by_value[" << i << "]";
  }

  const auto fc = full.ByCountDescOrder();
  const auto pc = patched.ByCountDescOrder();
  ASSERT_EQ(fc.size(), pc.size());
  for (std::size_t i = 0; i < fc.size(); ++i) {
    ASSERT_EQ(fc[i].value, pc[i].value) << "by_count_desc[" << i << "]";
    ASSERT_EQ(fc[i].count, pc[i].count) << "by_count_desc[" << i << "]";
  }

  const auto fp = full.PrefixSums();
  const auto pp = patched.PrefixSums();
  ASSERT_EQ(fp.size(), pp.size());
  for (std::size_t i = 0; i < fp.size(); ++i) {
    ASSERT_EQ(fp[i], pp[i]) << "prefix[" << i << "]";
  }

  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(full.MomentF(k), patched.MomentF(k)) << "F_" << k;
  }
  for (int kind = 0; kind < kNumQueryKinds; ++kind) {
    EXPECT_EQ(full.Answers(static_cast<QueryKind>(kind)),
              patched.Answers(static_cast<QueryKind>(kind)));
  }
}

void ExpectEstimateEq(const Estimate& a, const Estimate& b) {
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.ci_low, b.ci_low);
  EXPECT_EQ(a.ci_high, b.ci_high);
  EXPECT_EQ(a.confidence, b.confidence);
  EXPECT_EQ(a.sample_points, b.sample_points);
}

/// Estimator-parameter answers (not just structure): hot list, quantile
/// and range count through both views must agree bit-for-bit.
void ExpectAnswersBitIdentical(const FrozenView& full,
                               const FrozenView& patched, Value domain) {
  if (full.Answers(QueryKind::kHotList)) {
    for (const std::int64_t k : {0L, 1L, 10L, 1000000L}) {
      HotListQuery query;
      query.k = k;
      query.beta = 3.0;
      const HotList a = full.HotListAnswer(query);
      const HotList b = patched.HotListAnswer(query);
      ASSERT_EQ(a.size(), b.size()) << "hot list k=" << k;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].value, b[i].value);
        EXPECT_EQ(a[i].estimated_count, b[i].estimated_count);
        EXPECT_EQ(a[i].synopsis_count, b[i].synopsis_count);
      }
    }
  }
  QueryContext ctx;
  ctx.observed_inserts = full.observed_inserts();
  if (full.Answers(QueryKind::kCountWhere)) {
    for (const ValueRange range :
         {ValueRange{1, domain}, ValueRange{domain / 3, domain / 2},
          ValueRange{domain + 1, domain + 9}}) {
      ExpectEstimateEq(full.CountWhereRangeAnswer(range, 0.95, ctx),
                       patched.CountWhereRangeAnswer(range, 0.95, ctx));
    }
  }
  if (full.Answers(QueryKind::kQuantile)) {
    for (const double q : {0.0, 0.25, 0.5, 0.9, 1.0}) {
      ExpectEstimateEq(full.QuantileAnswer(q, 0.95),
                       patched.QuantileAnswer(q, 0.95));
    }
  }
  if (full.Answers(QueryKind::kFrequency)) {
    for (const Value v : {Value{1}, domain / 2, domain + 5}) {
      ExpectEstimateEq(full.FrequencyAnswer(v, 0.95),
                       patched.FrequencyAnswer(v, 0.95));
    }
  }
}

/// A synthetic Spec over explicit entries, exercising every answer path
/// the concise view serves.
FrozenView::Spec MakeSpec(std::vector<ValueCount> entries) {
  FrozenView::Spec spec;
  spec.sample_size = SampleSizeOf(entries);
  spec.entries = std::move(entries);
  spec.observed_inserts = spec.sample_size * 3;
  FrozenView::HotListParams hot;
  hot.scale = static_cast<double>(spec.observed_inserts) /
              static_cast<double>(std::max<std::int64_t>(1, spec.sample_size));
  hot.offset = 0.0;
  spec.hot_list = hot;
  spec.count_where = true;
  spec.quantile = true;
  const std::int64_t m = spec.sample_size;
  const std::int64_t n = spec.observed_inserts;
  spec.frequency = [m, n](Count c, double confidence) {
    Estimate e;
    e.value = m > 0 ? static_cast<double>(c) * n / m : 0.0;
    e.ci_low = e.value * 0.9;
    e.ci_high = e.value * 1.1;
    e.confidence = confidence;
    e.sample_points = c;
    return e;
  };
  return spec;
}

/// The evolving truth the randomized rounds mutate: value -> count.
std::vector<ValueCount> ToEntries(const std::vector<Count>& counts) {
  std::vector<ValueCount> entries;
  for (std::size_t v = 0; v < counts.size(); ++v) {
    if (counts[v] > 0) {
      entries.push_back(
          {static_cast<Value>(v + 1), counts[v]});
    }
  }
  return entries;
}

TEST(IncrementalView, RandomizedChurnMatchesFullRebuildAcrossRounds) {
  // Ten epochs per seed with randomized add/change/remove churn.  The
  // scratch is reused across all rounds exactly as the registry handle
  // reuses it across refreshes.
  RunSeedSweep([](std::uint64_t seed) {
    SCOPED_TRACE(testing::Message() << "seed 0x" << std::hex << seed);
    std::mt19937_64 rng(seed);
    constexpr std::size_t kDomain = 600;
    std::vector<Count> counts(kDomain, 0);
    for (std::size_t v = 0; v < kDomain; ++v) {
      if (rng() % 2 == 0) counts[v] = 1 + static_cast<Count>(rng() % 50);
    }

    FrozenView::PatchScratch scratch;
    ViewPatchStats stats;
    // Epoch 0: no previous view exists; seed the chain with a full build
    // through the scratch (the handle's first FreezeEpoch does the same
    // via the plain constructor — here we need build_id continuity).
    FrozenView previous(MakeSpec(ToEntries(counts)), FrozenView(MakeSpec({})),
                        scratch, &stats);
    {
      const FrozenView full(MakeSpec(ToEntries(counts)));
      ExpectViewsBitIdentical(full, previous);
    }

    for (int round = 0; round < 10; ++round) {
      SCOPED_TRACE(testing::Message() << "round " << round);
      // Churn ~round% of the domain: adds, count changes, removes.
      const std::size_t touches = 1 + (rng() % (kDomain / 4));
      for (std::size_t t = 0; t < touches; ++t) {
        const std::size_t v = rng() % kDomain;
        switch (rng() % 3) {
          case 0:  // add or bump
            counts[v] += 1 + static_cast<Count>(rng() % 8);
            break;
          case 1:  // change
            if (counts[v] > 0) counts[v] = 1 + static_cast<Count>(rng() % 99);
            break;
          default:  // remove
            counts[v] = 0;
            break;
        }
      }
      const std::vector<ValueCount> entries = ToEntries(counts);
      const FrozenView full(MakeSpec(entries));
      FrozenView patched(MakeSpec(entries), previous, scratch, &stats);
      ExpectViewsBitIdentical(full, patched);
      ExpectAnswersBitIdentical(full, patched,
                                static_cast<Value>(kDomain));
      EXPECT_LE(stats.delta_fraction, 1.0);
      previous = std::move(patched);
    }
    return !testing::Test::HasFailure();
  });
}

TEST(IncrementalView, SmallDeltaTakesThePatchPath) {
  std::vector<Count> counts(500, 0);
  for (std::size_t v = 0; v < counts.size(); ++v) {
    counts[v] = 1 + static_cast<Count>(v % 7);
  }
  FrozenView::PatchScratch scratch;
  ViewPatchStats stats;
  FrozenView previous(MakeSpec(ToEntries(counts)), FrozenView(MakeSpec({})),
                      scratch, &stats);

  // Touch 5 of 500 values: the build must patch, not fall back.
  counts[3] += 2;
  counts[77] = 0;
  counts[140] += 1;
  counts[141] = 9;
  counts[499] += 4;
  const std::vector<ValueCount> entries = ToEntries(counts);
  const FrozenView full(MakeSpec(entries));
  const FrozenView patched(MakeSpec(entries), previous, scratch, &stats);

  EXPECT_FALSE(stats.full_sort) << "a 1% delta must take the patch path";
  EXPECT_LE(stats.delta_fraction, 0.05);
  EXPECT_GE(stats.delta_entries + stats.removed_entries, 4u);
  ExpectViewsBitIdentical(full, patched);
  ExpectAnswersBitIdentical(full, patched, 500);
}

TEST(IncrementalView, LargeDeltaFallsBackToFullSortAndStaysIdentical) {
  std::vector<Count> counts(300, 0);
  for (std::size_t v = 0; v < counts.size(); ++v) counts[v] = 2;
  FrozenView::PatchScratch scratch;
  ViewPatchStats stats;
  FrozenView previous(MakeSpec(ToEntries(counts)), FrozenView(MakeSpec({})),
                      scratch, &stats);

  // Rewrite (almost) everything: the delta exceeds half the entry set, so
  // the build must fall back to full sorts — and still match exactly.
  for (std::size_t v = 0; v < counts.size(); ++v) {
    counts[v] = 1 + static_cast<Count>((v * 13) % 31);
  }
  const std::vector<ValueCount> entries = ToEntries(counts);
  const FrozenView full(MakeSpec(entries));
  const FrozenView patched(MakeSpec(entries), previous, scratch, &stats);

  EXPECT_TRUE(stats.full_sort);
  ExpectViewsBitIdentical(full, patched);
  ExpectAnswersBitIdentical(full, patched, 300);
}

TEST(IncrementalView, StaleMirrorIsDetectedAndReseeded) {
  // If `previous` is not the view this scratch last produced (build_id
  // mismatch), the mirror is silently wrong for it; the constructor must
  // reseed from previous.by_value_ rather than trust the mirror.
  std::vector<Count> counts(200, 1);
  FrozenView::PatchScratch scratch;
  ViewPatchStats stats;
  const FrozenView through_scratch(MakeSpec(ToEntries(counts)),
                                   FrozenView(MakeSpec({})), scratch, &stats);

  // A different previous, built outside the scratch (plain constructor).
  counts[7] = 5;
  counts[8] = 0;
  const FrozenView outside(MakeSpec(ToEntries(counts)));
  ASSERT_NE(outside.build_id(), through_scratch.build_id());

  counts[9] += 2;
  const std::vector<ValueCount> entries = ToEntries(counts);
  const FrozenView full(MakeSpec(entries));
  const FrozenView patched(MakeSpec(entries), outside, scratch, &stats);
  ExpectViewsBitIdentical(full, patched);
}

TEST(IncrementalView, EmptyPreviousAndEmptyNextAreHandled) {
  FrozenView::PatchScratch scratch;
  ViewPatchStats stats;
  const FrozenView empty(MakeSpec({}));

  // empty -> populated: full sort fallback, identical.
  std::vector<ValueCount> entries = {{5, 3}, {1, 2}, {9, 1}};
  const FrozenView full(MakeSpec(entries));
  const FrozenView grown(MakeSpec(entries), empty, scratch, &stats);
  EXPECT_TRUE(stats.full_sort);
  ExpectViewsBitIdentical(full, grown);

  // populated -> empty: everything removed.
  const FrozenView full_empty(MakeSpec({}));
  const FrozenView shrunk(MakeSpec({}), grown, scratch, &stats);
  ExpectViewsBitIdentical(full_empty, shrunk);
}

TEST(IncrementalView, ConciseSampleSpecsPatchIdenticallyAcrossIngest) {
  // End-to-end over the real synopsis: a concise sample absorbing Zipf
  // increments, its Spec rebuilt per epoch exactly as FreezeEpoch does.
  RunSeedSweep([](std::uint64_t seed) {
    SCOPED_TRACE(testing::Message() << "seed 0x" << std::hex << seed);
    ConciseSampleOptions options;
    options.footprint_bound = 512;
    options.seed = seed;
    ConciseSample sample(options);

    FrozenView::PatchScratch scratch;
    ViewPatchStats stats;
    FrozenView previous(BuildConciseViewSpec(sample), FrozenView(MakeSpec({})),
                        scratch, &stats);
    const std::vector<Value> stream = ZipfValues(20000, 1500, 1.0, seed);
    std::size_t offset = 0;
    for (const std::size_t increment : {64UL, 512UL, 2048UL, 8192UL, 9184UL}) {
      SCOPED_TRACE(testing::Message() << "after +" << increment);
      for (std::size_t i = 0; i < increment && offset < stream.size(); ++i) {
        sample.Insert(stream[offset++]);
      }
      const FrozenView full(BuildConciseViewSpec(sample));
      FrozenView patched(BuildConciseViewSpec(sample), previous, scratch,
                         &stats);
      ExpectViewsBitIdentical(full, patched);
      ExpectAnswersBitIdentical(full, patched, 1500);
      previous = std::move(patched);
    }
    return !testing::Test::HasFailure();
  });
}

}  // namespace
}  // namespace aqua
