// Unit tests of FrozenView over hand-built Specs: the O(k) hot-list cut
// semantics (β floor, fixed floor, c_k clamping, ties), the O(log m)
// range prefix-sum arithmetic against the shared CountWhereFromHits core,
// quantiles against a freshly sorted point sample, and the Answers()
// coverage each view builder declares.  The equivalence against the live
// per-query answer paths lives in view_equivalence_property_test.cc.

#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "estimate/aggregates.h"
#include "estimate/quantiles.h"
#include "sample/capabilities.h"
#include "sample/reservoir_sample.h"
#include "sketch/flajolet_martin.h"
#include "view/frozen_view.h"
#include "view/view_builders.h"

namespace aqua {
namespace {

void ExpectEstimateEq(const Estimate& a, const Estimate& b) {
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.ci_low, b.ci_low);
  EXPECT_EQ(a.ci_high, b.ci_high);
  EXPECT_EQ(a.confidence, b.confidence);
  EXPECT_EQ(a.sample_points, b.sample_points);
}

/// A uniform-sample-shaped Spec: scale = n / m, β floor, count_where and
/// quantile on.
FrozenView::Spec UniformSpec(std::vector<ValueCount> entries,
                             std::int64_t observed_inserts) {
  FrozenView::Spec spec;
  spec.entries = std::move(entries);
  spec.sample_size = SampleSizeOf(spec.entries);
  spec.observed_inserts = observed_inserts;
  FrozenView::HotListParams hot;
  const auto m = static_cast<double>(spec.sample_size);
  hot.scale = m > 0 ? static_cast<double>(observed_inserts) / m : 0.0;
  spec.hot_list = hot;
  spec.count_where = true;
  spec.quantile = true;
  return spec;
}

TEST(FrozenViewTest, EmptyViewServesEmptyAnswers) {
  const FrozenView view(UniformSpec({}, 0));
  EXPECT_EQ(view.entry_count(), 0);
  EXPECT_EQ(view.sample_size(), 0);
  EXPECT_EQ(view.MomentF(0), 0.0);
  EXPECT_EQ(view.MomentF(1), 0.0);
  EXPECT_EQ(view.MomentF(2), 0.0);

  HotListQuery query;
  query.k = 5;
  EXPECT_TRUE(view.HotListAnswer(query).empty());

  QueryContext ctx;
  const Estimate est =
      view.CountWhereRangeAnswer(ValueRange{0, 100}, 0.95, ctx);
  ExpectEstimateEq(est,
                   SampleEstimator::CountWhereFromHits(0, 0, 0, 0.95));
}

TEST(FrozenViewTest, HotListBetaFloorAndKCut) {
  // Counts 5, 3, 3, 1; scale 2 (n = 24, m = 12).
  const FrozenView view(UniformSpec(
      {{40, 1}, {10, 5}, {30, 3}, {20, 3}}, 24));

  // k = 0: every entry with count >= β.
  HotListQuery all_above_beta;
  all_above_beta.k = 0;
  all_above_beta.beta = 3.0;
  const HotList above = view.HotListAnswer(all_above_beta);
  ASSERT_EQ(above.size(), 3u);
  // Count-descending, value-ascending on ties; estimate = count * 2.
  EXPECT_EQ(above[0].value, 10);
  EXPECT_EQ(above[0].synopsis_count, 5);
  EXPECT_EQ(above[0].estimated_count, 10.0);
  EXPECT_EQ(above[1].value, 20);
  EXPECT_EQ(above[2].value, 30);

  // k = 2 with a vacuous β: the cut is c_2 = 3, and the tie at 3 rides
  // along (same "all pairs with count >= max(floor, c_k)" rule as the
  // per-query reporters).
  HotListQuery top2;
  top2.k = 2;
  top2.beta = 0.0;
  EXPECT_EQ(view.HotListAnswer(top2).size(), 3u);

  // k beyond the entry count clamps to the minimum count: all 4 report.
  HotListQuery topmany;
  topmany.k = 100;
  topmany.beta = 0.0;
  EXPECT_EQ(view.HotListAnswer(topmany).size(), 4u);

  // β above every count: nothing reports.
  HotListQuery high_beta;
  high_beta.k = 0;
  high_beta.beta = 6.0;
  EXPECT_TRUE(view.HotListAnswer(high_beta).empty());
}

TEST(FrozenViewTest, HotListFixedFloorIgnoresBeta) {
  // Counting-sample shape: scale 1, additive compensation, fixed floor.
  FrozenView::Spec spec;
  spec.entries = {{1, 6}, {2, 4}, {3, 2}};
  spec.sample_size = 12;
  spec.observed_inserts = 12;
  FrozenView::HotListParams hot;
  hot.scale = 1.0;
  hot.offset = 1.5;
  hot.floor_is_beta = false;
  hot.fixed_floor = 4.0;
  spec.hot_list = hot;
  const FrozenView view(std::move(spec));

  HotListQuery query;
  query.k = 0;
  query.beta = 100.0;  // must be ignored
  const HotList report = view.HotListAnswer(query);
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].value, 1);
  EXPECT_EQ(report[0].estimated_count, 7.5);
  EXPECT_EQ(report[1].value, 2);
  EXPECT_EQ(report[1].estimated_count, 5.5);
}

TEST(FrozenViewTest, CountWhereRangeMatchesPredicateScan) {
  const FrozenView view(UniformSpec({{10, 2}, {20, 3}, {30, 5}}, 100));
  QueryContext ctx;
  ctx.observed_inserts = 100;

  const std::vector<ValueRange> ranges = {
      {0, 100},    // everything
      {15, 25},    // interior, one entry
      {20, 20},    // single-value inclusive
      {11, 19},    // gap between entries
      {10, 30},    // exact endpoints
      {31, 1000},  // beyond the largest value
  };
  for (const ValueRange& range : ranges) {
    SCOPED_TRACE(testing::Message() << "range [" << range.low << ", "
                                    << range.high << "]");
    ExpectEstimateEq(view.CountWhereRangeAnswer(range, 0.95, ctx),
                     view.CountWhereAnswer(range.AsPredicate(), 0.95, ctx));
  }

  // Everything: 10 of 10 sample points hit.
  ExpectEstimateEq(
      view.CountWhereRangeAnswer(ValueRange{0, 100}, 0.95, ctx),
      SampleEstimator::CountWhereFromHits(10, 10, 100, 0.95));
  // Interior hit on the count-3 entry only.
  ExpectEstimateEq(
      view.CountWhereRangeAnswer(ValueRange{15, 25}, 0.95, ctx),
      SampleEstimator::CountWhereFromHits(3, 10, 100, 0.95));
  // An inverted range has no hits (and must not trip the binary search).
  ExpectEstimateEq(
      view.CountWhereRangeAnswer(ValueRange{25, 15}, 0.95, ctx),
      SampleEstimator::CountWhereFromHits(0, 10, 100, 0.95));
}

TEST(FrozenViewTest, QuantilesMatchExpandedPointSample) {
  const std::vector<ValueCount> entries = {{7, 4}, {3, 1}, {9, 2}, {5, 3}};
  const FrozenView view(UniformSpec(entries, 1000));

  std::vector<Value> points;
  for (const ValueCount& e : entries) {
    points.insert(points.end(), static_cast<std::size_t>(e.count), e.value);
  }
  const QuantileEstimator direct(points);

  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    SCOPED_TRACE(testing::Message() << "q = " << q);
    ExpectEstimateEq(view.QuantileAnswer(q, 0.95),
                     direct.QuantileWithBounds(q, 0.95));
  }
}

TEST(FrozenViewTest, FrequencyLooksUpFrozenCounts) {
  FrozenView::Spec spec;
  spec.entries = {{10, 2}, {20, 3}};
  spec.sample_size = 5;
  // A transparent estimator: surface the synopsis count and confidence so
  // the test can see exactly what the binary search fed it.
  spec.frequency = [](Count count, double confidence) {
    Estimate est;
    est.value = static_cast<double>(count);
    est.confidence = confidence;
    return est;
  };
  const FrozenView view(std::move(spec));

  EXPECT_EQ(view.FrequencyAnswer(10).value, 2.0);
  EXPECT_EQ(view.FrequencyAnswer(20).value, 3.0);
  // Absent values (below, between, above the stored range) report count 0.
  EXPECT_EQ(view.FrequencyAnswer(5).value, 0.0);
  EXPECT_EQ(view.FrequencyAnswer(15).value, 0.0);
  EXPECT_EQ(view.FrequencyAnswer(25).value, 0.0);
  EXPECT_EQ(view.FrequencyAnswer(10, 0.8).confidence, 0.8);
}

TEST(FrozenViewTest, MomentsAndScalarsFreezeTheSnapshot) {
  const FrozenView view(UniformSpec({{1, 2}, {2, 3}, {3, 5}}, 40));
  EXPECT_EQ(view.entry_count(), 3);
  EXPECT_EQ(view.sample_size(), 10);
  EXPECT_EQ(view.observed_inserts(), 40);
  EXPECT_EQ(view.MomentF(0), 3.0);
  EXPECT_EQ(view.MomentF(1), 10.0);
  EXPECT_EQ(view.MomentF(2), 4.0 + 9.0 + 25.0);
}

TEST(FrozenViewTest, BuildersDeclareTheirQueryKinds) {
  ConciseSampleOptions concise_options;
  concise_options.footprint_bound = 64;
  concise_options.seed = 7;
  ConciseSample concise(concise_options);
  CountingSampleOptions counting_options;
  counting_options.footprint_bound = 64;
  counting_options.seed = 8;
  CountingSample counting(counting_options);
  ReservoirSample traditional(64, 9);
  FlajoletMartin sketch(16, 10);
  for (Value v = 0; v < 200; ++v) {
    const Value value = v % 37;
    concise.Insert(value);
    counting.Insert(value);
    traditional.Insert(value);
    sketch.Insert(value);
  }

  const FrozenView concise_view = BuildConciseView(concise);
  EXPECT_TRUE(concise_view.Answers(QueryKind::kHotList));
  EXPECT_TRUE(concise_view.Answers(QueryKind::kFrequency));
  EXPECT_TRUE(concise_view.Answers(QueryKind::kCountWhere));
  EXPECT_TRUE(concise_view.Answers(QueryKind::kQuantile));
  EXPECT_FALSE(concise_view.Answers(QueryKind::kDistinct));
  EXPECT_EQ(concise_view.sample_size(), concise.SampleSize());
  EXPECT_EQ(concise_view.observed_inserts(), concise.ObservedInserts());

  // Not a uniform sample: no count_where/quantile from a counting sample.
  const FrozenView counting_view = BuildCountingView(counting);
  EXPECT_TRUE(counting_view.Answers(QueryKind::kHotList));
  EXPECT_TRUE(counting_view.Answers(QueryKind::kFrequency));
  EXPECT_FALSE(counting_view.Answers(QueryKind::kCountWhere));
  EXPECT_FALSE(counting_view.Answers(QueryKind::kQuantile));

  // No per-value counts worth trusting from a traditional sample's
  // duplicates — frequency stays on the live path.
  const FrozenView traditional_view = BuildTraditionalView(traditional);
  EXPECT_TRUE(traditional_view.Answers(QueryKind::kHotList));
  EXPECT_FALSE(traditional_view.Answers(QueryKind::kFrequency));
  EXPECT_TRUE(traditional_view.Answers(QueryKind::kCountWhere));
  EXPECT_TRUE(traditional_view.Answers(QueryKind::kQuantile));
  EXPECT_EQ(traditional_view.sample_size(), traditional.SampleSize());

  const FrozenView sketch_view = BuildDistinctSketchView(sketch);
  EXPECT_TRUE(sketch_view.Answers(QueryKind::kDistinct));
  EXPECT_FALSE(sketch_view.Answers(QueryKind::kHotList));
  ExpectEstimateEq(sketch_view.DistinctAnswer(), FmDistinctEstimate(sketch));
}

}  // namespace
}  // namespace aqua
