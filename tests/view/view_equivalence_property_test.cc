// Bit-identical equivalence between the epoch-frozen view and the direct
// per-query answer paths, for every built-in synopsis, across the sweep
// seeds.  This is the contract that lets TypedAnswerSource route a query
// to whichever path is live without changing a single answered bit: the
// view stores estimator *parameters* and calls the same shared arithmetic
// the per-query paths call, so every Estimate field and every HotList
// item must compare exactly equal (==, not near).
//
// Unlike the statistical sweeps, equality is structural: it must hold on
// every seed, so the checks are hard per-seed assertions with no failure
// budget.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "estimate/aggregates.h"
#include "registry/builtin.h"
#include "sample/capabilities.h"
#include "sample/reservoir_sample.h"
#include "sketch/flajolet_martin.h"
#include "property/seed_sweep.h"
#include "view/frozen_view.h"
#include "workload/generators.h"

namespace aqua {
namespace {

constexpr std::int64_t kStreamLength = 20000;
constexpr std::int64_t kDomain = 2000;
constexpr Words kFootprint = 512;

void ExpectEstimateEq(const Estimate& direct, const Estimate& view) {
  EXPECT_EQ(direct.value, view.value);
  EXPECT_EQ(direct.ci_low, view.ci_low);
  EXPECT_EQ(direct.ci_high, view.ci_high);
  EXPECT_EQ(direct.confidence, view.confidence);
  EXPECT_EQ(direct.sample_points, view.sample_points);
}

void ExpectHotListEq(const HotList& direct, const HotList& view) {
  ASSERT_EQ(direct.size(), view.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "item " << i);
    EXPECT_EQ(direct[i].value, view[i].value);
    EXPECT_EQ(direct[i].estimated_count, view[i].estimated_count);
    EXPECT_EQ(direct[i].synopsis_count, view[i].synopsis_count);
  }
}

std::vector<HotListQuery> HotListQueries() {
  std::vector<HotListQuery> queries;
  for (const std::int64_t k : {0, 1, 5, 50, 100000}) {
    for (const double beta : {1.0, 3.0}) {
      HotListQuery query;
      query.k = k;
      query.beta = beta;
      queries.push_back(query);
    }
  }
  return queries;
}

/// Hot-list equivalence over every query shape, for any synopsis whose
/// descriptor declares the kind.
template <typename S>
void CheckHotLists(const SynopsisDescriptor<S>& descriptor, const S& sample,
                   const FrozenView& view, const QueryContext& ctx) {
  ASSERT_TRUE(view.Answers(QueryKind::kHotList));
  for (const HotListQuery& query : HotListQueries()) {
    SCOPED_TRACE(testing::Message()
                 << "hot list k=" << query.k << " beta=" << query.beta);
    ExpectHotListEq(descriptor.answers.hot_list(sample, query, ctx),
                    view.HotListAnswer(query));
  }
}

/// Frequency equivalence over present values (the stream's head) and
/// absent ones (outside the domain).
template <typename S>
void CheckFrequencies(const SynopsisDescriptor<S>& descriptor,
                      const S& sample, const FrozenView& view,
                      const std::vector<Value>& stream,
                      const QueryContext& ctx) {
  ASSERT_TRUE(view.Answers(QueryKind::kFrequency));
  std::vector<Value> probes(stream.begin(), stream.begin() + 32);
  probes.push_back(kDomain + 17);  // never inserted
  probes.push_back(-5);
  for (const Value value : probes) {
    SCOPED_TRACE(testing::Message() << "frequency of " << value);
    ExpectEstimateEq(descriptor.answers.frequency(sample, value, ctx),
                     view.FrequencyAnswer(value));
  }
}

/// count_where equivalence: the direct predicate scan vs both view paths
/// (the O(log m) range form and the folded-entry predicate fallback).
template <typename S>
void CheckCountWhere(const SynopsisDescriptor<S>& descriptor,
                     const S& sample, const FrozenView& view,
                     const QueryContext& ctx) {
  ASSERT_TRUE(view.Answers(QueryKind::kCountWhere));
  const std::vector<ValueRange> ranges = {{1, kDomain},
                                          {kDomain / 4, kDomain / 2},
                                          {1, 1},
                                          {kDomain + 1, kDomain + 100}};
  for (const ValueRange& range : ranges) {
    SCOPED_TRACE(testing::Message() << "count_where [" << range.low << ", "
                                    << range.high << "]");
    const Estimate direct = descriptor.answers.count_where(
        sample, range.AsPredicate(), 0.95, ctx);
    ExpectEstimateEq(direct, view.CountWhereRangeAnswer(range, 0.95, ctx));
    ExpectEstimateEq(direct,
                     view.CountWhereAnswer(range.AsPredicate(), 0.95, ctx));
  }
}

template <typename S>
void CheckQuantiles(const SynopsisDescriptor<S>& descriptor, const S& sample,
                    const FrozenView& view, const QueryContext& ctx) {
  ASSERT_TRUE(view.Answers(QueryKind::kQuantile));
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    SCOPED_TRACE(testing::Message() << "quantile q=" << q);
    ExpectEstimateEq(descriptor.answers.quantile(sample, q, 0.95, ctx),
                     view.QuantileAnswer(q, 0.95));
  }
}

template <typename S>
S BuildFromStream(const SynopsisDescriptor<S>& descriptor,
                  const std::vector<Value>& stream, std::uint64_t seed) {
  S sample = descriptor.factory(seed);
  for (const Value v : stream) sample.Insert(v);
  return sample;
}

TEST(ViewEquivalenceProperty, ConciseSampleAllKindsMatchExactly) {
  RunSeedSweep([](std::uint64_t seed) {
    SCOPED_TRACE(testing::Message() << "seed 0x" << std::hex << seed);
    const SynopsisDescriptor<ConciseSample> descriptor =
        ConciseSampleDescriptor(kFootprint);
    const std::vector<Value> stream =
        ZipfValues(kStreamLength, kDomain, 1.0, seed);
    const ConciseSample sample = BuildFromStream(descriptor, stream, seed);
    const FrozenView view = descriptor.view_builder(sample);
    QueryContext ctx;
    ctx.observed_inserts = sample.ObservedInserts();

    CheckHotLists(descriptor, sample, view, ctx);
    CheckFrequencies(descriptor, sample, view, stream, ctx);
    CheckCountWhere(descriptor, sample, view, ctx);
    CheckQuantiles(descriptor, sample, view, ctx);
    return !testing::Test::HasFailure();
  });
}

TEST(ViewEquivalenceProperty, CountingSampleHotListAndFrequencyMatch) {
  RunSeedSweep([](std::uint64_t seed) {
    SCOPED_TRACE(testing::Message() << "seed 0x" << std::hex << seed);
    const SynopsisDescriptor<CountingSample> descriptor =
        CountingSampleDescriptor(kFootprint);
    const std::vector<Value> stream =
        ZipfValues(kStreamLength, kDomain, 1.5, seed);
    const CountingSample sample = BuildFromStream(descriptor, stream, seed);
    const FrozenView view = descriptor.view_builder(sample);
    QueryContext ctx;
    ctx.observed_inserts = sample.ObservedInserts();

    CheckHotLists(descriptor, sample, view, ctx);
    CheckFrequencies(descriptor, sample, view, stream, ctx);
    EXPECT_FALSE(view.Answers(QueryKind::kCountWhere));
    EXPECT_FALSE(view.Answers(QueryKind::kQuantile));
    return !testing::Test::HasFailure();
  });
}

TEST(ViewEquivalenceProperty, TraditionalSampleFoldedEntriesMatch) {
  RunSeedSweep([](std::uint64_t seed) {
    SCOPED_TRACE(testing::Message() << "seed 0x" << std::hex << seed);
    const SynopsisDescriptor<ReservoirSample> descriptor =
        TraditionalSampleDescriptor(kFootprint);
    const std::vector<Value> stream =
        ZipfValues(kStreamLength, kDomain, 1.0, seed);
    const ReservoirSample sample = BuildFromStream(descriptor, stream, seed);
    const FrozenView view = descriptor.view_builder(sample);
    QueryContext ctx;
    ctx.observed_inserts = sample.ObservedInserts();

    CheckHotLists(descriptor, sample, view, ctx);
    CheckCountWhere(descriptor, sample, view, ctx);
    CheckQuantiles(descriptor, sample, view, ctx);
    EXPECT_FALSE(view.Answers(QueryKind::kFrequency));
    return !testing::Test::HasFailure();
  });
}

TEST(ViewEquivalenceProperty, DistinctSketchPrecomputedEstimateMatches) {
  RunSeedSweep([](std::uint64_t seed) {
    SCOPED_TRACE(testing::Message() << "seed 0x" << std::hex << seed);
    const SynopsisDescriptor<FlajoletMartin> descriptor =
        DistinctSketchDescriptor(kDefaultSketchMaps);
    const std::vector<Value> stream =
        ZipfValues(kStreamLength, kDomain, 0.5, seed);
    const FlajoletMartin sketch = BuildFromStream(descriptor, stream, seed);
    const FrozenView view = descriptor.view_builder(sketch);
    QueryContext ctx;

    EXPECT_TRUE(view.Answers(QueryKind::kDistinct));
    ExpectEstimateEq(descriptor.answers.distinct(sketch, ctx),
                     view.DistinctAnswer());
    return !testing::Test::HasFailure();
  });
}

}  // namespace
}  // namespace aqua
