#include "sketch/morris_counter.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(MorrisCounterTest, StartsAtZero) {
  MorrisCounter counter(2.0, 1);
  EXPECT_DOUBLE_EQ(counter.Estimate(), 0.0);
  EXPECT_EQ(counter.exponent(), 0u);
}

TEST(MorrisCounterTest, FirstIncrementIsExact) {
  MorrisCounter counter(2.0, 2);
  counter.Increment();
  // With exponent 0 the increment succeeds with probability 1.
  EXPECT_EQ(counter.exponent(), 1u);
  EXPECT_DOUBLE_EQ(counter.Estimate(), 1.0);
}

TEST(MorrisCounterTest, EstimateIsUnbiasedOnAverage) {
  constexpr int kEvents = 10000;
  constexpr int kTrials = 300;
  double mean = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    MorrisCounter counter(2.0, 100 + static_cast<std::uint64_t>(t));
    for (int i = 0; i < kEvents; ++i) counter.Increment();
    mean += counter.Estimate();
  }
  mean /= kTrials;
  // Base 2: std ≈ n/sqrt(2); mean of 300 trials has σ ≈ n/24.
  EXPECT_NEAR(mean, kEvents, kEvents * 0.2);
}

TEST(MorrisCounterTest, SmallerBaseIsMoreAccurate) {
  constexpr int kEvents = 10000;
  constexpr int kTrials = 150;
  auto mse = [&](double base, std::uint64_t salt) {
    double total = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      MorrisCounter counter(base, salt + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kEvents; ++i) counter.Increment();
      const double err = counter.Estimate() - kEvents;
      total += err * err;
    }
    return total / kTrials;
  };
  EXPECT_LT(mse(1.1, 1000), mse(2.0, 2000));
}

TEST(MorrisCounterTest, ExponentGrowsLogarithmically) {
  MorrisCounter counter(2.0, 3);
  for (int i = 0; i < 1 << 16; ++i) counter.Increment();
  // Exponent ~ log2(n) = 16; far below n (the whole point: lg lg n bits).
  EXPECT_LT(counter.exponent(), 26u);
  EXPECT_GT(counter.exponent(), 8u);
}

}  // namespace
}  // namespace aqua
