#include "sketch/flajolet_martin.h"

#include <gtest/gtest.h>

#include "workload/generators.h"

namespace aqua {
namespace {

TEST(FlajoletMartinTest, EmptyEstimatesNearOne) {
  FlajoletMartin fm(64, 1);
  EXPECT_LT(fm.Estimate(), 2.0);
}

TEST(FlajoletMartinTest, InsertIsIdempotentPerValue) {
  FlajoletMartin fm(64, 2);
  for (int i = 0; i < 1000; ++i) fm.Insert(42);
  // One distinct value: estimate stays small regardless of multiplicity.
  EXPECT_LT(fm.Estimate(), 8.0);
}

TEST(FlajoletMartinTest, EstimateWithinSmallFactorOfTruth) {
  for (std::int64_t d : {100, 1000, 10000}) {
    FlajoletMartin fm(64, 3);
    for (Value v = 1; v <= d; ++v) fm.Insert(v);
    const double est = fm.Estimate();
    EXPECT_GT(est, static_cast<double>(d) / 2.0) << "d=" << d;
    EXPECT_LT(est, static_cast<double>(d) * 2.0) << "d=" << d;
  }
}

TEST(FlajoletMartinTest, SkewDoesNotAffectDistinctCount) {
  // 500K zipf-2 inserts over domain 1000 touch nearly every value many
  // times; the estimate tracks distinct values, not stream length.
  FlajoletMartin fm(64, 4);
  std::int64_t distinct_upper = 0;
  std::vector<bool> seen(5001, false);
  for (Value v : ZipfValues(200000, 5000, 2.0, 5)) {
    fm.Insert(v);
    if (!seen[static_cast<std::size_t>(v)]) {
      seen[static_cast<std::size_t>(v)] = true;
      ++distinct_upper;
    }
  }
  const double est = fm.Estimate();
  EXPECT_GT(est, static_cast<double>(distinct_upper) / 2.5);
  EXPECT_LT(est, static_cast<double>(distinct_upper) * 2.5);
}

TEST(FlajoletMartinTest, MoreMapsReduceVariance) {
  constexpr std::int64_t kD = 2000;
  constexpr int kTrials = 30;
  auto mse = [&](int maps) {
    double total = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      FlajoletMartin fm(maps, 100 + static_cast<std::uint64_t>(t));
      for (Value v = 1; v <= kD; ++v) fm.Insert(v);
      const double rel = fm.Estimate() / kD - 1.0;
      total += rel * rel;
    }
    return total / kTrials;
  };
  EXPECT_LT(mse(128), mse(4) + 0.05);
}

}  // namespace
}  // namespace aqua
