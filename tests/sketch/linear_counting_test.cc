#include "sketch/linear_counting.h"

#include <gtest/gtest.h>

#include "workload/generators.h"

namespace aqua {
namespace {

TEST(LinearCountingTest, EmptyEstimatesZero) {
  LinearCounting lc(1024);
  EXPECT_DOUBLE_EQ(lc.Estimate(), 0.0);
  EXPECT_EQ(lc.ZeroBits(), 1024);
}

TEST(LinearCountingTest, DuplicatesDoNotInflate) {
  LinearCounting lc(1024);
  for (int i = 0; i < 100000; ++i) lc.Insert(7);
  EXPECT_LT(lc.Estimate(), 2.0);
}

TEST(LinearCountingTest, AccurateAtModerateLoad) {
  for (std::int64_t d : {100, 1000, 5000}) {
    LinearCounting lc(16384);
    for (Value v = 1; v <= d; ++v) lc.Insert(v);
    EXPECT_NEAR(lc.Estimate(), static_cast<double>(d),
                0.05 * static_cast<double>(d) + 10.0)
        << "d=" << d;
  }
}

TEST(LinearCountingTest, SkewInvariant) {
  // 200K zipf-1.5 inserts over 2000 values: distinct count is what matters.
  LinearCounting lc(16384);
  std::vector<bool> seen(2001, false);
  std::int64_t distinct = 0;
  for (Value v : ZipfValues(200000, 2000, 1.5, 1)) {
    lc.Insert(v);
    if (!seen[static_cast<std::size_t>(v)]) {
      seen[static_cast<std::size_t>(v)] = true;
      ++distinct;
    }
  }
  EXPECT_NEAR(lc.Estimate(), static_cast<double>(distinct),
              0.1 * static_cast<double>(distinct));
}

TEST(LinearCountingTest, SaturationReturnsFiniteAnswer) {
  LinearCounting lc(64);
  for (Value v = 0; v < 100000; ++v) lc.Insert(v);
  EXPECT_EQ(lc.ZeroBits(), 0);
  EXPECT_GT(lc.Estimate(), 64.0);
  EXPECT_TRUE(std::isfinite(lc.Estimate()));
}

TEST(LinearCountingTest, MoreAccurateThanFmAtLowCardinality) {
  // Linear counting's niche [WVZT90]: small D relative to the bitmap.
  constexpr std::int64_t kD = 500;
  LinearCounting lc(8192);
  for (Value v = 1; v <= kD; ++v) lc.Insert(v);
  const double rel_err = std::abs(lc.Estimate() - kD) / kD;
  EXPECT_LT(rel_err, 0.05);
}

}  // namespace
}  // namespace aqua
