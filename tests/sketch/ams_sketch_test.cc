#include "sketch/ams_sketch.h"

#include <gtest/gtest.h>

#include "estimate/frequency_moments.h"
#include "workload/generators.h"

namespace aqua {
namespace {

TEST(AmsSketchTest, EmptyEstimatesZero) {
  AmsSketch sketch(5, 64, 1);
  EXPECT_DOUBLE_EQ(sketch.EstimateF2(), 0.0);
}

TEST(AmsSketchTest, SingleValueF2IsCountSquared) {
  AmsSketch sketch(5, 64, 2);
  for (int i = 0; i < 100; ++i) sketch.Insert(7);
  EXPECT_NEAR(sketch.EstimateF2(), 10000.0, 1.0);
}

TEST(AmsSketchTest, EstimateCloseToExactF2) {
  const std::vector<Value> data = ZipfValues(100000, 2000, 1.0, 3);
  const double exact = FrequencyMoments::FromData(data).Moment(2);
  AmsSketch sketch(7, 256, 4);
  for (Value v : data) sketch.Insert(v);
  EXPECT_NEAR(sketch.EstimateF2(), exact, 0.25 * exact);
}

TEST(AmsSketchTest, DeletionsCancelInsertions) {
  AmsSketch sketch(5, 64, 5);
  for (Value v = 0; v < 500; ++v) sketch.Insert(v);
  for (Value v = 0; v < 500; ++v) sketch.Delete(v);
  EXPECT_DOUBLE_EQ(sketch.EstimateF2(), 0.0);
}

TEST(AmsSketchTest, TurnstileStreamMatchesNetFrequencies) {
  // Insert twice / delete once per value → net frequency 1 each, F2 = D.
  constexpr std::int64_t kD = 400;
  AmsSketch sketch(7, 256, 6);
  for (Value v = 0; v < kD; ++v) {
    sketch.Insert(v);
    sketch.Insert(v);
    sketch.Delete(v);
  }
  EXPECT_NEAR(sketch.EstimateF2(), static_cast<double>(kD),
              0.35 * static_cast<double>(kD));
}

TEST(AmsSketchTest, WiderSketchIsMoreAccurate) {
  const std::vector<Value> data = ZipfValues(50000, 1000, 1.25, 7);
  const double exact = FrequencyMoments::FromData(data).Moment(2);
  constexpr int kTrials = 15;
  auto mse = [&](int width) {
    double total = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      AmsSketch sketch(5, width, 100 + static_cast<std::uint64_t>(t));
      for (Value v : data) sketch.Insert(v);
      const double rel = sketch.EstimateF2() / exact - 1.0;
      total += rel * rel;
    }
    return total / kTrials;
  };
  EXPECT_LT(mse(512), mse(8) + 1e-4);
}

}  // namespace
}  // namespace aqua
