#include "random/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace aqua {
namespace {

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomTest, NextDoublePositiveNeverZero) {
  Random rng(2);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.NextDoublePositive(), 0.0);
    EXPECT_LE(rng.NextDoublePositive(), 1.0);
  }
}

TEST(RandomTest, UniformU64StaysInBounds) {
  Random rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.UniformU64(bound), bound);
  }
}

TEST(RandomTest, UniformU64IsRoughlyUniform) {
  Random rng(4);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> histogram(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.UniformU64(kBuckets)];
  // Chi-square with 9 dof: 99.99th percentile ≈ 33.7.
  double chi2 = 0.0;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : histogram) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 35.0);
}

TEST(RandomTest, UniformIntCoversInclusiveRange) {
  Random rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, BernoulliDegenerateCases) {
  Random rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-1.0));
    EXPECT_TRUE(rng.Bernoulli(2.0));
  }
}

TEST(RandomTest, BernoulliMatchesProbability) {
  Random rng(7);
  constexpr int kDraws = 200000;
  int heads = 0;
  for (int i = 0; i < kDraws; ++i) heads += rng.Bernoulli(0.3);
  const double p_hat = static_cast<double>(heads) / kDraws;
  EXPECT_NEAR(p_hat, 0.3, 0.01);
}

TEST(RandomTest, GeometricMeanMatchesTheory) {
  Random rng(8);
  // E[failures before success] = (1-p)/p.
  for (double p : {0.5, 0.1, 0.01}) {
    constexpr int kDraws = 50000;
    double sum = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      sum += static_cast<double>(rng.Geometric(p));
    }
    const double mean = sum / kDraws;
    const double expected = (1.0 - p) / p;
    EXPECT_NEAR(mean, expected, expected * 0.1 + 0.05) << "p=" << p;
  }
}

TEST(RandomTest, GeometricWithProbabilityOneIsZero) {
  Random rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Geometric(1.0), 0);
}

TEST(RandomTest, BinomialDegenerateCases) {
  Random rng(10);
  EXPECT_EQ(rng.Binomial(0, 0.5), 0);
  EXPECT_EQ(rng.Binomial(100, 0.0), 0);
  EXPECT_EQ(rng.Binomial(100, 1.0), 100);
}

TEST(RandomTest, BinomialStaysInRange) {
  Random rng(11);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t x = rng.Binomial(20, 0.37);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 20);
  }
}

TEST(RandomTest, BinomialMeanAndVarianceMatchTheory) {
  Random rng(12);
  // Both a small-p and a reflected large-p case.
  struct Case {
    std::int64_t n;
    double p;
  };
  for (const Case& c : {Case{50, 0.1}, Case{50, 0.9}, Case{200, 0.5}}) {
    constexpr int kDraws = 40000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < kDraws; ++i) {
      const auto x = static_cast<double>(rng.Binomial(c.n, c.p));
      sum += x;
      sum_sq += x * x;
    }
    const double mean = sum / kDraws;
    const double var = sum_sq / kDraws - mean * mean;
    const double expected_mean = static_cast<double>(c.n) * c.p;
    const double expected_var = expected_mean * (1.0 - c.p);
    EXPECT_NEAR(mean, expected_mean, 0.05 * expected_mean + 0.1)
        << "n=" << c.n << " p=" << c.p;
    EXPECT_NEAR(var, expected_var, 0.15 * expected_var + 0.2)
        << "n=" << c.n << " p=" << c.p;
  }
}

TEST(RandomTest, BinomialMatchesExactPmfChiSquare) {
  // Chi-square goodness of fit against the exact Binomial(8, 0.3) pmf.
  Random rng(18);
  constexpr std::int64_t kN = 8;
  constexpr double kP = 0.3;
  constexpr int kDraws = 100000;
  std::vector<int> histogram(kN + 1, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++histogram[static_cast<std::size_t>(rng.Binomial(kN, kP))];
  }
  // pmf via the recurrence p(k+1) = p(k) (n-k)/(k+1) p/(1-p).
  std::vector<double> pmf(kN + 1);
  pmf[0] = std::pow(1.0 - kP, static_cast<double>(kN));
  for (std::int64_t k = 0; k < kN; ++k) {
    pmf[static_cast<std::size_t>(k + 1)] =
        pmf[static_cast<std::size_t>(k)] *
        static_cast<double>(kN - k) / static_cast<double>(k + 1) * kP /
        (1.0 - kP);
  }
  double chi2 = 0.0;
  for (std::size_t k = 0; k <= kN; ++k) {
    const double expected = pmf[k] * kDraws;
    const double diff = histogram[k] - expected;
    chi2 += diff * diff / expected;
  }
  // 8 dof: 99.99th percentile ≈ 31.8.
  EXPECT_LT(chi2, 33.0);
}

TEST(RandomTest, GeometricMatchesExactPmfChiSquare) {
  Random rng(19);
  constexpr double kP = 0.25;
  constexpr int kDraws = 100000;
  constexpr int kBuckets = 12;  // 0..10 plus tail
  std::vector<int> histogram(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    const std::int64_t g = rng.Geometric(kP);
    ++histogram[static_cast<std::size_t>(std::min<std::int64_t>(
        g, kBuckets - 1))];
  }
  double chi2 = 0.0;
  double tail = 1.0;
  for (int k = 0; k < kBuckets - 1; ++k) {
    const double p = std::pow(1.0 - kP, k) * kP;
    tail -= p;
    const double expected = p * kDraws;
    const double diff = histogram[static_cast<std::size_t>(k)] - expected;
    chi2 += diff * diff / expected;
  }
  const double expected_tail = tail * kDraws;
  const double diff = histogram[kBuckets - 1] - expected_tail;
  chi2 += diff * diff / expected_tail;
  // 11 dof: 99.99th percentile ≈ 37.4.
  EXPECT_LT(chi2, 39.0);
}

TEST(RandomTest, NormalMomentsMatchStandard) {
  Random rng(13);
  constexpr int kDraws = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(RandomTest, ExponentialMeanIsOne) {
  Random rng(14);
  constexpr int kDraws = 100000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) sum += rng.Exponential();
  EXPECT_NEAR(sum / kDraws, 1.0, 0.02);
}

TEST(RandomTest, FlipCountingCountsLogicalDraws) {
  Random rng(15);
  rng.ResetFlipCount();
  rng.NextU64();
  rng.NextDouble();
  rng.UniformU64(10);
  rng.Bernoulli(0.5);
  rng.Geometric(0.5);
  EXPECT_EQ(rng.FlipCount(), 5);
  // Degenerate Bernoulli consumes no randomness.
  rng.Bernoulli(0.0);
  rng.Bernoulli(1.0);
  EXPECT_EQ(rng.FlipCount(), 5);
}

TEST(RandomTest, BinomialFlipCountIsProportionalToRareOutcome) {
  Random rng(16);
  rng.ResetFlipCount();
  // p = 0.9 keep: rare outcome rate 0.1, so ~n*0.1 + 1 draws per call.
  constexpr int kCalls = 1000;
  for (int i = 0; i < kCalls; ++i) rng.Binomial(100, 0.9);
  const double flips_per_call =
      static_cast<double>(rng.FlipCount()) / kCalls;
  EXPECT_LT(flips_per_call, 20.0);
  EXPECT_GT(flips_per_call, 5.0);
}

TEST(RandomTest, ForkProducesDistinctStreams) {
  Random parent(17);
  Random a(parent.Fork());
  Random b(parent.Fork());
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace aqua
