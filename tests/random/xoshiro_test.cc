#include "random/xoshiro256.h"

#include <gtest/gtest.h>

#include <set>

namespace aqua {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 123, s2 = 123;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SplitMix64Next(s1), SplitMix64Next(s2));
  }
}

TEST(SplitMix64Test, AdvancesState) {
  std::uint64_t s = 0;
  const std::uint64_t a = SplitMix64Next(s);
  const std::uint64_t b = SplitMix64Next(s);
  EXPECT_NE(a, b);
}

TEST(Xoshiro256Test, DeterministicForFixedSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256Test, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256Test, OutputLooksFullRange) {
  Xoshiro256 rng(7);
  bool high_bit = false, low_bit = false;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t x = rng();
    high_bit |= (x >> 63) & 1;
    low_bit |= x & 1;
  }
  EXPECT_TRUE(high_bit);
  EXPECT_TRUE(low_bit);
}

TEST(Xoshiro256Test, JumpYieldsDisjointStream) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  b.Jump();
  std::set<std::uint64_t> first;
  for (int i = 0; i < 1000; ++i) first.insert(a());
  int overlap = 0;
  for (int i = 0; i < 1000; ++i) {
    if (first.count(b())) ++overlap;
  }
  EXPECT_EQ(overlap, 0);
}

TEST(Xoshiro256Test, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~std::uint64_t{0});
  Xoshiro256 rng(5);
  EXPECT_GE(rng(), Xoshiro256::min());
}

}  // namespace
}  // namespace aqua
