#include "random/skip_sampler.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(SkipSamplerTest, ProbabilityOneSelectsEverythingWithNoDraws) {
  Random rng(1);
  SkipSampler sampler(rng, 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(sampler.ShouldSelect(rng));
  EXPECT_EQ(sampler.DrawCount(), 0);
}

TEST(SkipSamplerTest, SelectionRateMatchesProbability) {
  Random rng(2);
  for (double p : {0.5, 0.1, 0.01}) {
    SkipSampler sampler(rng, p);
    constexpr int kEvents = 200000;
    int selected = 0;
    for (int i = 0; i < kEvents; ++i) selected += sampler.ShouldSelect(rng);
    const double rate = static_cast<double>(selected) / kEvents;
    EXPECT_NEAR(rate, p, 0.15 * p + 0.001) << "p=" << p;
  }
}

TEST(SkipSamplerTest, OneDrawPerSelection) {
  Random rng(3);
  SkipSampler sampler(rng, 0.01);
  constexpr int kEvents = 100000;
  int selected = 0;
  const std::int64_t draws_before = sampler.DrawCount();
  for (int i = 0; i < kEvents; ++i) selected += sampler.ShouldSelect(rng);
  const std::int64_t draws = sampler.DrawCount() - draws_before;
  // One redraw per selection (the constructor's initial draw is already in
  // draws_before).  The economization of §3.1: draws << events.
  EXPECT_EQ(draws, selected);
  EXPECT_LT(draws, kEvents / 50);
}

TEST(SkipSamplerTest, ResetRedrawsPendingSkip) {
  Random rng(4);
  SkipSampler sampler(rng, 0.001);
  sampler.Reset(rng, 1.0);
  EXPECT_TRUE(sampler.ShouldSelect(rng));
  EXPECT_DOUBLE_EQ(sampler.probability(), 1.0);
}

TEST(SkipSamplerTest, MovableWithoutDanglingState) {
  // The sampler holds no engine reference, so moving the pair of (engine,
  // sampler) — as synopses returned by value do — must keep working.
  Random rng(5);
  SkipSampler original(rng, 0.5);
  SkipSampler moved = std::move(original);
  int selected = 0;
  for (int i = 0; i < 1000; ++i) selected += moved.ShouldSelect(rng);
  EXPECT_GT(selected, 300);
  EXPECT_LT(selected, 700);
}

TEST(SkipSamplerTest, MatchesPerEventBernoulliDistribution) {
  // The skip process and a per-event Bernoulli process must produce
  // statistically identical selection streams; compare selection totals.
  Random rng_skip(5), rng_flip(6);
  const double p = 0.05;
  SkipSampler sampler(rng_skip, p);
  constexpr int kEvents = 400000;
  std::int64_t skip_selected = 0, flip_selected = 0;
  for (int i = 0; i < kEvents; ++i) {
    skip_selected += sampler.ShouldSelect(rng_skip);
    flip_selected += rng_flip.Bernoulli(p);
  }
  const double diff =
      std::abs(static_cast<double>(skip_selected - flip_selected));
  // Two binomial(kEvents, p) draws differ by O(sqrt(kEvents p)).
  EXPECT_LT(diff, 6.0 * std::sqrt(kEvents * p));
}

TEST(SkipSamplerTest, SkipAheadMatchesRepeatedShouldSelect) {
  // Jumping the countdown in one O(1) step must be indistinguishable from
  // decrementing it event by event (the batched-ingestion fast path).
  Random rng_step(7), rng_jump(7);
  SkipSampler stepped(rng_step, 0.02);
  SkipSampler jumped(rng_jump, 0.02);
  for (int round = 0; round < 200; ++round) {
    const std::int64_t pending = jumped.PendingSkip();
    EXPECT_EQ(pending, stepped.PendingSkip());
    // Per-event path: `pending` rejections, then one selection.
    for (std::int64_t i = 0; i < pending; ++i) {
      EXPECT_FALSE(stepped.ShouldSelect(rng_step));
    }
    EXPECT_TRUE(stepped.ShouldSelect(rng_step));
    // Batched path: one jump, then the same selection draw.
    jumped.SkipAhead(pending);
    EXPECT_EQ(jumped.PendingSkip(), 0);
    EXPECT_TRUE(jumped.ShouldSelect(rng_jump));
    EXPECT_EQ(jumped.DrawCount(), stepped.DrawCount());
  }
}

TEST(SkipSamplerTest, PartialSkipAheadLeavesRemainder) {
  Random rng(8);
  SkipSampler sampler(rng, 0.001);  // skips are long at p = 0.001
  const std::int64_t pending = sampler.PendingSkip();
  ASSERT_GT(pending, 1);
  sampler.SkipAhead(pending / 2);
  EXPECT_EQ(sampler.PendingSkip(), pending - pending / 2);
  sampler.SkipAhead(0);  // no-op
  EXPECT_EQ(sampler.PendingSkip(), pending - pending / 2);
}

}  // namespace
}  // namespace aqua
