#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "random/discrete_distribution.h"
#include "random/exponential_values.h"
#include "random/random.h"
#include "random/zipf.h"

namespace aqua {
namespace {

TEST(DiscreteDistributionTest, NormalizesWeights) {
  DiscreteDistribution d({1.0, 3.0, 6.0});
  EXPECT_NEAR(d.ProbabilityOf(0), 0.1, 1e-12);
  EXPECT_NEAR(d.ProbabilityOf(1), 0.3, 1e-12);
  EXPECT_NEAR(d.ProbabilityOf(2), 0.6, 1e-12);
}

TEST(DiscreteDistributionTest, SingleOutcome) {
  DiscreteDistribution d({5.0});
  Random rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.Sample(rng), 0u);
}

TEST(DiscreteDistributionTest, ZeroWeightNeverSampled) {
  DiscreteDistribution d({1.0, 0.0, 1.0});
  Random rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(d.Sample(rng), 1u);
}

TEST(DiscreteDistributionTest, EmpiricalMatchesPmf) {
  const std::vector<double> weights = {10, 1, 5, 0.5, 20, 2, 7, 0.1};
  DiscreteDistribution d(weights);
  Random rng(3);
  constexpr int kDraws = 400000;
  std::vector<int> histogram(weights.size(), 0);
  for (int i = 0; i < kDraws; ++i) ++histogram[d.Sample(rng)];
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double p_hat = static_cast<double>(histogram[i]) / kDraws;
    const double p = d.ProbabilityOf(i);
    EXPECT_NEAR(p_hat, p, 4.0 * std::sqrt(p * (1 - p) / kDraws) + 1e-4)
        << "outcome " << i;
  }
}

TEST(ZipfTest, PmfSumsToOneAndIsMonotone) {
  for (double alpha : {0.0, 0.5, 1.0, 2.0, 3.0}) {
    const std::vector<double> pmf = ZipfDistribution::Pmf(1000, alpha);
    const double total = std::accumulate(pmf.begin(), pmf.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9) << "alpha=" << alpha;
    for (std::size_t i = 1; i < pmf.size(); ++i) {
      EXPECT_LE(pmf[i], pmf[i - 1] + 1e-15) << "alpha=" << alpha;
    }
  }
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  const std::vector<double> pmf = ZipfDistribution::Pmf(100, 0.0);
  for (double p : pmf) EXPECT_NEAR(p, 0.01, 1e-12);
}

TEST(ZipfTest, PmfFollowsPowerLaw) {
  const double alpha = 1.5;
  ZipfDistribution zipf(500, alpha);
  // p_i / p_j should equal (j/i)^alpha.
  const double ratio = zipf.ProbabilityOf(2) / zipf.ProbabilityOf(8);
  EXPECT_NEAR(ratio, std::pow(4.0, alpha), 1e-9);
}

TEST(ZipfTest, SamplesStayInDomain) {
  ZipfDistribution zipf(50, 1.0);
  Random rng(4);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = zipf.Sample(rng);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 50);
  }
}

TEST(ZipfTest, EmpiricalHeadFrequencyMatches) {
  ZipfDistribution zipf(1000, 1.0);
  Random rng(5);
  constexpr int kDraws = 200000;
  int ones = 0;
  for (int i = 0; i < kDraws; ++i) ones += (zipf.Sample(rng) == 1);
  const double p1 = zipf.ProbabilityOf(1);
  EXPECT_NEAR(static_cast<double>(ones) / kDraws, p1, 0.01);
}

TEST(ExponentialValuesTest, PmfIsNormalized) {
  ExponentialValueDistribution dist(1.5);
  double total = 0.0;
  for (std::int64_t i = 1; i <= 200; ++i) total += dist.ProbabilityOf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ExponentialValuesTest, EmpiricalMatchesPmf) {
  ExponentialValueDistribution dist(2.0);  // P(1)=1/2, P(2)=1/4, …
  Random rng(6);
  constexpr int kDraws = 200000;
  std::int64_t ones = 0, twos = 0;
  for (int i = 0; i < kDraws; ++i) {
    const std::int64_t v = dist.Sample(rng);
    EXPECT_GE(v, 1);
    ones += (v == 1);
    twos += (v == 2);
  }
  EXPECT_NEAR(static_cast<double>(ones) / kDraws, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(twos) / kDraws, 0.25, 0.01);
}

}  // namespace
}  // namespace aqua
