#include "workload/generators.h"

#include <gtest/gtest.h>

#include <map>

#include "warehouse/relation.h"

namespace aqua {
namespace {

TEST(GeneratorsTest, ZipfValuesSizeAndDomain) {
  const std::vector<Value> v = ZipfValues(10000, 500, 1.0, 1);
  EXPECT_EQ(v.size(), 10000u);
  for (Value x : v) {
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 500);
  }
}

TEST(GeneratorsTest, ZipfDeterministicPerSeed) {
  EXPECT_EQ(ZipfValues(1000, 100, 1.5, 7), ZipfValues(1000, 100, 1.5, 7));
  EXPECT_NE(ZipfValues(1000, 100, 1.5, 7), ZipfValues(1000, 100, 1.5, 8));
}

TEST(GeneratorsTest, ZipfSkewConcentratesMass) {
  const std::vector<Value> v = ZipfValues(50000, 1000, 2.0, 2);
  std::int64_t ones = 0;
  for (Value x : v) ones += (x == 1);
  // p(1) ≈ 0.608 for zipf-2 over 1000 values.
  EXPECT_GT(ones, 50000 * 0.55);
}

TEST(GeneratorsTest, UniformValuesCoverDomain) {
  const std::vector<Value> v = UniformValues(100000, 10, 3);
  std::map<Value, int> counts;
  for (Value x : v) ++counts[x];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(count, 10000, 600) << value;
  }
}

TEST(GeneratorsTest, ExponentialValuesMostlySmall) {
  const std::vector<Value> v = ExponentialValues(10000, 2.0, 4);
  std::int64_t small = 0;
  for (Value x : v) small += (x <= 2);
  EXPECT_GT(small, 7000);  // P(v<=2) = 0.75
}

TEST(GeneratorsTest, ShiftingZipfRotatesHotSet) {
  const std::vector<Value> v =
      ShiftingZipfValues(20000, 1000, 1.5, 10000, 500, 5);
  std::int64_t ones_before = 0, ones_after = 0, shifted_after = 0;
  for (std::size_t i = 0; i < 10000; ++i) ones_before += (v[i] == 1);
  for (std::size_t i = 10000; i < 20000; ++i) {
    ones_after += (v[i] == 1);
    shifted_after += (v[i] == 501);  // rank 1 maps to 501 after the shift
  }
  EXPECT_GT(ones_before, 1000);
  EXPECT_GT(shifted_after, 1000);
  EXPECT_LT(ones_after, 100);
}

TEST(GeneratorsTest, InsertStreamWrapsValues) {
  const UpdateStream s = InsertStream({1, 2, 3});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], StreamOp::Insert(1));
  EXPECT_EQ(s[2], StreamOp::Insert(3));
}

TEST(GeneratorsTest, MixedStreamDeletesOnlyLiveTuples) {
  const UpdateStream s = MixedStream(50000, 500, 1.0, 0.3, 1000, 6);
  Relation relation;
  std::int64_t deletes = 0;
  for (const StreamOp& op : s) {
    ASSERT_TRUE(relation.Apply(op).ok())
        << "delete of dead tuple in generated stream";
    deletes += (op.kind == StreamOp::Kind::kDelete);
  }
  EXPECT_GT(deletes, 5000);
  EXPECT_EQ(relation.size(),
            static_cast<std::int64_t>(s.size()) - 2 * deletes);
}

TEST(GeneratorsTest, MixedStreamWarmupIsInsertOnly) {
  const UpdateStream s = MixedStream(20000, 500, 1.0, 0.5, 5000, 7);
  for (std::size_t i = 0; i < 5000; ++i) {
    EXPECT_EQ(s[i].kind, StreamOp::Kind::kInsert);
  }
}

TEST(GeneratorsTest, PairEncodingRoundTrips) {
  const Value e = EncodeItemPair(123, 45678);
  const auto [a, b] = DecodeItemPair(e);
  EXPECT_EQ(a, 123);
  EXPECT_EQ(b, 45678);
  // Unordered: (x, y) and (y, x) encode identically.
  EXPECT_EQ(EncodeItemPair(45678, 123), e);
}

TEST(GeneratorsTest, PairItemsetEmitsAllBasketPairs) {
  // items_per_basket = 3 → 3 pairs per basket.
  const std::vector<Value> pairs = PairItemsetValues(1000, 100, 1.0, 3, 8);
  EXPECT_EQ(pairs.size(), 3000u);
  for (Value p : pairs) {
    const auto [a, b] = DecodeItemPair(p);
    EXPECT_GE(a, 1);
    EXPECT_LE(b, 100);
    EXPECT_LT(a, b);  // distinct items, canonical order
  }
}

}  // namespace
}  // namespace aqua
