// Unit tests for the epoch-keyed response cache, including the measured
// zero-allocation guarantee on the warmed hit path: this TU replaces the
// global operator new/delete with counting versions, so a hit that touched
// the allocator would fail here, not just regress silently in a bench.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>
#include <string>

#include <gtest/gtest.h>

#include "plan/sql_frontend.h"
#include "server/http.h"
#include "server/response_cache.h"

namespace {
std::atomic<std::int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace aqua {
namespace {

// HttpRequest views parser-owned storage, so the parser must stay alive
// while the request is examined; this holder bundles the two.  Factories
// return it by prvalue (guaranteed elision — no move of the parser whose
// buffer the views point into).
class ParsedRequest {
 public:
  explicit ParsedRequest(const std::string& wire) {
    EXPECT_EQ(parser_.Feed(wire), HttpRequestParser::State::kComplete);
    request_ = parser_.TakeRequest();
  }
  ParsedRequest(const ParsedRequest&) = delete;
  ParsedRequest& operator=(const ParsedRequest&) = delete;

  operator const HttpRequest&() const { return request_; }

 private:
  HttpRequestParser parser_;
  HttpRequest request_;
};

ParsedRequest GetRequest(const std::string& target,
                         const std::string& extra_headers = "") {
  return ParsedRequest("GET " + target + " HTTP/1.1\r\nHost: t\r\n" +
                       extra_headers + "\r\n");
}

TEST(ResponseCacheTest, HitReturnsStoredBytesVerbatim) {
  ResponseCache cache;
  const ParsedRequest request = GetRequest("/hotlist?k=10");
  const std::string wire = "HTTP/1.1 200 OK\r\n\r\n{\"x\":1}";

  const std::string_view key = cache.BuildKey(request);
  EXPECT_EQ(cache.Lookup(1, key), nullptr);  // cold: miss
  cache.Store(1, key, wire);

  const std::string* hit = cache.Lookup(1, cache.BuildKey(request));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, wire);

  const ResponseCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResponseCacheTest, EpochAdvanceMissesStaleEntriesLazily) {
  ResponseCache cache;
  const ParsedRequest a = GetRequest("/hotlist?k=10");
  const ParsedRequest b = GetRequest("/frequency?value=7");
  cache.Store(1, cache.BuildKey(a), "A");
  cache.Store(1, cache.BuildKey(b), "B");
  EXPECT_EQ(cache.GetStats().entries, 2u);

  // A lookup carrying the next epoch misses; the stale entries stay in
  // place (reclaimed lazily by the re-render's Store or cap pressure).
  EXPECT_EQ(cache.Lookup(2, cache.BuildKey(a)), nullptr);
  const ResponseCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.invalidations, 1);
  EXPECT_EQ(cache.epoch(), 2u);

  // The re-render's Store overwrites the stale incarnation in place.
  cache.Store(2, cache.BuildKey(a), "A2");
  const std::string* hit = cache.Lookup(2, cache.BuildKey(a));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "A2");
  EXPECT_EQ(cache.GetStats().entries, 2u);
}

TEST(ResponseCacheTest, EpochAdvanceInvalidatesOnlyItsScope) {
  // The surgical contract: attribute A's epoch advance must not disturb
  // attribute B's warmed entries.
  ResponseCache cache;
  const ParsedRequest qa = GetRequest("/attr/price/quantile?q=0.5");
  const ParsedRequest qb = GetRequest("/attr/size/quantile?q=0.5");
  const std::string ka(cache.BuildKey(qa));
  const std::string kb(cache.BuildKey(qb));
  cache.Store("price", 1, ka, "PRICE@1");
  cache.Store("size", 5, kb, "SIZE@5");
  EXPECT_EQ(cache.GetStats().entries, 2u);

  // price advances to epoch 2: its entry goes stale...
  EXPECT_EQ(cache.Lookup("price", 2, ka), nullptr);
  // ...but size keeps hitting at its own (unchanged) epoch.
  const std::string* hit = cache.Lookup("size", 5, kb);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "SIZE@5");

  const ResponseCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.invalidations, 1);  // only price's advance
  EXPECT_EQ(stats.entries, 2u);       // nothing evicted eagerly

  // price's re-render replaces its entry; size's is still untouched.
  cache.Store("price", 2, ka, "PRICE@2");
  hit = cache.Lookup("price", 2, ka);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "PRICE@2");
  ASSERT_NE(cache.Lookup("size", 5, kb), nullptr);
}

TEST(ResponseCacheTest, CapPressureSweepsOnlyStaleEntries) {
  ResponseCacheOptions options;
  options.max_entries = 2;
  ResponseCache cache(options);
  const std::string ka(cache.BuildKey(GetRequest("/a?x=1")));
  const std::string kb(cache.BuildKey(GetRequest("/a?x=2")));
  const std::string kc(cache.BuildKey(GetRequest("/a?x=3")));
  cache.Store("s1", 1, ka, "A");
  cache.Store("s2", 1, kb, "B");

  // s1 advances: its entry is stale, so a Store at the cap reclaims it —
  // and only it — to make room.
  EXPECT_EQ(cache.Lookup("s1", 2, ka), nullptr);
  cache.Store("s1", 2, kc, "C");
  const ResponseCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.stale_evictions, 1);
  EXPECT_EQ(stats.entries, 2u);
  ASSERT_NE(cache.Lookup("s1", 2, kc), nullptr);
  ASSERT_NE(cache.Lookup("s2", 1, kb), nullptr);  // fresh scope survived
  EXPECT_EQ(cache.Lookup("s1", 2, ka), nullptr);  // the stale one is gone
}

TEST(ResponseCacheTest, ScopedWarmHitPathDoesNotAllocate) {
  // The surgical key carries (scope, epoch) per entry; after the scope is
  // interned, the scoped hit path must stay as allocation-free as the
  // legacy one.
  ResponseCache cache;
  const ParsedRequest request = GetRequest("/attr/price/distinct");
  std::string wire(256, 'p');
  cache.Store("price", 3, cache.BuildKey(request), std::move(wire));
  ASSERT_NE(cache.Lookup("price", 3, cache.BuildKey(request)), nullptr);

  const std::int64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    const std::string_view key = cache.BuildKey(request);
    const std::string* hit = cache.Lookup("price", 3, key);
    ASSERT_NE(hit, nullptr);
    ASSERT_EQ(hit->size(), 256u);
  }
  const std::int64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "warmed scoped BuildKey+Lookup hit path allocated";
}

TEST(ResponseCacheTest, EquivalentQueriesShareOneKey) {
  ResponseCache cache;
  const ParsedRequest x = GetRequest("/hotlist?k=10&beta=3");
  const ParsedRequest y = GetRequest("/hotlist?beta=3&k=10");
  const ParsedRequest z = GetRequest("/hotlist?k=%31%30&beta=3");
  const std::string kx(cache.BuildKey(x));
  EXPECT_EQ(kx, std::string(cache.BuildKey(y)));
  EXPECT_EQ(kx, std::string(cache.BuildKey(z)));
}

TEST(ResponseCacheTest, KeepAliveBitSplitsTheKey) {
  // The cached wire embeds a Connection: header, so a close request must
  // never replay a keep-alive entry (and vice versa).
  ResponseCache cache;
  const ParsedRequest keep = GetRequest("/distinct");
  const ParsedRequest close_it =
      GetRequest("/distinct", "Connection: close\r\n");
  const std::string keep_key(cache.BuildKey(keep));
  EXPECT_NE(keep_key, std::string(cache.BuildKey(close_it)));

  cache.Store(1, cache.BuildKey(keep), "KEEPALIVE-WIRE");
  EXPECT_EQ(cache.Lookup(1, cache.BuildKey(close_it)), nullptr);
  EXPECT_NE(cache.Lookup(1, cache.BuildKey(keep)), nullptr);
}

TEST(ResponseCacheTest, OversizedAndOverCapStoresAreDropped) {
  ResponseCacheOptions options;
  options.max_entries = 2;
  options.max_entry_bytes = 8;
  ResponseCache cache(options);

  cache.Store(1, cache.BuildKey(GetRequest("/a?x=1")), "123456789");
  EXPECT_EQ(cache.GetStats().entries, 0u);  // oversized

  cache.Store(1, cache.BuildKey(GetRequest("/a?x=1")), "1");
  cache.Store(1, cache.BuildKey(GetRequest("/a?x=2")), "2");
  cache.Store(1, cache.BuildKey(GetRequest("/a?x=3")), "3");  // over cap
  EXPECT_EQ(cache.GetStats().entries, 2u);
  EXPECT_EQ(cache.Lookup(1, cache.BuildKey(GetRequest("/a?x=3"))), nullptr);
}

TEST(ResponseCacheTest, BypassAndForcedMissCounters) {
  ResponseCache cache;
  cache.CountBypass();
  cache.CountBypass();
  cache.CountMiss();
  const ResponseCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.bypass, 2);
  EXPECT_EQ(stats.misses, 1);
}

TEST(ResponseCacheTest, WarmHitPathDoesNotAllocate) {
  ResponseCache cache;
  const ParsedRequest request =
      GetRequest("/count_where?low=10&high=5000&confidence=0.95");
  std::string wire(512, 'x');
  cache.Store(7, cache.BuildKey(request), std::move(wire));

  // Warm once: BuildKey's buffer and the canonical-query scratch reach
  // their steady-state capacity.
  ASSERT_NE(cache.Lookup(7, cache.BuildKey(request)), nullptr);

  const std::int64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    const std::string_view key = cache.BuildKey(request);
    const std::string* hit = cache.Lookup(7, key);
    ASSERT_NE(hit, nullptr);
    ASSERT_EQ(hit->size(), 512u);
  }
  const std::int64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "warmed BuildKey+Lookup hit path allocated";
}

/// The /query route's canonicalizer, as routes.cc installs it: the SQL
/// text is parsed and re-emitted in canonical form, so the cache key
/// depends on the query's *meaning*, not its spelling.
bool SqlCanonicalKey(const HttpRequest& request, std::string* out) {
  const auto statement = request.QueryParam("q");
  if (!statement.has_value()) return false;
  ParsedSqlQuery parsed;
  if (!ParseSqlQuery(*statement, &parsed).ok()) return false;
  AppendCanonicalSqlKey(parsed, out);
  return true;
}

TEST(ResponseCacheTest, CanonicalSqlSpellingsShareOneEntry) {
  ResponseCache cache;
  const ParsedRequest spelled = GetRequest(
      "/query?q=SELECT%20APPROX(COUNT(*))%20FROM%20stream"
      "%20WHERE%20v%20BETWEEN%200%20AND%2050"
      "%20ERROR%202%25%20CONFIDENCE%2095%25");
  const ParsedRequest respelled = GetRequest(
      "/query?q=select%20approx(count(*))%20from%20stream"
      "%20confidence%200.95%20error%200.02"
      "%20where%20v%20between%200%20and%2050%20;");
  const ParsedRequest different = GetRequest(
      "/query?q=SELECT%20APPROX(COUNT(*))%20FROM%20stream"
      "%20WHERE%20v%20BETWEEN%200%20AND%2051"
      "%20ERROR%202%25%20CONFIDENCE%2095%25");

  std::string_view key;
  ASSERT_TRUE(cache.BuildKeyWith(spelled, SqlCanonicalKey, &key));
  cache.Store(3, key, "PLANNED-WIRE");
  ASSERT_TRUE(cache.BuildKeyWith(respelled, SqlCanonicalKey, &key));
  EXPECT_NE(cache.Lookup(3, key), nullptr)
      << "equivalent spelling missed the cached entry";
  ASSERT_TRUE(cache.BuildKeyWith(different, SqlCanonicalKey, &key));
  EXPECT_EQ(cache.Lookup(3, key), nullptr)
      << "a different range must not share the entry";

  // A statement the parser rejects cannot be keyed: the route serves it
  // uncached (a 400 must never be replayed from the cache).
  const ParsedRequest garbage = GetRequest("/query?q=DROP%20TABLE");
  EXPECT_FALSE(cache.BuildKeyWith(garbage, SqlCanonicalKey, &key));
  const ParsedRequest missing = GetRequest("/query");
  EXPECT_FALSE(cache.BuildKeyWith(missing, SqlCanonicalKey, &key));
}

TEST(ResponseCacheTest, WarmCanonicalSqlHitPathDoesNotAllocate) {
  ResponseCache cache;
  const ParsedRequest request = GetRequest(
      "/query?q=SELECT%20APPROX(QUANTILE(0.9))%20FROM%20price"
      "%20ERROR%205%25%20WITHIN%201ms");
  std::string wire(512, 'q');
  std::string_view key;
  // The canonicalizer is type-erased through the same std::function the
  // route table stores, so the measured path includes that indirection.
  const std::function<bool(const HttpRequest&, std::string*)> canonical =
      SqlCanonicalKey;
  ASSERT_TRUE(cache.BuildKeyWith(request, canonical, &key));
  cache.Store(7, key, std::move(wire));
  ASSERT_NE(cache.Lookup(7, key), nullptr);

  const std::int64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(cache.BuildKeyWith(request, canonical, &key));
    const std::string* hit = cache.Lookup(7, key);
    ASSERT_NE(hit, nullptr);
    ASSERT_EQ(hit->size(), 512u);
  }
  const std::int64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "warmed canonical /query BuildKeyWith+Lookup hit path allocated";
}

TEST(ResponseCacheTest, StoreAfterEpochAdvanceStartsFresh) {
  ResponseCache cache;
  const ParsedRequest request = GetRequest("/quantile?q=0.5");
  cache.Store(1, cache.BuildKey(request), "EPOCH1");
  cache.Store(2, cache.BuildKey(request), "EPOCH2");
  const std::string* hit = cache.Lookup(2, cache.BuildKey(request));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "EPOCH2");
  EXPECT_EQ(cache.GetStats().entries, 1u);
}

}  // namespace
}  // namespace aqua
