// Unit tests for the epoch-keyed response cache, including the measured
// zero-allocation guarantee on the warmed hit path: this TU replaces the
// global operator new/delete with counting versions, so a hit that touched
// the allocator would fail here, not just regress silently in a bench.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>

#include <gtest/gtest.h>

#include "server/http.h"
#include "server/response_cache.h"

namespace {
std::atomic<std::int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace aqua {
namespace {

// HttpRequest views parser-owned storage, so the parser must stay alive
// while the request is examined; this holder bundles the two.  Factories
// return it by prvalue (guaranteed elision — no move of the parser whose
// buffer the views point into).
class ParsedRequest {
 public:
  explicit ParsedRequest(const std::string& wire) {
    EXPECT_EQ(parser_.Feed(wire), HttpRequestParser::State::kComplete);
    request_ = parser_.TakeRequest();
  }
  ParsedRequest(const ParsedRequest&) = delete;
  ParsedRequest& operator=(const ParsedRequest&) = delete;

  operator const HttpRequest&() const { return request_; }

 private:
  HttpRequestParser parser_;
  HttpRequest request_;
};

ParsedRequest GetRequest(const std::string& target,
                         const std::string& extra_headers = "") {
  return ParsedRequest("GET " + target + " HTTP/1.1\r\nHost: t\r\n" +
                       extra_headers + "\r\n");
}

TEST(ResponseCacheTest, HitReturnsStoredBytesVerbatim) {
  ResponseCache cache;
  const ParsedRequest request = GetRequest("/hotlist?k=10");
  const std::string wire = "HTTP/1.1 200 OK\r\n\r\n{\"x\":1}";

  const std::string_view key = cache.BuildKey(request);
  EXPECT_EQ(cache.Lookup(1, key), nullptr);  // cold: miss
  cache.Store(1, key, wire);

  const std::string* hit = cache.Lookup(1, cache.BuildKey(request));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, wire);

  const ResponseCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResponseCacheTest, EpochAdvanceInvalidatesWholesale) {
  ResponseCache cache;
  const ParsedRequest a = GetRequest("/hotlist?k=10");
  const ParsedRequest b = GetRequest("/frequency?value=7");
  cache.Store(1, cache.BuildKey(a), "A");
  cache.Store(1, cache.BuildKey(b), "B");
  EXPECT_EQ(cache.GetStats().entries, 2u);

  // A lookup carrying the next epoch clears everything from the old one.
  EXPECT_EQ(cache.Lookup(2, cache.BuildKey(a)), nullptr);
  const ResponseCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.invalidations, 1);
  EXPECT_EQ(cache.epoch(), 2u);

  // The old epoch's bytes are gone even if the old epoch is asked again
  // (single-epoch cache: correctness over hit rate).
  EXPECT_EQ(cache.Lookup(1, cache.BuildKey(a)), nullptr);
}

TEST(ResponseCacheTest, EquivalentQueriesShareOneKey) {
  ResponseCache cache;
  const ParsedRequest x = GetRequest("/hotlist?k=10&beta=3");
  const ParsedRequest y = GetRequest("/hotlist?beta=3&k=10");
  const ParsedRequest z = GetRequest("/hotlist?k=%31%30&beta=3");
  const std::string kx(cache.BuildKey(x));
  EXPECT_EQ(kx, std::string(cache.BuildKey(y)));
  EXPECT_EQ(kx, std::string(cache.BuildKey(z)));
}

TEST(ResponseCacheTest, KeepAliveBitSplitsTheKey) {
  // The cached wire embeds a Connection: header, so a close request must
  // never replay a keep-alive entry (and vice versa).
  ResponseCache cache;
  const ParsedRequest keep = GetRequest("/distinct");
  const ParsedRequest close_it =
      GetRequest("/distinct", "Connection: close\r\n");
  const std::string keep_key(cache.BuildKey(keep));
  EXPECT_NE(keep_key, std::string(cache.BuildKey(close_it)));

  cache.Store(1, cache.BuildKey(keep), "KEEPALIVE-WIRE");
  EXPECT_EQ(cache.Lookup(1, cache.BuildKey(close_it)), nullptr);
  EXPECT_NE(cache.Lookup(1, cache.BuildKey(keep)), nullptr);
}

TEST(ResponseCacheTest, OversizedAndOverCapStoresAreDropped) {
  ResponseCacheOptions options;
  options.max_entries = 2;
  options.max_entry_bytes = 8;
  ResponseCache cache(options);

  cache.Store(1, cache.BuildKey(GetRequest("/a?x=1")), "123456789");
  EXPECT_EQ(cache.GetStats().entries, 0u);  // oversized

  cache.Store(1, cache.BuildKey(GetRequest("/a?x=1")), "1");
  cache.Store(1, cache.BuildKey(GetRequest("/a?x=2")), "2");
  cache.Store(1, cache.BuildKey(GetRequest("/a?x=3")), "3");  // over cap
  EXPECT_EQ(cache.GetStats().entries, 2u);
  EXPECT_EQ(cache.Lookup(1, cache.BuildKey(GetRequest("/a?x=3"))), nullptr);
}

TEST(ResponseCacheTest, BypassAndForcedMissCounters) {
  ResponseCache cache;
  cache.CountBypass();
  cache.CountBypass();
  cache.CountMiss();
  const ResponseCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.bypass, 2);
  EXPECT_EQ(stats.misses, 1);
}

TEST(ResponseCacheTest, WarmHitPathDoesNotAllocate) {
  ResponseCache cache;
  const ParsedRequest request =
      GetRequest("/count_where?low=10&high=5000&confidence=0.95");
  std::string wire(512, 'x');
  cache.Store(7, cache.BuildKey(request), std::move(wire));

  // Warm once: BuildKey's buffer and the canonical-query scratch reach
  // their steady-state capacity.
  ASSERT_NE(cache.Lookup(7, cache.BuildKey(request)), nullptr);

  const std::int64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    const std::string_view key = cache.BuildKey(request);
    const std::string* hit = cache.Lookup(7, key);
    ASSERT_NE(hit, nullptr);
    ASSERT_EQ(hit->size(), 512u);
  }
  const std::int64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "warmed BuildKey+Lookup hit path allocated";
}

TEST(ResponseCacheTest, StoreAfterEpochAdvanceStartsFresh) {
  ResponseCache cache;
  const ParsedRequest request = GetRequest("/quantile?q=0.5");
  cache.Store(1, cache.BuildKey(request), "EPOCH1");
  cache.Store(2, cache.BuildKey(request), "EPOCH2");
  const std::string* hit = cache.Lookup(2, cache.BuildKey(request));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "EPOCH2");
  EXPECT_EQ(cache.GetStats().entries, 1u);
}

}  // namespace
}  // namespace aqua
