// End-to-end test of the multi-attribute catalog serving path: spawns
// aqua_serve with two --attr registrations, ingests a distinct stream into
// each over HTTP, and checks that /attr/{name}/hotlist and
// /attr/{name}/frequency answer exactly what an in-process SynopsisCatalog
// fed the identical streams answers (the catalog runs its registries with
// one shard, so snapshots are deterministic copies), and that unknown
// attributes answer 404 — never 500.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/e2e_util.h"
#include "server/json.h"
#include "warehouse/catalog.h"
#include "workload/generators.h"

namespace aqua {
namespace {

using namespace e2e;  // NOLINT(build/namespaces): test-local helpers

constexpr Words kBudget = 8192;

std::vector<Value> ItemStream() { return ZipfValues(20000, 300, 1.2, 55); }
std::vector<Value> RegionStream() { return UniformValues(10000, 80, 66); }

std::string ToJsonArray(const std::vector<Value>& values) {
  std::string body = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) body += ",";
    body += std::to_string(values[i]);
  }
  body += "]";
  return body;
}

/// The in-process reference: same budget, weights, seed, staleness bound
/// and (single-shard) registries as the spawned server, fed the same
/// per-attribute batches in the same order.
class CatalogE2eTest : public ::testing::Test {
 protected:
  CatalogE2eTest()
      : server_({"--attr", "item:2", "--attr", "region", "--catalog-budget",
                 std::to_string(kBudget), "--cache-stale-ops", "1"}),
        reference_(kBudget, ReferenceOptions()) {
    AttributeOptions heavy;
    heavy.weight = 2.0;
    EXPECT_TRUE(reference_.RegisterAttribute("item", heavy).ok());
    EXPECT_TRUE(reference_.RegisterAttribute("region").ok());
    EXPECT_TRUE(reference_.Seal().ok());
  }

  static CatalogOptions ReferenceOptions() {
    CatalogOptions options;
    options.cache_max_stale_ops = 1;
    return options;
  }

  void IngestBoth() {
    const std::vector<Value> items = ItemStream();
    const std::vector<Value> regions = RegionStream();
    const RawResponse item_response =
        Post(server_.port(), "/attr/item/ingest", ToJsonArray(items));
    ASSERT_EQ(item_response.status, 200) << item_response.body;
    const RawResponse region_response =
        Post(server_.port(), "/attr/region/ingest", ToJsonArray(regions));
    ASSERT_EQ(region_response.status, 200) << region_response.body;
    ASSERT_TRUE(reference_.InsertBatch("item", items).ok());
    ASSERT_TRUE(reference_.InsertBatch("region", regions).ok());
  }

  std::string ExpectedHotListJson(const std::string& attribute,
                                  const HotListQuery& query) {
    const auto expected = reference_.HotListFor(attribute, query);
    EXPECT_TRUE(expected.ok());
    JsonWriter w;
    w.BeginObject();
    w.Key("items").BeginArray();
    for (const HotListItem& item : expected->answer) {
      w.BeginObject();
      w.Key("value").Int(item.value);
      w.Key("estimated_count").Double(item.estimated_count);
      w.Key("synopsis_count").Int(item.synopsis_count);
      w.EndObject();
    }
    w.EndArray();
    w.Key("method").String(expected->method);
    w.EndObject();
    return w.TakeString();
  }

  std::string ExpectedFrequencyJson(const std::string& attribute, Value v) {
    const auto expected = reference_.FrequencyFor(attribute, v);
    EXPECT_TRUE(expected.ok());
    JsonWriter w;
    w.BeginObject();
    w.Key("estimate").Double(expected->answer.value);
    w.Key("ci_low").Double(expected->answer.ci_low);
    w.Key("ci_high").Double(expected->answer.ci_high);
    w.Key("confidence").Double(expected->answer.confidence);
    w.Key("sample_points").Int(expected->answer.sample_points);
    w.Key("method").String(expected->method);
    w.EndObject();
    return w.TakeString();
  }

  ServerProcess server_;
  SynopsisCatalog reference_;
};

TEST_F(CatalogE2eTest, HotListsMatchInProcessCatalogPerAttribute) {
  IngestBoth();
  HotListQuery query;
  query.k = 8;
  query.beta = 3.0;
  for (const std::string attribute : {"item", "region"}) {
    const RawResponse got =
        Fetch(server_.port(), "/attr/" + attribute + "/hotlist?k=8&beta=3");
    ASSERT_EQ(got.status, 200) << got.body;
    EXPECT_EQ(StripResponseNs(got.body),
              ExpectedHotListJson(attribute, query))
        << attribute;
  }
  // The two attributes see different streams, so their hot lists differ.
  EXPECT_NE(ExpectedHotListJson("item", query),
            ExpectedHotListJson("region", query));
}

TEST_F(CatalogE2eTest, FrequenciesMatchInProcessCatalogPerAttribute) {
  IngestBoth();
  for (const std::string attribute : {"item", "region"}) {
    for (Value v : {Value{1}, Value{2}, Value{40}}) {
      const RawResponse got =
          Fetch(server_.port(), "/attr/" + attribute +
                                    "/frequency?value=" + std::to_string(v));
      ASSERT_EQ(got.status, 200) << got.body;
      EXPECT_EQ(StripResponseNs(got.body),
                ExpectedFrequencyJson(attribute, v))
          << attribute << " value=" << v;
    }
  }
}

TEST_F(CatalogE2eTest, UnknownAttributeAnswers404Not500) {
  IngestBoth();
  for (const std::string target :
       {"/attr/nope/hotlist", "/attr/nope/frequency?value=1",
        "/attr/nope/count_where?low=1&high=2", "/attr/nope/distinct",
        "/attr/nope/stats"}) {
    const RawResponse got = Fetch(server_.port(), target);
    EXPECT_EQ(got.status, 404) << target << ": " << got.body;
  }
  EXPECT_EQ(Post(server_.port(), "/attr/nope/ingest", "[1]").status, 404);

  // Malformed /attr paths are 404 too, and an unsupported method on a
  // known prefix is 405 (the route is known, the method is not).
  EXPECT_EQ(Fetch(server_.port(), "/attr/item").status, 404);
  EXPECT_EQ(Fetch(server_.port(), "/attr/").status, 404);
  EXPECT_EQ(Fetch(server_.port(), "/attr/item/bogus").status, 404);
  const int fd = ConnectTo(server_.port());
  SendRequest(fd, "DELETE", "/attr/item/hotlist");
  EXPECT_EQ(ReadResponse(fd).status, 405);
  close(fd);
}

TEST_F(CatalogE2eTest, StatsCountWhereDistinctAndDeletesServePerAttribute) {
  IngestBoth();

  const RawResponse stats = Fetch(server_.port(), "/attr/item/stats");
  ASSERT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"inserts\":20000"), std::string::npos)
      << stats.body;
  EXPECT_NE(stats.body.find("\"share_words\":"), std::string::npos);

  const RawResponse count =
      Fetch(server_.port(), "/attr/region/count_where?low=1&high=40");
  ASSERT_EQ(count.status, 200);
  EXPECT_NE(count.body.find("\"method\":"), std::string::npos);

  const RawResponse distinct = Fetch(server_.port(), "/attr/region/distinct");
  ASSERT_EQ(distinct.status, 200);
  EXPECT_NE(distinct.body.find("\"method\":\"fm-sketch\""),
            std::string::npos)
      << distinct.body;

  // Deletes route to the attribute's counting sample and invalidate its
  // concise sample only; the other attribute is untouched.
  const RawResponse deleted =
      Post(server_.port(), "/attr/region/delete", "[1]");
  ASSERT_EQ(deleted.status, 200) << deleted.body;
  const RawResponse after = Fetch(server_.port(), "/attr/region/stats");
  EXPECT_NE(after.body.find("\"deletes\":1"), std::string::npos)
      << after.body;
  const RawResponse item_stats = Fetch(server_.port(), "/attr/item/stats");
  EXPECT_NE(item_stats.body.find("\"deletes\":0"), std::string::npos)
      << item_stats.body;
}

}  // namespace
}  // namespace aqua
