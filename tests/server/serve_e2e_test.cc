// End-to-end test of the aqua_serve binary: spawns the real server on an
// ephemeral port, speaks HTTP/1.1 over a raw socket, and checks that
//
//  - /hotlist and /frequency answers match an in-process ServingEngine fed
//    the identical stream (the server is run with --shards 1 so snapshot
//    contents are deterministic: a single-shard snapshot is a copy, and no
//    merge randomness enters the answer),
//  - overload answers 503 (one worker + queue capacity 1 + a debug request
//    that holds the worker),
//  - SIGTERM drains gracefully with exit code 0.
//
// The binary path is injected by CMake as AQUA_SERVE_BINARY; the ctest
// entry carries a TIMEOUT so a hung server fails rather than wedging CI.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/json.h"
#include "server/serving_engine.h"
#include "workload/generators.h"

namespace aqua {
namespace {

constexpr std::int64_t kPreloadN = 30000;
constexpr std::int64_t kPreloadDomain = 500;
constexpr double kPreloadAlpha = 1.0;
constexpr std::uint64_t kPreloadSeed = 424242;

/// A spawned aqua_serve process: fork/exec with stdout piped back so the
/// test can read the "listening on ADDR:PORT" line.
class ServerProcess {
 public:
  ServerProcess(std::vector<std::string> extra_args) {
    Spawn(std::move(extra_args));  // ASSERTs need a void function
  }

  void Spawn(std::vector<std::string> extra_args) {
    int out_pipe[2];
    ASSERT_EQ(pipe(out_pipe), 0);
    pid_ = fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      dup2(out_pipe[1], STDOUT_FILENO);
      close(out_pipe[0]);
      close(out_pipe[1]);
      std::vector<std::string> args = {AQUA_SERVE_BINARY, "--port", "0"};
      for (auto& a : extra_args) args.push_back(std::move(a));
      std::vector<char*> argv;
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv(argv[0], argv.data());
      std::perror("execv aqua_serve");
      _exit(127);
    }
    close(out_pipe[1]);
    stdout_fd_ = out_pipe[0];
    ReadPort();
  }

  ~ServerProcess() {
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
    }
    if (stdout_fd_ >= 0) close(stdout_fd_);
  }

  std::uint16_t port() const { return port_; }
  pid_t pid() const { return pid_; }

  /// SIGTERM, then waits; returns the exit status (-1 on abnormal exit).
  int TerminateAndWait() {
    kill(pid_, SIGTERM);
    int wstatus = 0;
    waitpid(pid_, &wstatus, 0);
    const int code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
    pid_ = -1;
    return code;
  }

 private:
  void ReadPort() {
    // Read stdout until the listening line appears (the server prints and
    // flushes it immediately after binding).
    std::string line;
    char c;
    const std::int64_t deadline_ms = 10000;
    struct pollfd pfd = {stdout_fd_, POLLIN, 0};
    while (line.find('\n') == std::string::npos) {
      ASSERT_GT(poll(&pfd, 1, static_cast<int>(deadline_ms)), 0)
          << "server did not print its port";
      const ssize_t n = read(stdout_fd_, &c, 1);
      ASSERT_GT(n, 0) << "server exited before printing its port";
      line.push_back(c);
    }
    const std::size_t colon = line.rfind(':');
    ASSERT_NE(colon, std::string::npos) << line;
    port_ = static_cast<std::uint16_t>(
        std::stoi(line.substr(colon + 1)));
    ASSERT_GT(port_, 0) << line;
  }

  pid_t pid_ = -1;
  int stdout_fd_ = -1;
  std::uint16_t port_ = 0;
};

/// A raw HTTP/1.1 response: status code + body.
struct RawResponse {
  int status = 0;
  std::string body;
};

int ConnectTo(std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << strerror(errno);
  return fd;
}

void SendRequest(int fd, const std::string& method, const std::string& target,
                 const std::string& body = "") {
  std::string wire = method + " " + target + " HTTP/1.1\r\nHost: t\r\n";
  if (!body.empty()) {
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "Connection: close\r\n\r\n" + body;
  ASSERT_EQ(write(fd, wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
}

RawResponse ReadResponse(int fd) {
  std::string raw;
  char buf[4096];
  for (;;) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (poll(&pfd, 1, 15000) <= 0) break;  // hung server: fail below
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  RawResponse response;
  if (raw.rfind("HTTP/1.1 ", 0) == 0) {
    response.status = std::stoi(raw.substr(9, 3));
  }
  const std::size_t blank = raw.find("\r\n\r\n");
  if (blank != std::string::npos) response.body = raw.substr(blank + 4);
  return response;
}

RawResponse Fetch(std::uint16_t port, const std::string& target) {
  const int fd = ConnectTo(port);
  SendRequest(fd, "GET", target);
  RawResponse response = ReadResponse(fd);
  close(fd);
  return response;
}

RawResponse Post(std::uint16_t port, const std::string& target,
                 const std::string& body) {
  const int fd = ConnectTo(port);
  SendRequest(fd, "POST", target, body);
  RawResponse response = ReadResponse(fd);
  close(fd);
  return response;
}

/// Removes the volatile `"response_ns":<digits>` metric so two responses to
/// the same query compare equal.
std::string StripResponseNs(std::string body) {
  const std::string key = "\"response_ns\":";
  const std::size_t at = body.find(key);
  if (at == std::string::npos) return body;
  std::size_t end = at + key.size();
  while (end < body.size() &&
         (std::isdigit(static_cast<unsigned char>(body[end])) ||
          body[end] == '-')) {
    ++end;
  }
  // Also swallow one adjacent comma to keep the JSON shape irrelevant.
  if (at > 0 && body[at - 1] == ',') {
    return body.substr(0, at - 1) + body.substr(end);
  }
  return body.substr(0, at) + body.substr(end);
}

std::string PreloadFlag() {
  return std::to_string(kPreloadN) + "," + std::to_string(kPreloadDomain) +
         "," + std::to_string(kPreloadAlpha) + "," +
         std::to_string(kPreloadSeed);
}

/// The in-process reference: same options, same stream, same single
/// InsertBatch the server's --preload-zipf performs.
ServingEngineOptions ReferenceOptions() {
  ServingEngineOptions options;
  options.shards = 1;
  return options;
}

TEST(ServeE2eTest, HotListMatchesInProcessEngine) {
  ServerProcess server({"--shards", "1", "--preload-zipf", PreloadFlag()});

  ServingEngine reference(ReferenceOptions());
  reference.InsertBatch(
      ZipfValues(kPreloadN, kPreloadDomain, kPreloadAlpha, kPreloadSeed));

  const RawResponse got = Fetch(server.port(), "/hotlist?k=10&beta=3");
  ASSERT_EQ(got.status, 200) << got.body;

  HotListQuery query;
  query.k = 10;
  query.beta = 3.0;
  const QueryResponse<HotList> expected = reference.HotListAnswer(query);
  JsonWriter w;
  w.BeginObject();
  w.Key("items").BeginArray();
  for (const HotListItem& item : expected.answer) {
    w.BeginObject();
    w.Key("value").Int(item.value);
    w.Key("estimated_count").Double(item.estimated_count);
    w.Key("synopsis_count").Int(item.synopsis_count);
    w.EndObject();
  }
  w.EndArray();
  w.Key("method").String(expected.method);
  w.EndObject();
  EXPECT_FALSE(expected.answer.empty());
  EXPECT_EQ(StripResponseNs(got.body), w.str());
  EXPECT_EQ(expected.method, "counting-sample");
}

TEST(ServeE2eTest, FrequencyMatchesInProcessEngine) {
  ServerProcess server({"--shards", "1", "--preload-zipf", PreloadFlag()});

  ServingEngine reference(ReferenceOptions());
  reference.InsertBatch(
      ZipfValues(kPreloadN, kPreloadDomain, kPreloadAlpha, kPreloadSeed));

  for (Value v : {Value{1}, Value{2}, Value{17}, Value{499}}) {
    const RawResponse got =
        Fetch(server.port(), "/frequency?value=" + std::to_string(v));
    ASSERT_EQ(got.status, 200) << got.body;
    const QueryResponse<Estimate> expected = reference.FrequencyAnswer(v);
    JsonWriter w;
    w.BeginObject();
    w.Key("estimate").Double(expected.answer.value);
    w.Key("ci_low").Double(expected.answer.ci_low);
    w.Key("ci_high").Double(expected.answer.ci_high);
    w.Key("confidence").Double(expected.answer.confidence);
    w.Key("sample_points").Int(expected.answer.sample_points);
    w.Key("method").String(expected.method);
    w.EndObject();
    EXPECT_EQ(StripResponseNs(got.body), w.str()) << "value=" << v;
  }
}

TEST(ServeE2eTest, IngestThenQueryRoundTrips) {
  ServerProcess server({"--shards", "1", "--cache-stale-ops", "1"});
  const RawResponse ingest =
      Post(server.port(), "/ingest", "[7,7,7,7,7,8,8]");
  ASSERT_EQ(ingest.status, 200) << ingest.body;
  EXPECT_NE(ingest.body.find("\"ingested\":7"), std::string::npos);

  const RawResponse stats = Fetch(server.port(), "/stats");
  ASSERT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"inserts\":7"), std::string::npos);

  const RawResponse bad = Post(server.port(), "/ingest", "[1, oops]");
  EXPECT_EQ(bad.status, 400);
}

TEST(ServeE2eTest, OverloadAnswers503) {
  ServerProcess server({"--enable-debug", "--workers", "1",
                        "--queue-capacity", "1"});

  // Hold the only worker, then fill the queue's single slot; the next
  // request must be shed with 503 instead of queueing behind the sleeper.
  const int busy = ConnectTo(server.port());
  SendRequest(busy, "GET", "/debug/sleep?ms=2000");
  usleep(300 * 1000);  // worker has dequeued the sleeper
  const int queued = ConnectTo(server.port());
  SendRequest(queued, "GET", "/healthz");
  usleep(200 * 1000);  // healthz now occupies the queue slot

  bool saw_503 = false;
  for (int i = 0; i < 5 && !saw_503; ++i) {
    const RawResponse shed = Fetch(server.port(), "/healthz");
    saw_503 = shed.status == 503;
  }
  EXPECT_TRUE(saw_503) << "no request was shed under overload";

  // The held requests still complete (bounded queue sheds, never drops
  // accepted work).
  EXPECT_EQ(ReadResponse(busy).status, 200);
  EXPECT_EQ(ReadResponse(queued).status, 200);
  close(busy);
  close(queued);

  const RawResponse stats = Fetch(server.port(), "/stats");
  EXPECT_NE(stats.body.find("\"responses_503\":"), std::string::npos);
}

TEST(ServeE2eTest, SigtermDrainsCleanly) {
  ServerProcess server({"--shards", "1"});
  ASSERT_EQ(Fetch(server.port(), "/healthz").status, 200);
  EXPECT_EQ(server.TerminateAndWait(), 0);
}

}  // namespace
}  // namespace aqua
