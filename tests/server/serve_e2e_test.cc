// End-to-end test of the aqua_serve binary: spawns the real server on an
// ephemeral port, speaks HTTP/1.1 over a raw socket, and checks that
//
//  - /hotlist and /frequency answers match an in-process ServingEngine fed
//    the identical stream (the server is run with --shards 1 so snapshot
//    contents are deterministic: a single-shard snapshot is a copy, and no
//    merge randomness enters the answer),
//  - overload answers 503 (one worker + queue capacity 1 + a debug request
//    that holds the worker),
//  - SIGTERM drains gracefully with exit code 0.
//
// The binary path is injected by CMake as AQUA_SERVE_BINARY; the ctest
// entry carries a TIMEOUT so a hung server fails rather than wedging CI.

#include <unistd.h>

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "server/e2e_util.h"
#include "server/json.h"
#include "server/serving_engine.h"
#include "workload/generators.h"

namespace aqua {
namespace {

using namespace e2e;  // NOLINT(build/namespaces): test-local helpers

constexpr std::int64_t kPreloadN = 30000;
constexpr std::int64_t kPreloadDomain = 500;
constexpr double kPreloadAlpha = 1.0;
constexpr std::uint64_t kPreloadSeed = 424242;

std::string PreloadFlag() {
  return std::to_string(kPreloadN) + "," + std::to_string(kPreloadDomain) +
         "," + std::to_string(kPreloadAlpha) + "," +
         std::to_string(kPreloadSeed);
}

/// The in-process reference: same options, same stream, same single
/// InsertBatch the server's --preload-zipf performs.
ServingEngineOptions ReferenceOptions() {
  ServingEngineOptions options;
  options.shards = 1;
  return options;
}

TEST(ServeE2eTest, HotListMatchesInProcessEngine) {
  ServerProcess server({"--shards", "1", "--preload-zipf", PreloadFlag()});

  ServingEngine reference(ReferenceOptions());
  reference.InsertBatch(
      ZipfValues(kPreloadN, kPreloadDomain, kPreloadAlpha, kPreloadSeed));

  const RawResponse got = Fetch(server.port(), "/hotlist?k=10&beta=3");
  ASSERT_EQ(got.status, 200) << got.body;

  HotListQuery query;
  query.k = 10;
  query.beta = 3.0;
  const QueryResponse<HotList> expected = reference.HotListAnswer(query);
  JsonWriter w;
  w.BeginObject();
  w.Key("items").BeginArray();
  for (const HotListItem& item : expected.answer) {
    w.BeginObject();
    w.Key("value").Int(item.value);
    w.Key("estimated_count").Double(item.estimated_count);
    w.Key("synopsis_count").Int(item.synopsis_count);
    w.EndObject();
  }
  w.EndArray();
  w.Key("method").String(expected.method);
  w.EndObject();
  EXPECT_FALSE(expected.answer.empty());
  EXPECT_EQ(StripResponseNs(got.body), w.str());
  EXPECT_EQ(expected.method, "counting-sample");
}

TEST(ServeE2eTest, FrequencyMatchesInProcessEngine) {
  ServerProcess server({"--shards", "1", "--preload-zipf", PreloadFlag()});

  ServingEngine reference(ReferenceOptions());
  reference.InsertBatch(
      ZipfValues(kPreloadN, kPreloadDomain, kPreloadAlpha, kPreloadSeed));

  for (Value v : {Value{1}, Value{2}, Value{17}, Value{499}}) {
    const RawResponse got =
        Fetch(server.port(), "/frequency?value=" + std::to_string(v));
    ASSERT_EQ(got.status, 200) << got.body;
    const QueryResponse<Estimate> expected = reference.FrequencyAnswer(v);
    JsonWriter w;
    w.BeginObject();
    w.Key("estimate").Double(expected.answer.value);
    w.Key("ci_low").Double(expected.answer.ci_low);
    w.Key("ci_high").Double(expected.answer.ci_high);
    w.Key("confidence").Double(expected.answer.confidence);
    w.Key("sample_points").Int(expected.answer.sample_points);
    w.Key("method").String(expected.method);
    w.EndObject();
    EXPECT_EQ(StripResponseNs(got.body), w.str()) << "value=" << v;
  }
}

TEST(ServeE2eTest, IngestThenQueryRoundTrips) {
  ServerProcess server({"--shards", "1", "--cache-stale-ops", "1"});
  const RawResponse ingest =
      Post(server.port(), "/ingest", "[7,7,7,7,7,8,8]");
  ASSERT_EQ(ingest.status, 200) << ingest.body;
  EXPECT_NE(ingest.body.find("\"ingested\":7"), std::string::npos);

  const RawResponse stats = Fetch(server.port(), "/stats");
  ASSERT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"inserts\":7"), std::string::npos);

  const RawResponse bad = Post(server.port(), "/ingest", "[1, oops]");
  EXPECT_EQ(bad.status, 400);
}

TEST(ServeE2eTest, OverloadAnswers503) {
  ServerProcess server({"--enable-debug", "--workers", "1",
                        "--queue-capacity", "1"});

  // Hold the only worker (the debug sleeper is explicitly
  // worker-dispatched), then fill the queue's single slot with a mutating
  // request; the next worker-route request must be shed with 503 instead
  // of queueing behind the sleeper.
  const int busy = ConnectTo(server.port());
  SendRequest(busy, "GET", "/debug/sleep?ms=2000");
  usleep(300 * 1000);  // worker has dequeued the sleeper
  const int queued = ConnectTo(server.port());
  SendRequest(queued, "POST", "/ingest", "[1,2,3]");
  usleep(200 * 1000);  // the ingest now occupies the queue slot

  bool saw_503 = false;
  for (int i = 0; i < 5 && !saw_503; ++i) {
    const RawResponse shed = Post(server.port(), "/ingest", "[4]");
    saw_503 = shed.status == 503;
  }
  EXPECT_TRUE(saw_503) << "no request was shed under overload";

  // The read path runs inline on the reactors and never sheds: even with
  // the worker pool saturated, /healthz answers immediately.
  EXPECT_EQ(Fetch(server.port(), "/healthz").status, 200);

  // The held requests still complete (bounded queue sheds, never drops
  // accepted work).
  EXPECT_EQ(ReadResponse(busy).status, 200);
  EXPECT_EQ(ReadResponse(queued).status, 200);
  close(busy);
  close(queued);

  const RawResponse stats = Fetch(server.port(), "/stats");
  EXPECT_NE(stats.body.find("\"responses_503\":"), std::string::npos);
}

TEST(ServeE2eTest, SigtermDrainsCleanly) {
  ServerProcess server({"--shards", "1"});
  ASSERT_EQ(Fetch(server.port(), "/healthz").status, 200);
  EXPECT_EQ(server.TerminateAndWait(), 0);
}

}  // namespace
}  // namespace aqua
