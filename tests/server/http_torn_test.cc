// Torn-read hardening for the incremental HTTP parser, plus conformance
// tests for the canonical query form and cache-control parsing the
// response cache depends on.
//
// The reactor feeds the parser whatever read() returned, so a pipelined
// request stream can be torn at ANY byte boundary — mid request-line, mid
// header name, mid percent-escape, mid body.  The sweep below replays one
// pipelined stream split at every boundary and asserts the parsed requests
// are identical to the unsplit parse, element for element.
//
// HttpRequest is a bundle of views into parser-owned storage, valid only
// until the parser's next Feed/Reparse — so the drain loop materializes
// each request into an OwnedRequest before pumping the parser again, and
// single-request helpers keep the parser alive alongside the views.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "server/http.h"

namespace aqua {
namespace {

/// Deep copy of one parsed request: owns every byte, so it survives the
/// parser moving on to the next pipelined request.
struct OwnedRequest {
  std::string method;
  std::string path;
  std::vector<std::pair<std::string, std::string>> query;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  explicit OwnedRequest(const HttpRequest& r)
      : method(r.method),
        path(r.path),
        body(r.body),
        keep_alive(r.keep_alive) {
    for (std::size_t i = 0; i < r.query_count; ++i) {
      query.emplace_back(std::string(r.query[i].key),
                         std::string(r.query[i].value));
    }
    for (std::size_t i = 0; i < r.header_count; ++i) {
      headers.emplace_back(std::string(r.headers[i].key),
                           std::string(r.headers[i].value));
    }
  }

  std::optional<std::string_view> QueryParam(std::string_view name) const {
    for (const auto& [key, value] : query) {
      if (key == name) return std::string_view(value);
    }
    return std::nullopt;
  }
};

/// Feeds `stream` to a fresh parser and drains every complete request.
/// The parser must never error and must end in kNeedMore with no buffered
/// leftovers.
std::vector<OwnedRequest> ParseAll(const std::vector<std::string>& chunks) {
  HttpRequestParser parser;
  std::vector<OwnedRequest> requests;
  for (const std::string& chunk : chunks) {
    auto state = parser.Feed(chunk);
    EXPECT_NE(state, HttpRequestParser::State::kError) << parser.error();
    while (parser.Reparse() == HttpRequestParser::State::kComplete) {
      requests.emplace_back(parser.TakeRequest());
    }
  }
  EXPECT_EQ(parser.state(), HttpRequestParser::State::kNeedMore);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
  return requests;
}

void ExpectSameRequests(const std::vector<OwnedRequest>& got,
                        const std::vector<OwnedRequest>& want,
                        std::size_t split) {
  ASSERT_EQ(got.size(), want.size()) << "split at byte " << split;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].method, want[i].method) << "split " << split;
    EXPECT_EQ(got[i].path, want[i].path) << "split " << split;
    EXPECT_EQ(got[i].query, want[i].query) << "split " << split;
    EXPECT_EQ(got[i].headers, want[i].headers) << "split " << split;
    EXPECT_EQ(got[i].body, want[i].body) << "split " << split;
    EXPECT_EQ(got[i].keep_alive, want[i].keep_alive) << "split " << split;
  }
}

TEST(HttpTornReadTest, PipelinedStreamSplitAtEveryByteBoundary) {
  // Three pipelined requests exercising a query string with escapes, a
  // POST body, and a closing request.
  const std::string stream =
      "GET /hotlist?k=10&beta=3.5&tag=a%20b HTTP/1.1\r\n"
      "Host: t\r\n\r\n"
      "POST /ingest HTTP/1.1\r\nHost: t\r\nContent-Length: 9\r\n\r\n"
      "[1,2,300]"
      "GET /frequency?value=42 HTTP/1.1\r\nHost: t\r\n"
      "Connection: close\r\n\r\n";

  const std::vector<OwnedRequest> want = ParseAll({stream});
  ASSERT_EQ(want.size(), 3u);
  EXPECT_EQ(want[0].path, "/hotlist");
  EXPECT_EQ(want[0].QueryParam("tag"), "a b");
  EXPECT_EQ(want[1].body, "[1,2,300]");
  EXPECT_FALSE(want[2].keep_alive);

  for (std::size_t split = 0; split <= stream.size(); ++split) {
    const std::vector<OwnedRequest> got =
        ParseAll({stream.substr(0, split), stream.substr(split)});
    ExpectSameRequests(got, want, split);
  }
}

TEST(HttpTornReadTest, ThreeWaySplitsAcrossRequestBoundaries) {
  const std::string stream =
      "GET /a?x=1 HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /b?y=2 HTTP/1.1\r\nHost: t\r\n\r\n";
  const std::vector<OwnedRequest> want = ParseAll({stream});
  ASSERT_EQ(want.size(), 2u);
  // Every ordered pair of split points (coarser than the full sweep, but
  // covers chunk boundaries landing inside both requests at once).
  for (std::size_t a = 0; a <= stream.size(); a += 3) {
    for (std::size_t b = a; b <= stream.size(); b += 3) {
      const std::vector<OwnedRequest> got = ParseAll(
          {stream.substr(0, a), stream.substr(a, b - a), stream.substr(b)});
      ExpectSameRequests(got, want, a * 1000 + b);
    }
  }
}

TEST(HttpTornReadTest, OverflowingFixedSlotsIsMalformed) {
  // The fixed view arrays reject rather than truncate: one parameter or
  // header too many must turn the request into a 400, never silently drop
  // a pair a handler (or the cache key) would have seen.
  std::string many_params = "GET /q?";
  for (std::size_t i = 0; i <= HttpRequest::kMaxQueryParams; ++i) {
    if (i > 0) many_params.push_back('&');
    many_params += "k" + std::to_string(i) + "=1";
  }
  many_params += " HTTP/1.1\r\nHost: t\r\n\r\n";
  HttpRequestParser p1;
  EXPECT_EQ(p1.Feed(many_params), HttpRequestParser::State::kError);

  std::string many_headers = "GET / HTTP/1.1\r\n";
  for (std::size_t i = 0; i <= HttpRequest::kMaxHeaders; ++i) {
    many_headers += "X-H" + std::to_string(i) + ": v\r\n";
  }
  many_headers += "\r\n";
  HttpRequestParser p2;
  EXPECT_EQ(p2.Feed(many_headers), HttpRequestParser::State::kError);

  // Exactly at the limit still parses.
  std::string at_limit = "GET /q?";
  for (std::size_t i = 0; i < HttpRequest::kMaxQueryParams; ++i) {
    if (i > 0) at_limit.push_back('&');
    at_limit += "k" + std::to_string(i) + "=1";
  }
  at_limit += " HTTP/1.1\r\nHost: t\r\n\r\n";
  HttpRequestParser p3;
  EXPECT_EQ(p3.Feed(at_limit), HttpRequestParser::State::kComplete);
  EXPECT_EQ(p3.TakeRequest().query_count, HttpRequest::kMaxQueryParams);
}

TEST(HttpKeepAliveTest, VersionDefaultsAndConnectionOverrides) {
  struct Case {
    const char* request;
    bool want_keep_alive;
  };
  const Case cases[] = {
      // HTTP/1.1 defaults to keep-alive.
      {"GET / HTTP/1.1\r\nHost: t\r\n\r\n", true},
      // HTTP/1.0 defaults to close.
      {"GET / HTTP/1.0\r\nHost: t\r\n\r\n", false},
      // Connection: close overrides the 1.1 default.
      {"GET / HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n", false},
      // Connection: keep-alive revives a 1.0 connection.
      {"GET / HTTP/1.0\r\nHost: t\r\nConnection: keep-alive\r\n\r\n", true},
      // Case-insensitive header name and value.
      {"GET / HTTP/1.1\r\nhost: t\r\nCONNECTION: Close\r\n\r\n", false},
  };
  for (const Case& c : cases) {
    HttpRequestParser parser;
    ASSERT_EQ(parser.Feed(c.request), HttpRequestParser::State::kComplete)
        << c.request;
    EXPECT_EQ(parser.TakeRequest().keep_alive, c.want_keep_alive)
        << c.request;
  }
}

TEST(HttpKeepAliveTest, ResponseEchoesNegotiatedConnection) {
  HttpResponse keep;
  keep.keep_alive = true;
  EXPECT_NE(keep.Serialize().find("Connection: keep-alive"),
            std::string::npos);
  HttpResponse close_it;
  close_it.keep_alive = false;
  EXPECT_NE(close_it.Serialize().find("Connection: close"),
            std::string::npos);
}

/// Parses one request and keeps the parser (the storage behind the views)
/// alive for as long as the request is examined.
class ParsedRequest {
 public:
  explicit ParsedRequest(const std::string& wire) {
    EXPECT_EQ(parser_.Feed(wire), HttpRequestParser::State::kComplete);
    request_ = parser_.TakeRequest();
  }
  ParsedRequest(const ParsedRequest&) = delete;
  ParsedRequest& operator=(const ParsedRequest&) = delete;

  const HttpRequest* operator->() const { return &request_; }
  const HttpRequest& get() const { return request_; }

 private:
  HttpRequestParser parser_;
  HttpRequest request_;
};

TEST(CanonicalQueryTest, SortsByKeyAndReencodes) {
  const ParsedRequest request(
      "GET /q?b=2&a=1&c=a%20b HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(request->CanonicalQuery(), "a=1&b=2&c=a%20b");
}

TEST(CanonicalQueryTest, ParameterOrderDoesNotMatter) {
  const ParsedRequest x("GET /q?k=10&beta=3 HTTP/1.1\r\nHost: t\r\n\r\n");
  const ParsedRequest y("GET /q?beta=3&k=10 HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(x->CanonicalQuery(), y->CanonicalQuery());
}

TEST(CanonicalQueryTest, EscapingVariantsCanonicalizeEqual) {
  // %34%32 is "42" — the decoded parameters are identical, so the
  // canonical forms must be too (the cache must not double-count them).
  const ParsedRequest plain("GET /q?value=42 HTTP/1.1\r\nHost: t\r\n\r\n");
  const ParsedRequest escaped(
      "GET /q?value=%34%32 HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(plain->CanonicalQuery(), escaped->CanonicalQuery());
}

TEST(CanonicalQueryTest, DuplicateKeysKeepRequestOrder) {
  // First-wins semantics must survive the stable sort: the first `k` stays
  // first in the canonical form.
  const ParsedRequest request(
      "GET /q?k=1&a=0&k=2 HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(request->CanonicalQuery(), "a=0&k=1&k=2");
  EXPECT_EQ(request->QueryParam("k"), "1");
}

TEST(CanonicalQueryTest, ReservedBytesArePercentEncoded) {
  const ParsedRequest request(
      "GET /q?expr=a%2Bb%3Dc HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(request->CanonicalQuery(), "expr=a%2Bb%3Dc");
}

TEST(CanonicalQueryTest, EmptyQueryCanonicalizesEmpty) {
  const ParsedRequest request("GET /distinct HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(request->CanonicalQuery(), "");
}

TEST(NoCacheTest, DirectiveDetection) {
  struct Case {
    const char* headers;
    bool want;
  };
  const Case cases[] = {
      {"", false},
      {"Cache-Control: no-cache\r\n", true},
      {"Cache-Control: No-Cache\r\n", true},
      {"Cache-Control: max-age=0, no-cache\r\n", true},
      {"Cache-Control: no-cache , private\r\n", true},
      // Substrings of other directives must not match.
      {"Cache-Control: no-cache-similar\r\n", false},
      {"Cache-Control: max-age=60\r\n", false},
      {"X-Cache-Control: no-cache\r\n", false},
  };
  for (const Case& c : cases) {
    const ParsedRequest request(
        std::string("GET / HTTP/1.1\r\nHost: t\r\n") + c.headers + "\r\n");
    EXPECT_EQ(request->NoCache(), c.want) << c.headers;
  }
}

}  // namespace
}  // namespace aqua
