// Torn-read hardening for the incremental HTTP parser, plus conformance
// tests for the canonical query form and cache-control parsing the
// response cache depends on.
//
// The reactor feeds the parser whatever read() returned, so a pipelined
// request stream can be torn at ANY byte boundary — mid request-line, mid
// header name, mid percent-escape, mid body.  The sweep below replays one
// pipelined stream split at every boundary and asserts the parsed requests
// are identical to the unsplit parse, element for element.

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/http.h"

namespace aqua {
namespace {

/// Feeds `stream` to a fresh parser and drains every complete request.
/// The parser must never error and must end in kNeedMore with no buffered
/// leftovers.
std::vector<HttpRequest> ParseAll(const std::vector<std::string>& chunks) {
  HttpRequestParser parser;
  std::vector<HttpRequest> requests;
  for (const std::string& chunk : chunks) {
    auto state = parser.Feed(chunk);
    EXPECT_NE(state, HttpRequestParser::State::kError) << parser.error();
    while (parser.Reparse() == HttpRequestParser::State::kComplete) {
      requests.push_back(parser.TakeRequest());
    }
  }
  EXPECT_EQ(parser.state(), HttpRequestParser::State::kNeedMore);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
  return requests;
}

void ExpectSameRequests(const std::vector<HttpRequest>& got,
                        const std::vector<HttpRequest>& want,
                        std::size_t split) {
  ASSERT_EQ(got.size(), want.size()) << "split at byte " << split;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].method, want[i].method) << "split " << split;
    EXPECT_EQ(got[i].path, want[i].path) << "split " << split;
    EXPECT_EQ(got[i].query, want[i].query) << "split " << split;
    EXPECT_EQ(got[i].headers, want[i].headers) << "split " << split;
    EXPECT_EQ(got[i].body, want[i].body) << "split " << split;
    EXPECT_EQ(got[i].keep_alive, want[i].keep_alive) << "split " << split;
  }
}

TEST(HttpTornReadTest, PipelinedStreamSplitAtEveryByteBoundary) {
  // Three pipelined requests exercising a query string with escapes, a
  // POST body, and a closing request.
  const std::string stream =
      "GET /hotlist?k=10&beta=3.5&tag=a%20b HTTP/1.1\r\n"
      "Host: t\r\n\r\n"
      "POST /ingest HTTP/1.1\r\nHost: t\r\nContent-Length: 9\r\n\r\n"
      "[1,2,300]"
      "GET /frequency?value=42 HTTP/1.1\r\nHost: t\r\n"
      "Connection: close\r\n\r\n";

  const std::vector<HttpRequest> want = ParseAll({stream});
  ASSERT_EQ(want.size(), 3u);
  EXPECT_EQ(want[0].path, "/hotlist");
  EXPECT_EQ(want[0].QueryParam("tag"), "a b");
  EXPECT_EQ(want[1].body, "[1,2,300]");
  EXPECT_FALSE(want[2].keep_alive);

  for (std::size_t split = 0; split <= stream.size(); ++split) {
    const std::vector<HttpRequest> got =
        ParseAll({stream.substr(0, split), stream.substr(split)});
    ExpectSameRequests(got, want, split);
  }
}

TEST(HttpTornReadTest, ThreeWaySplitsAcrossRequestBoundaries) {
  const std::string stream =
      "GET /a?x=1 HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /b?y=2 HTTP/1.1\r\nHost: t\r\n\r\n";
  const std::vector<HttpRequest> want = ParseAll({stream});
  ASSERT_EQ(want.size(), 2u);
  // Every ordered pair of split points (coarser than the full sweep, but
  // covers chunk boundaries landing inside both requests at once).
  for (std::size_t a = 0; a <= stream.size(); a += 3) {
    for (std::size_t b = a; b <= stream.size(); b += 3) {
      const std::vector<HttpRequest> got = ParseAll(
          {stream.substr(0, a), stream.substr(a, b - a), stream.substr(b)});
      ExpectSameRequests(got, want, a * 1000 + b);
    }
  }
}

TEST(HttpKeepAliveTest, VersionDefaultsAndConnectionOverrides) {
  struct Case {
    const char* request;
    bool want_keep_alive;
  };
  const Case cases[] = {
      // HTTP/1.1 defaults to keep-alive.
      {"GET / HTTP/1.1\r\nHost: t\r\n\r\n", true},
      // HTTP/1.0 defaults to close.
      {"GET / HTTP/1.0\r\nHost: t\r\n\r\n", false},
      // Connection: close overrides the 1.1 default.
      {"GET / HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n", false},
      // Connection: keep-alive revives a 1.0 connection.
      {"GET / HTTP/1.0\r\nHost: t\r\nConnection: keep-alive\r\n\r\n", true},
      // Case-insensitive header name and value.
      {"GET / HTTP/1.1\r\nhost: t\r\nCONNECTION: Close\r\n\r\n", false},
  };
  for (const Case& c : cases) {
    HttpRequestParser parser;
    ASSERT_EQ(parser.Feed(c.request), HttpRequestParser::State::kComplete)
        << c.request;
    EXPECT_EQ(parser.TakeRequest().keep_alive, c.want_keep_alive)
        << c.request;
  }
}

TEST(HttpKeepAliveTest, ResponseEchoesNegotiatedConnection) {
  HttpResponse keep;
  keep.keep_alive = true;
  EXPECT_NE(keep.Serialize().find("Connection: keep-alive"),
            std::string::npos);
  HttpResponse close_it;
  close_it.keep_alive = false;
  EXPECT_NE(close_it.Serialize().find("Connection: close"),
            std::string::npos);
}

HttpRequest ParseOne(const std::string& wire) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Feed(wire), HttpRequestParser::State::kComplete);
  return parser.TakeRequest();
}

TEST(CanonicalQueryTest, SortsByKeyAndReencodes) {
  const HttpRequest request =
      ParseOne("GET /q?b=2&a=1&c=a%20b HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(request.CanonicalQuery(), "a=1&b=2&c=a%20b");
}

TEST(CanonicalQueryTest, ParameterOrderDoesNotMatter) {
  const HttpRequest x =
      ParseOne("GET /q?k=10&beta=3 HTTP/1.1\r\nHost: t\r\n\r\n");
  const HttpRequest y =
      ParseOne("GET /q?beta=3&k=10 HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(x.CanonicalQuery(), y.CanonicalQuery());
}

TEST(CanonicalQueryTest, EscapingVariantsCanonicalizeEqual) {
  // %34%32 is "42" — the decoded parameters are identical, so the
  // canonical forms must be too (the cache must not double-count them).
  const HttpRequest plain =
      ParseOne("GET /q?value=42 HTTP/1.1\r\nHost: t\r\n\r\n");
  const HttpRequest escaped =
      ParseOne("GET /q?value=%34%32 HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(plain.CanonicalQuery(), escaped.CanonicalQuery());
}

TEST(CanonicalQueryTest, DuplicateKeysKeepRequestOrder) {
  // First-wins semantics must survive the stable sort: the first `k` stays
  // first in the canonical form.
  const HttpRequest request =
      ParseOne("GET /q?k=1&a=0&k=2 HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(request.CanonicalQuery(), "a=0&k=1&k=2");
  EXPECT_EQ(request.QueryParam("k"), "1");
}

TEST(CanonicalQueryTest, ReservedBytesArePercentEncoded) {
  const HttpRequest request =
      ParseOne("GET /q?expr=a%2Bb%3Dc HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(request.CanonicalQuery(), "expr=a%2Bb%3Dc");
}

TEST(CanonicalQueryTest, EmptyQueryCanonicalizesEmpty) {
  const HttpRequest request =
      ParseOne("GET /distinct HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(request.CanonicalQuery(), "");
}

TEST(NoCacheTest, DirectiveDetection) {
  struct Case {
    const char* headers;
    bool want;
  };
  const Case cases[] = {
      {"", false},
      {"Cache-Control: no-cache\r\n", true},
      {"Cache-Control: No-Cache\r\n", true},
      {"Cache-Control: max-age=0, no-cache\r\n", true},
      {"Cache-Control: no-cache , private\r\n", true},
      // Substrings of other directives must not match.
      {"Cache-Control: no-cache-similar\r\n", false},
      {"Cache-Control: max-age=60\r\n", false},
      {"X-Cache-Control: no-cache\r\n", false},
  };
  for (const Case& c : cases) {
    const HttpRequest request = ParseOne(
        std::string("GET / HTTP/1.1\r\nHost: t\r\n") + c.headers + "\r\n");
    EXPECT_EQ(request.NoCache(), c.want) << c.headers;
  }
}

}  // namespace
}  // namespace aqua
