// EpochPump lifecycle plus the pump-mode serving contract: with
// external_refresh handed to the pump, no query thread ever executes a
// re-merge — inline_refreshes stays at its bootstrap value across churning
// ingest and concurrent queries.  The churn test doubles as the TSan
// stress for the pump thread racing Get()/InsertBatch (CI runs the
// EpochPump suite under ThreadSanitizer).

#include "server/epoch_pump.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/serving_engine.h"
#include "workload/generators.h"

namespace aqua {
namespace {

TEST(EpochPumpTest, StartStopLifecycleIsIdempotent) {
  std::atomic<bool> stale{false};
  std::atomic<int> settles{0};
  EpochPump pump(EpochPumpOptions{.interval = std::chrono::milliseconds(1)});
  pump.AddDomain(
      "d", [&stale] { return stale.load(std::memory_order_acquire); },
      [&stale, &settles] {
        settles.fetch_add(1, std::memory_order_relaxed);
        stale.store(false, std::memory_order_release);
      });
  EXPECT_FALSE(pump.running());
  pump.Start();
  pump.Start();  // idempotent
  EXPECT_TRUE(pump.running());

  stale.store(true, std::memory_order_release);
  for (int i = 0; i < 5000 && settles.load(std::memory_order_relaxed) == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(settles.load(std::memory_order_relaxed), 1);

  const EpochPump::Stats stats = pump.GetStats();
  EXPECT_EQ(stats.domains, 1u);
  EXPECT_GE(stats.ticks, 1);
  EXPECT_GE(stats.refreshes, 1);
  EXPECT_GE(stats.max_backlog, 1);

  pump.Stop();
  pump.Stop();  // idempotent
  EXPECT_FALSE(pump.running());
}

TEST(EpochPumpTest, QuiescentDomainTicksWithoutSettling) {
  std::atomic<int> settles{0};
  EpochPump pump(EpochPumpOptions{.interval = std::chrono::milliseconds(1)});
  pump.AddDomain(
      "idle", [] { return false; },
      [&settles] { settles.fetch_add(1, std::memory_order_relaxed); });
  pump.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pump.Stop();
  const EpochPump::Stats stats = pump.GetStats();
  EXPECT_GE(stats.ticks, 1);
  EXPECT_EQ(stats.refreshes, 0);
  EXPECT_EQ(stats.backlog, 0);
  EXPECT_EQ(settles.load(std::memory_order_relaxed), 0);
}

TEST(EpochPumpTest, EachDomainGetsItsOwnCadence) {
  // A slow domain's settle must not delay the fast domain's refreshes.
  std::atomic<int> fast_settles{0};
  std::atomic<int> slow_settles{0};
  EpochPump pump(EpochPumpOptions{.interval = std::chrono::milliseconds(1)});
  pump.AddDomain(
      "slow", [] { return true; },
      [&slow_settles] {
        slow_settles.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      });
  pump.AddDomain(
      "fast", [] { return true; },
      [&fast_settles] {
        fast_settles.fetch_add(1, std::memory_order_relaxed);
      });
  pump.Start();
  for (int i = 0;
       i < 5000 && (fast_settles.load(std::memory_order_relaxed) < 5 ||
                    slow_settles.load(std::memory_order_relaxed) < 1);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pump.Stop();
  EXPECT_GE(slow_settles.load(std::memory_order_relaxed), 1);
  EXPECT_GE(fast_settles.load(std::memory_order_relaxed), 5)
      << "fast domain was starved behind the slow domain's merge";
}

/// The acceptance criterion for --refresh-mode pump: across concurrent
/// ingest and queries, the pump owns every re-merge — the handles'
/// inline_refreshes counters never move past the warm-up value.
TEST(EpochPumpTest, PumpOwnsEveryRefreshUnderChurn) {
  ServingEngineOptions options;
  options.shards = 4;
  options.cache_max_stale_ops = 512;
  options.cache_max_stale_interval = std::chrono::milliseconds(2);
  options.external_refresh = true;
  ServingEngine engine(options);

  // Warm every snapshot cache from the maintenance path, so the inline
  // bootstrap never runs on a query thread.
  const std::vector<Value> seed_data = ZipfValues(4096, 500, 1.0, 42);
  engine.InsertBatch(seed_data);
  engine.SettleCaches();

  const auto inline_refreshes = [&engine] {
    std::int64_t total = 0;
    for (const SynopsisHandleStats& s : engine.GetStats().synopses) {
      total += s.cache.inline_refreshes;
    }
    return total;
  };
  ASSERT_EQ(inline_refreshes(), 0)
      << "SettleCaches() warm-up must count as external refreshes";
  const std::uint64_t warm_epoch = engine.ServingEpoch();

  EpochPump pump(EpochPumpOptions{.interval = std::chrono::milliseconds(1)});
  pump.AddDomain(
      "stream", [&engine] { return engine.AnyCacheStale(); },
      [&engine] { engine.SettleCaches(); });
  pump.Start();

  constexpr int kIngestThreads = 2;
  constexpr int kQueryThreads = 2;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kIngestThreads; ++t) {
    threads.emplace_back([&engine, t] {
      for (int batch = 0; batch < 40; ++batch) {
        const std::vector<Value> data = ZipfValues(
            1024, 500, 1.0,
            1000 + 31ULL * static_cast<std::uint64_t>(t) +
                static_cast<std::uint64_t>(batch));
        engine.InsertBatch(data);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&engine, &done] {
      HotListQuery hot;
      hot.k = 10;
      while (!done.load(std::memory_order_acquire)) {
        (void)engine.HotListAnswer(hot);
        (void)engine.FrequencyAnswer(7);
        (void)engine.QuantileAnswer(0.5);
        (void)engine.DistinctValuesAnswer();
      }
    });
  }
  for (int t = 0; t < kIngestThreads; ++t) threads[t].join();
  done.store(true, std::memory_order_release);
  for (int t = kIngestThreads; t < kIngestThreads + kQueryThreads; ++t) {
    threads[t].join();
  }
  pump.Stop();

  EXPECT_EQ(inline_refreshes(), 0)
      << "a query thread executed a re-merge in pump mode";
  EXPECT_GT(engine.ServingEpoch(), warm_epoch)
      << "the pump never advanced an epoch during the churn";
  std::int64_t external = 0;
  for (const SynopsisHandleStats& s : engine.GetStats().synopses) {
    external += s.cache.external_refreshes;
  }
  EXPECT_GT(external, 0);
  EXPECT_GT(pump.GetStats().refreshes, 0);
}

}  // namespace
}  // namespace aqua
