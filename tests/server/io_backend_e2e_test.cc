// Cross-backend equivalence, end to end: the same aqua_serve workload is
// served once under --io-backend epoll and once under --io-backend
// io_uring, and every route in the table must answer byte-identically
// (modulo the volatile response_ns metric).  The transport is supposed to
// be invisible to the HTTP surface; this is the test that keeps it so.
//
// On kernels without io_uring support the io_uring server falls back to
// epoll with a warning — the comparison still holds (both sides then run
// epoll), and the /stats assertions adapt via a live IoUringAvailable()
// probe.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "e2e_util.h"
#include "server/io_backend.h"

namespace aqua {
namespace {

using e2e::Fetch;
using e2e::Post;
using e2e::RawResponse;
using e2e::ServerProcess;
using e2e::StripResponseNs;

std::vector<std::string> ServeArgs(const std::string& backend) {
  return {"--io-backend", backend,        "--reactors", "2",
          "--workers",    "2",            "--attr",     "price",
          "--preload-zipf", "20000,500,1.0,424242"};
}

// Every GET route both servers must answer identically.  Deterministic by
// construction: same preload seed, same synopsis seeds, no ingest between
// requests.
const std::vector<std::string>& GetTargets() {
  static const std::vector<std::string> targets = {
      "/healthz",
      "/hotlist?k=10&beta=2.0",
      "/frequency?value=1",
      "/count_where?low=1&high=100",
      "/quantile?q=0.5",
      "/distinct",
      "/attr/price/hotlist?k=5&beta=2.0",
      "/attr/price/frequency?value=3",
      "/attr/price/count_where?low=0&high=50",
      "/attr/price/quantile?q=0.5",
      "/attr/price/distinct",
      // (no /stats or /attr/.../stats here: those embed wall-clock metrics
      // — view_build_ns, latency EWMAs — that legitimately differ)
      "/query?q=SELECT%20APPROX(COUNT(*))%20FROM%20stream"
      "%20WHERE%20v%20BETWEEN%201%20AND%20100",
      "/query?q=SELECT%20APPROX(TOP(5))%20FROM%20stream",
      "/query?q=SELECT%20APPROX(MEDIAN)%20FROM%20stream",
      "/query?q=SELECT%20APPROX(COUNT(DISTINCT%20*))%20FROM%20stream",
      "/does-not-exist",
  };
  return targets;
}

TEST(IoBackendE2e, FullRouteTableIsByteIdenticalAcrossBackends) {
  ServerProcess epoll_server(ServeArgs("epoll"));
  ASSERT_GT(epoll_server.port(), 0);
  ServerProcess uring_server(ServeArgs("io_uring"));
  ASSERT_GT(uring_server.port(), 0);

  for (const std::string& target : GetTargets()) {
    // Twice per target: the second answer comes from the response cache on
    // cacheable routes, so both the cold render and the cached replay are
    // cross-checked.
    for (int round = 0; round < 2; ++round) {
      const RawResponse a = Fetch(epoll_server.port(), target);
      const RawResponse b = Fetch(uring_server.port(), target);
      ASSERT_EQ(a.status, b.status) << target << " round " << round;
      EXPECT_EQ(StripResponseNs(a.body), StripResponseNs(b.body))
          << target << " round " << round;
    }
  }

  // Mutating path: the same ingest against both, then re-compare a query.
  const std::string batch = "[7,7,7,7,7,7,7,7,9,9]";
  const RawResponse ia = Post(epoll_server.port(), "/ingest", batch);
  const RawResponse ib = Post(uring_server.port(), "/ingest", batch);
  ASSERT_EQ(ia.status, 200);
  ASSERT_EQ(ib.status, 200);
  EXPECT_EQ(StripResponseNs(ia.body), StripResponseNs(ib.body));
  const RawResponse qa = Fetch(epoll_server.port(), "/frequency?value=7");
  const RawResponse qb = Fetch(uring_server.port(), "/frequency?value=7");
  EXPECT_EQ(StripResponseNs(qa.body), StripResponseNs(qb.body));

  EXPECT_EQ(epoll_server.TerminateAndWait(), 0);
  EXPECT_EQ(uring_server.TerminateAndWait(), 0);
}

TEST(IoBackendE2e, StatsReportTheBackendActuallyRunning) {
  {
    ServerProcess server(
        {"--io-backend", "epoll", "--reactors", "1", "--pin-cores"});
    const RawResponse stats = Fetch(server.port(), "/stats");
    ASSERT_EQ(stats.status, 200);
    EXPECT_NE(stats.body.find("\"io_backend\":\"epoll\""), std::string::npos)
        << stats.body;
    // Pinning is best-effort but loopback CI machines always have CPU 0.
    EXPECT_NE(stats.body.find("\"reactors_pinned\":1"), std::string::npos)
        << stats.body;
    EXPECT_EQ(server.TerminateAndWait(), 0);
  }
  {
    ServerProcess server({"--io-backend", "io_uring", "--reactors", "1"});
    const RawResponse stats = Fetch(server.port(), "/stats");
    ASSERT_EQ(stats.status, 200);
    // The subprocess probes the same kernel this test process sees, so the
    // in-process probe predicts whether it fell back.
    std::string reason;
    const char* expected = IoUringAvailable(&reason)
                               ? "\"io_backend\":\"io_uring\""
                               : "\"io_backend\":\"epoll\"";
    EXPECT_NE(stats.body.find(expected), std::string::npos)
        << stats.body << " (probe reason: " << reason << ")";
    // The transport counters move regardless of backend.
    EXPECT_NE(stats.body.find("\"syscalls\":"), std::string::npos);
    EXPECT_NE(stats.body.find("\"zero_copy_sends\":"), std::string::npos);
    EXPECT_EQ(server.TerminateAndWait(), 0);
  }
}

TEST(IoBackendE2e, ParseIoBackendKindAcceptsKnownSpellingsOnly) {
  IoBackendKind kind = IoBackendKind::kEpoll;
  EXPECT_TRUE(ParseIoBackendKind("epoll", &kind));
  EXPECT_EQ(kind, IoBackendKind::kEpoll);
  EXPECT_TRUE(ParseIoBackendKind("io_uring", &kind));
  EXPECT_EQ(kind, IoBackendKind::kIoUring);
  EXPECT_TRUE(ParseIoBackendKind("iouring", &kind));
  EXPECT_EQ(kind, IoBackendKind::kIoUring);
  EXPECT_TRUE(ParseIoBackendKind("uring", &kind));
  EXPECT_EQ(kind, IoBackendKind::kIoUring);
  EXPECT_FALSE(ParseIoBackendKind("kqueue", &kind));
  EXPECT_FALSE(ParseIoBackendKind("", &kind));
}

}  // namespace
}  // namespace aqua
