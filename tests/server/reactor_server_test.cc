// In-process tests of the multi-reactor HttpServer: N SO_REUSEPORT
// reactors serving concurrent clients, inline-vs-worker dispatch on one
// pipelined connection, and the epoch-keyed response cache observed
// through real sockets (byte-identical replay within an epoch, wholesale
// invalidation on epoch swap, Cache-Control: no-cache bypass, and the
// unsettled-epoch forced miss).
//
// Suites are named Reactor* so the ThreadSanitizer CI job runs them: the
// stress test races cached reads on every reactor against epoch bumps.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/server.h"

namespace aqua {
namespace {

// Retries transient connect failures: under TSan on a loaded host the
// reactors can be slow enough to accept that the kernel refuses briefly.
// A connect that never succeeds still fails the caller's assertions.
int ConnectTo(std::uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  int fd = -1;
  for (int attempt = 0; attempt < 5; ++attempt) {
    fd = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    close(fd);
    fd = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10 << attempt));
  }
  EXPECT_GE(fd, 0) << "connect failed after retries: " << strerror(errno);
  return fd;
}

void SendWire(int fd, const std::string& wire) {
  ASSERT_EQ(write(fd, wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
}

std::string Request(const std::string& method, const std::string& target,
                    const std::string& extra_headers = "",
                    const std::string& body = "") {
  std::string wire = method + " " + target + " HTTP/1.1\r\nHost: t\r\n";
  if (!body.empty()) {
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  return wire + extra_headers + "\r\n" + body;
}

/// One complete response off a keep-alive connection: reads headers, then
/// exactly Content-Length body bytes, leaving the stream positioned at the
/// next pipelined response.
struct OneResponse {
  int status = 0;
  std::string wire;  // status line + headers + body, verbatim
  std::string body;
  bool ok = false;
};

/// `carry` holds bytes read past the returned response's frame (a
/// pipelined burst can land several responses in one read); pass the same
/// string for every read off one connection.
OneResponse ReadOne(int fd, std::string* carry = nullptr) {
  OneResponse response;
  std::string raw = carry != nullptr ? std::move(*carry) : std::string();
  if (carry != nullptr) carry->clear();
  char buf[4096];
  std::size_t blank = raw.find("\r\n\r\n");
  while (blank == std::string::npos) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (poll(&pfd, 1, 15000) <= 0) return response;
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) return response;
    raw.append(buf, static_cast<std::size_t>(n));
    blank = raw.find("\r\n\r\n");
  }
  const std::string lower_key = "content-length:";
  std::size_t content_length = 0;
  for (std::size_t at = 0; at < blank;) {
    std::size_t eol = raw.find("\r\n", at);
    std::string line = raw.substr(at, eol - at);
    for (char& c : line) c = static_cast<char>(std::tolower(c));
    if (line.rfind(lower_key, 0) == 0) {
      content_length = std::stoul(line.substr(lower_key.size()));
    }
    at = eol + 2;
  }
  const std::size_t total = blank + 4 + content_length;
  while (raw.size() < total) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (poll(&pfd, 1, 15000) <= 0) return response;
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) return response;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  if (raw.rfind("HTTP/1.1 ", 0) == 0) {
    response.status = std::stoi(raw.substr(9, 3));
  }
  response.wire = raw.substr(0, total);
  response.body = raw.substr(blank + 4, content_length);
  if (carry != nullptr) *carry = raw.substr(total);
  response.ok = true;
  return response;
}

OneResponse FetchOnce(std::uint16_t port, const std::string& target,
                      const std::string& extra_headers = "") {
  const int fd = ConnectTo(port);
  SendWire(fd, Request("GET", target, extra_headers + "Connection: close\r\n"));
  OneResponse response = ReadOne(fd);
  close(fd);
  return response;
}

TEST(ReactorServerTest, ConcurrentClientsAcrossReactors) {
  HttpServerOptions options;
  options.reactors = 4;
  options.workers = 2;
  HttpServer server(options);

  std::atomic<std::int64_t> sum{0};
  server.Route("GET", "/ping",
               [](const HttpRequest&) {
                 HttpResponse r;
                 r.body = "pong";
                 return r;
               });
  server.Route("POST", "/add", [&sum](const HttpRequest& request) {
    sum.fetch_add(std::stoll(std::string(request.body)), std::memory_order_relaxed);
    HttpResponse r;
    r.body = "ok";
    return r;
  });
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&server, &failures, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int fd = ConnectTo(server.port());
        if (i % 2 == 0) {
          SendWire(fd, Request("GET", "/ping", "Connection: close\r\n"));
          const OneResponse r = ReadOne(fd);
          if (!r.ok || r.status != 200 || r.body != "pong") {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          SendWire(fd, Request("POST", "/add", "Connection: close\r\n",
                               std::to_string(t + 1)));
          const OneResponse r = ReadOne(fd);
          if (!r.ok || r.status != 200) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
        close(fd);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  // Each thread t posted (t+1) ten times.
  std::int64_t want = 0;
  for (int t = 0; t < kThreads; ++t) want += (t + 1) * (kPerThread / 2);
  EXPECT_EQ(sum.load(), want);

  const HttpServer::ServerStats stats = server.Stats();
  EXPECT_EQ(stats.reactors, 4u);
  EXPECT_EQ(stats.requests, kThreads * kPerThread);
  server.Shutdown();
}

TEST(ReactorServerTest, PipelinedConnectionMixesInlineAndWorkerRoutes) {
  HttpServerOptions options;
  options.reactors = 2;
  options.workers = 1;
  HttpServer server(options);
  std::atomic<int> posts{0};
  server.Route("GET", "/a", [](const HttpRequest&) {
    HttpResponse r;
    r.body = "AA";
    return r;
  });
  server.Route("POST", "/b", [&posts](const HttpRequest& request) {
    posts.fetch_add(1, std::memory_order_relaxed);
    HttpResponse r;
    r.body = std::string("B:").append(request.body);
    return r;
  });
  ASSERT_TRUE(server.Start().ok());

  // One keep-alive connection, three requests written in a single burst:
  // inline, worker, inline.  The worker hop hands the connection back to
  // its owning reactor, which must then drain the already-buffered third
  // request.  Responses must come back complete and in order.
  const int fd = ConnectTo(server.port());
  SendWire(fd, Request("GET", "/a") + Request("POST", "/b", "", "x") +
                   Request("GET", "/a", "Connection: close\r\n"));
  std::string carry;
  const OneResponse first = ReadOne(fd, &carry);
  const OneResponse second = ReadOne(fd, &carry);
  const OneResponse third = ReadOne(fd, &carry);
  close(fd);

  ASSERT_TRUE(first.ok && second.ok && third.ok);
  EXPECT_EQ(first.body, "AA");
  EXPECT_EQ(second.body, "B:x");
  EXPECT_EQ(third.body, "AA");
  EXPECT_EQ(posts.load(), 1);
  server.Shutdown();
}

TEST(ReactorServerTest, CacheReplaysBytesWithinEpochAndInvalidatesOnSwap) {
  HttpServerOptions options;
  options.reactors = 2;
  HttpServer server(options);

  std::atomic<std::uint64_t> epoch{1};
  std::atomic<int> renders{0};
  RouteOptions cacheable;
  cacheable.cacheable = true;
  server.Route("GET", "/render",
               [&renders](const HttpRequest&) {
                 HttpResponse r;
                 r.body =
                     "render-" + std::to_string(renders.fetch_add(1,
                                     std::memory_order_relaxed));
                 return r;
               },
               cacheable);
  server.SetEpochSource(
      [&epoch]() -> std::optional<std::uint64_t> { return epoch.load(); });
  ASSERT_TRUE(server.Start().ok());

  // Same keep-alive connection -> same reactor -> same per-reactor cache.
  const int fd = ConnectTo(server.port());
  SendWire(fd, Request("GET", "/render?k=1&b=2"));
  const OneResponse miss = ReadOne(fd);
  // Equivalent query spelled differently: reordered keys, escaped digit.
  SendWire(fd, Request("GET", "/render?b=%32&k=1"));
  const OneResponse hit = ReadOne(fd);
  ASSERT_TRUE(miss.ok && hit.ok);
  EXPECT_EQ(miss.body, "render-0");
  // Byte-identical replay of the first render: the handler never ran.
  EXPECT_EQ(hit.wire, miss.wire);
  EXPECT_EQ(renders.load(), 1);

  // no-cache bypasses: a fresh render, and the cache entry is untouched.
  SendWire(fd, Request("GET", "/render?k=1&b=2", "Cache-Control: no-cache\r\n"));
  const OneResponse bypass = ReadOne(fd);
  ASSERT_TRUE(bypass.ok);
  EXPECT_EQ(bypass.body, "render-1");
  SendWire(fd, Request("GET", "/render?k=1&b=2"));
  EXPECT_EQ(ReadOne(fd).wire, miss.wire);

  // Epoch swap: the cached bytes must not survive.
  epoch.store(2);
  SendWire(fd, Request("GET", "/render?k=1&b=2"));
  const OneResponse fresh = ReadOne(fd);
  ASSERT_TRUE(fresh.ok);
  EXPECT_EQ(fresh.body, "render-2");
  // And the new epoch caches again.
  SendWire(fd, Request("GET", "/render?k=1&b=2", "Connection: close\r\n"));
  // The close request has a different cache key (the wire embeds the
  // Connection header), so it renders rather than replaying.
  const OneResponse closing = ReadOne(fd);
  ASSERT_TRUE(closing.ok);
  EXPECT_EQ(closing.body, "render-3");
  close(fd);

  const HttpServer::ServerStats stats = server.Stats();
  EXPECT_GE(stats.cache_hits, 2);
  EXPECT_GE(stats.cache_misses, 3);
  EXPECT_EQ(stats.cache_bypass, 1);
  EXPECT_GE(stats.cache_invalidations, 1);
  server.Shutdown();
}

TEST(ReactorServerTest, UnsettledEpochForcesHandlerToRun) {
  HttpServerOptions options;
  options.reactors = 1;
  HttpServer server(options);
  std::atomic<bool> settled{false};
  std::atomic<int> renders{0};
  RouteOptions cacheable;
  cacheable.cacheable = true;
  server.Route("GET", "/r",
               [&renders](const HttpRequest&) {
                 HttpResponse r;
                 r.body = std::to_string(
                     renders.fetch_add(1, std::memory_order_relaxed));
                 return r;
               },
               cacheable);
  server.SetEpochSource([&settled]() -> std::optional<std::uint64_t> {
    if (!settled.load()) return std::nullopt;
    return 5;
  });
  ASSERT_TRUE(server.Start().ok());

  // Unsettled epoch: every request renders (the handler is what refreshes
  // the underlying snapshot in production, so it MUST run).
  EXPECT_EQ(FetchOnce(server.port(), "/r").body, "0");
  EXPECT_EQ(FetchOnce(server.port(), "/r").body, "1");
  const HttpServer::ServerStats before = server.Stats();
  EXPECT_EQ(before.cache_hits, 0);
  EXPECT_EQ(before.cache_misses, 2);

  // Settled: second fetch replays the first's bytes.
  settled.store(true);
  const OneResponse a = FetchOnce(server.port(), "/r");
  const OneResponse b = FetchOnce(server.port(), "/r");
  EXPECT_EQ(a.wire, b.wire);
  EXPECT_EQ(renders.load(), 3);
  server.Shutdown();
}

TEST(ReactorStress, CachedReadsRaceEpochBumps) {
  HttpServerOptions options;
  options.reactors = 4;
  options.workers = 2;
  HttpServer server(options);

  std::atomic<std::uint64_t> epoch{1};
  RouteOptions cacheable;
  cacheable.cacheable = true;
  // The body embeds the epoch observed by the handler; a correctly
  // bracketed cache can only replay bytes whose embedded epoch matches
  // the epoch the entry is stored under, so a reader can never observe a
  // NEWER epoch's key serving an OLDER epoch's bytes after a bump it
  // itself performed earlier (writes and reads here are sequential per
  // client thread; cross-thread mixes are exercised for TSan, not
  // asserted on).
  server.Route("GET", "/e",
               [&epoch](const HttpRequest&) {
                 HttpResponse r;
                 r.body = std::to_string(epoch.load());
                 return r;
               },
               cacheable);
  server.SetEpochSource(
      [&epoch]() -> std::optional<std::uint64_t> { return epoch.load(); });
  ASSERT_TRUE(server.Start().ok());

  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&server, &failures, &stop] {
      const int fd = ConnectTo(server.port());
      for (int i = 0; i < 50 && !stop.load(std::memory_order_relaxed); ++i) {
        SendWire(fd, Request("GET", "/e"));
        const OneResponse r = ReadOne(fd);
        if (!r.ok || r.status != 200) {
          failures.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
      close(fd);
    });
  }
  std::thread bumper([&epoch, &stop] {
    for (int i = 0; i < 200 && !stop.load(std::memory_order_relaxed); ++i) {
      epoch.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });
  for (std::thread& t : readers) t.join();
  stop.store(true);
  bumper.join();

  EXPECT_EQ(failures.load(), 0);
  server.Shutdown();
}

}  // namespace
}  // namespace aqua
