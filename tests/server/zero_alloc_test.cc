// End-to-end zero-allocation pin for the GET serving path: this TU
// replaces the global operator new/delete with counting versions, runs a
// real HttpServer (one reactor) in-process, and asserts that a warmed GET
// request — socket read, parse, route, answer, JSON render, serialize,
// write — touches the allocator exactly zero times, for every GET route on
// both the single-relation and catalog surfaces, including the planned
// /query route (SQL parse, plan, execute, render).
//
// Response caching is deliberately NOT wired (no epoch source), so every
// measured request exercises the full cold render path; the cache hit path
// has its own pin in response_cache_test.cc.  The client side of the loop
// is also allocation-free (prebuilt request strings, fixed read buffer) so
// the counter isolates the serving path without thread bookkeeping.

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/io_backend.h"
#include "server/routes.h"
#include "server/server.h"
#include "server/serving_engine.h"
#include "warehouse/catalog.h"

namespace {
std::atomic<std::int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace aqua {
namespace {

constexpr std::size_t kReadBufferBytes = 64 * 1024;

int ConnectTo(std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << strerror(errno);
  return fd;
}

/// Writes one prebuilt request and reads exactly one Content-Length-framed
/// response into `buf`, allocation-free.  Returns the HTTP status code, or
/// -1 on a short read / timeout / overflow.
int RoundTrip(int fd, const std::string& wire, char* buf) {
  if (write(fd, wire.data(), wire.size()) !=
      static_cast<ssize_t>(wire.size())) {
    return -1;
  }
  std::size_t have = 0;
  const char* blank = nullptr;
  // Head first: read until the header terminator is in the buffer.
  while (blank == nullptr) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (poll(&pfd, 1, 15000) <= 0) return -1;
    const ssize_t n = read(fd, buf + have, kReadBufferBytes - have);
    if (n <= 0) return -1;
    have += static_cast<std::size_t>(n);
    if (have >= kReadBufferBytes) return -1;
    if (have >= 4) {
      // memmem is glibc; a manual scan keeps this portable and alloc-free.
      for (std::size_t at = 0; at + 4 <= have; ++at) {
        if (std::memcmp(buf + at, "\r\n\r\n", 4) == 0) {
          blank = buf + at;
          break;
        }
      }
    }
  }
  // The server always writes an exact-case Content-Length header.
  constexpr char kKey[] = "Content-Length:";
  constexpr std::size_t kKeyLen = sizeof(kKey) - 1;
  std::size_t content_length = 0;
  bool found = false;
  const std::size_t head_len = static_cast<std::size_t>(blank - buf);
  for (std::size_t at = 0; at + kKeyLen <= head_len; ++at) {
    if (std::memcmp(buf + at, kKey, kKeyLen) == 0) {
      std::size_t digit = at + kKeyLen;
      while (digit < head_len && buf[digit] == ' ') ++digit;
      while (digit < head_len && buf[digit] >= '0' && buf[digit] <= '9') {
        content_length = content_length * 10 +
                         static_cast<std::size_t>(buf[digit] - '0');
        ++digit;
      }
      found = true;
      break;
    }
  }
  if (!found) return -1;
  const std::size_t total = head_len + 4 + content_length;
  if (total > kReadBufferBytes) return -1;
  while (have < total) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (poll(&pfd, 1, 15000) <= 0) return -1;
    const ssize_t n = read(fd, buf + have, kReadBufferBytes - have);
    if (n <= 0) return -1;
    have += static_cast<std::size_t>(n);
  }
  if (have != total) return -1;  // pipelined bytes would mean a bug here
  if (std::memcmp(buf, "HTTP/1.1 ", 9) != 0) return -1;
  return (buf[9] - '0') * 100 + (buf[10] - '0') * 10 + (buf[11] - '0');
}

std::string KeepAliveGet(const std::string& target) {
  return "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n";
}

/// Parameterized over the IO backend so the allocation-free guarantee is
/// pinned against both transports: epoll (writev + EPOLLOUT parking) and
/// io_uring (provided-buffer receives, ring-submitted sends).
class ZeroAllocServing : public ::testing::TestWithParam<IoBackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == IoBackendKind::kIoUring) {
      std::string reason;
      if (!IoUringAvailable(&reason)) {
        GTEST_SKIP() << "io_uring unavailable: " << reason;
      }
    }
  }
};

INSTANTIATE_TEST_SUITE_P(
    IoBackends, ZeroAllocServing,
    ::testing::Values(IoBackendKind::kEpoll, IoBackendKind::kIoUring),
    [](const ::testing::TestParamInfo<IoBackendKind>& info) {
      return std::string(IoBackendKindName(info.param));
    });

TEST_P(ZeroAllocServing, EveryGetRouteIsAllocationFreeOnceWarm) {
  // Staleness bounds far beyond the test horizon: after the warm-up
  // queries refresh each snapshot cache once, no refresh (and no epoch
  // advance) happens mid-measurement.  No ingest runs after Start, so the
  // op-count bound is idle anyway; the interval bound is the live one.
  ServingEngineOptions engine_options;
  engine_options.shards = 2;
  engine_options.cache_max_stale_ops =
      std::numeric_limits<std::int64_t>::max();
  engine_options.cache_max_stale_interval = std::chrono::hours(24);
  ServingEngine engine(engine_options);

  CatalogOptions catalog_options;
  catalog_options.shards = 1;
  catalog_options.cache_max_stale_ops =
      std::numeric_limits<std::int64_t>::max();
  catalog_options.cache_max_stale_interval = std::chrono::hours(24);
  SynopsisCatalog catalog(/*total_budget_words=*/64 * 1024, catalog_options);
  ASSERT_TRUE(catalog.RegisterAttribute("price").ok());
  ASSERT_TRUE(catalog.Seal().ok());

  std::vector<Value> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) values.push_back(i % 97);
  engine.InsertBatch(values);
  ASSERT_TRUE(catalog.InsertBatch("price", values).ok());

  HttpServerOptions server_options;
  server_options.reactors = 1;
  server_options.workers = 1;
  server_options.io_backend = GetParam();
  HttpServer server(server_options);
  RegisterServingRoutes(server, engine);
  RegisterCatalogRoutes(server, catalog);
  RegisterQueryRoutes(server, engine, &catalog);
  // Deliberately no InstallEpochSource: with caching disabled, every
  // measured request renders cold — the stronger guarantee.
  ASSERT_TRUE(server.Start().ok());
  ASSERT_EQ(server.io_backend(), GetParam());

  const std::vector<std::string> targets = {
      "/healthz",
      "/hotlist?k=5&beta=2.0",
      "/frequency?value=3",
      "/count_where?low=0&high=50",
      "/quantile?q=0.5",
      "/distinct",
      "/stats",
      "/attr/price/hotlist?k=5&beta=2.0",
      "/attr/price/frequency?value=3",
      "/attr/price/count_where?low=0&high=50",
      "/attr/price/quantile?q=0.5",
      "/attr/price/distinct",
      "/attr/price/stats",
      // Planned queries: every kind through the SQL frontend, unbounded
      // and bounded, over both the stream and a catalog attribute.  The
      // statements avoid '%' spellings so the request targets stay
      // readable (percent-escapes only encode spaces).
      "/query?q=SELECT%20APPROX(COUNT(*))%20FROM%20stream"
      "%20WHERE%20v%20BETWEEN%200%20AND%2050",
      "/query?q=SELECT%20APPROX(COUNT(*))%20FROM%20stream"
      "%20WHERE%20v%20BETWEEN%200%20AND%2050"
      "%20ERROR%200.02%20CONFIDENCE%200.95",
      "/query?q=SELECT%20APPROX(TOP(5))%20FROM%20stream%20WITHIN%201ms",
      "/query?q=SELECT%20APPROX(COUNT(DISTINCT%20*))%20FROM%20stream",
      "/query?q=SELECT%20APPROX(MEDIAN)%20FROM%20stream",
      "/query?q=SELECT%20APPROX(FREQUENCY(3))%20FROM%20price",
      "/query?q=SELECT%20APPROX(QUANTILE(0.9))%20FROM%20price"
      "%20WITHIN%202ms%20CONFIDENCE%200.99",
  };
  std::vector<std::string> wires;
  wires.reserve(targets.size());
  for (const std::string& target : targets) {
    wires.push_back(KeepAliveGet(target));
  }

  static char buf[kReadBufferBytes];
  const int fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);

  // Warm-up: every route shape several times over the one connection, so
  // snapshot caches refresh, thread-local answer scratch reaches its final
  // capacity, and the reactor's response/head scratch grows to cover the
  // largest body it will serve.
  constexpr int kWarmRounds = 5;
  for (int round = 0; round < kWarmRounds; ++round) {
    for (std::size_t t = 0; t < targets.size(); ++t) {
      ASSERT_EQ(RoundTrip(fd, wires[t], buf), 200)
          << "warm-up " << targets[t];
    }
  }

  // Measure per route so a regression names the allocating endpoint.
  constexpr int kMeasuredRounds = 20;
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const std::int64_t before =
        g_allocations.load(std::memory_order_relaxed);
    int bad_status = 0;
    for (int round = 0; round < kMeasuredRounds; ++round) {
      const int status = RoundTrip(fd, wires[t], buf);
      if (status != 200 && bad_status == 0) bad_status = status;
    }
    const std::int64_t delta =
        g_allocations.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(bad_status, 0) << targets[t];
    EXPECT_EQ(delta, 0) << targets[t] << " allocated " << delta
                        << " times over " << kMeasuredRounds << " requests";
  }

  close(fd);
  server.Shutdown();
}

TEST_P(ZeroAllocServing, CachedHitPathIsAllocationFreeOnBothBackends) {
  // With an epoch source installed, cacheable GETs replay from the
  // ResponseCache once warm.  On epoll a hit is a hash probe + writev from
  // the cached wire; on io_uring the hit pins the cache entry's shared_ptr
  // (a refcount bump, not an allocation) and ring-submits the bytes in
  // place.  Both must be allocation-free per hit.
  ServingEngineOptions engine_options;
  engine_options.shards = 2;
  engine_options.cache_max_stale_ops =
      std::numeric_limits<std::int64_t>::max();
  engine_options.cache_max_stale_interval = std::chrono::hours(24);
  ServingEngine engine(engine_options);
  std::vector<Value> values;
  values.reserve(10000);
  for (int i = 0; i < 10000; ++i) values.push_back(i % 53);
  engine.InsertBatch(values);

  HttpServerOptions server_options;
  server_options.reactors = 1;
  server_options.workers = 1;
  server_options.io_backend = GetParam();
  HttpServer server(server_options);
  RegisterServingRoutes(server, engine);
  RegisterQueryRoutes(server, engine, nullptr);
  InstallEpochSource(server, engine, nullptr);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_EQ(server.io_backend(), GetParam());

  const std::vector<std::string> targets = {
      "/hotlist?k=5&beta=2.0",
      "/frequency?value=3",
      "/count_where?low=0&high=50",
      "/quantile?q=0.5",
      "/distinct",
  };
  std::vector<std::string> wires;
  wires.reserve(targets.size());
  for (const std::string& target : targets) {
    wires.push_back(KeepAliveGet(target));
  }

  static char buf[kReadBufferBytes];
  const int fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);
  constexpr int kWarmRounds = 5;
  for (int round = 0; round < kWarmRounds; ++round) {
    for (std::size_t t = 0; t < targets.size(); ++t) {
      ASSERT_EQ(RoundTrip(fd, wires[t], buf), 200) << "warm-up " << targets[t];
    }
  }

  const HttpServer::ServerStats warm = server.Stats();
  constexpr int kMeasuredRounds = 20;
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const std::int64_t before = g_allocations.load(std::memory_order_relaxed);
    int bad_status = 0;
    for (int round = 0; round < kMeasuredRounds; ++round) {
      const int status = RoundTrip(fd, wires[t], buf);
      if (status != 200 && bad_status == 0) bad_status = status;
    }
    const std::int64_t delta =
        g_allocations.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(bad_status, 0) << targets[t];
    EXPECT_EQ(delta, 0) << targets[t] << " allocated " << delta
                        << " times over " << kMeasuredRounds
                        << " cached requests";
  }

  // The measured window really was the hit path.
  const HttpServer::ServerStats stats = server.Stats();
  EXPECT_GE(stats.cache_hits - warm.cache_hits,
            static_cast<std::int64_t>(targets.size()) * kMeasuredRounds);

  close(fd);
  server.Shutdown();
}

}  // namespace
}  // namespace aqua
