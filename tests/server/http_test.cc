// Unit tests for the serving layer's protocol pieces: the incremental
// HTTP/1.1 request parser against hostile and fragmented inputs, response
// serialization, the streaming JSON writer, and the ingest-body value
// parser.  These run in-process (no sockets); the end-to-end server path is
// covered by serve_e2e_test.cc.

#include <limits>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "server/http.h"
#include "server/json.h"

namespace aqua {
namespace {

HttpRequestParser::Limits SmallLimits() {
  HttpRequestParser::Limits limits;
  limits.max_header_bytes = 256;
  limits.max_body_bytes = 64;
  return limits;
}

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpRequestParser parser;
  const auto state =
      parser.Feed("GET /hotlist?k=10&beta=3.0 HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_EQ(state, HttpRequestParser::State::kComplete);
  const HttpRequest request = parser.TakeRequest();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/hotlist");
  EXPECT_EQ(request.QueryParam("k"), "10");
  EXPECT_EQ(request.QueryInt("k", 0), 10);
  EXPECT_EQ(request.QueryDouble("beta", 0.0), 3.0);
  EXPECT_TRUE(request.keep_alive);  // HTTP/1.1 default
  EXPECT_EQ(request.Header("host"), "x");  // case-insensitive
}

TEST(HttpParserTest, ByteAtATimeFeedCompletes) {
  const std::string wire =
      "POST /ingest HTTP/1.1\r\nContent-Length: 5\r\n\r\n1 2 3";
  HttpRequestParser parser;
  HttpRequestParser::State state = HttpRequestParser::State::kNeedMore;
  for (const char c : wire) {
    state = parser.Feed(std::string_view(&c, 1));
  }
  ASSERT_EQ(state, HttpRequestParser::State::kComplete);
  const HttpRequest request = parser.TakeRequest();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.body, "1 2 3");
}

TEST(HttpParserTest, PipelinedRequestsReparse) {
  HttpRequestParser parser;
  const auto state = parser.Feed(
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
  ASSERT_EQ(state, HttpRequestParser::State::kComplete);
  EXPECT_EQ(parser.TakeRequest().path, "/a");
  ASSERT_EQ(parser.Reparse(), HttpRequestParser::State::kComplete);
  EXPECT_EQ(parser.TakeRequest().path, "/b");
  EXPECT_EQ(parser.Reparse(), HttpRequestParser::State::kNeedMore);
}

TEST(HttpParserTest, PercentDecoding) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed("GET /p%20q?a%3db=%2Fv HTTP/1.1\r\n\r\n"),
            HttpRequestParser::State::kComplete);
  const HttpRequest request = parser.TakeRequest();
  EXPECT_EQ(request.path, "/p q");
  EXPECT_EQ(request.QueryParam("a=b"), "/v");
}

TEST(HttpParserTest, MalformedInputsError) {
  const char* kBad[] = {
      "GET\r\n\r\n",                                // no target/version
      "GET / HTTP/2.0\r\n\r\n",                     // unsupported version
      "GET / HTTP/1.1 extra\r\n\r\n",               // junk after version
      "GET /%zz HTTP/1.1\r\n\r\n",                  // bad escape
      "GET /%2 HTTP/1.1\r\n\r\n",                   // truncated escape
      "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",      // header without colon
      "GET / HTTP/1.1\r\n: empty-name\r\n\r\n",     // empty header name
      "GET / HTTP/1.1\r\nA: b\r\n folded\r\n\r\n",  // obs-fold
      "GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
      "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
  };
  for (const char* wire : kBad) {
    HttpRequestParser parser;
    EXPECT_EQ(parser.Feed(wire), HttpRequestParser::State::kError) << wire;
  }
}

TEST(HttpParserTest, OversizedHeaderSectionErrors) {
  HttpRequestParser parser(SmallLimits());
  std::string wire = "GET / HTTP/1.1\r\nX-Pad: ";
  wire.append(500, 'a');
  EXPECT_EQ(parser.Feed(wire), HttpRequestParser::State::kError);
}

TEST(HttpParserTest, OversizedBodyErrors) {
  HttpRequestParser parser(SmallLimits());
  EXPECT_EQ(parser.Feed("POST / HTTP/1.1\r\nContent-Length: 100000\r\n\r\n"),
            HttpRequestParser::State::kError);
}

TEST(HttpParserTest, ConnectionHeaderOverridesKeepAlive) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
            HttpRequestParser::State::kComplete);
  EXPECT_FALSE(parser.TakeRequest().keep_alive);
  ASSERT_EQ(parser.Feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"),
            HttpRequestParser::State::kComplete);
  EXPECT_TRUE(parser.TakeRequest().keep_alive);
}

TEST(HttpParserTest, MalformedQueryNumbersAreNullopt) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Feed("GET /q?k=abc&b=1.2.3 HTTP/1.1\r\n\r\n"),
            HttpRequestParser::State::kComplete);
  const HttpRequest request = parser.TakeRequest();
  EXPECT_EQ(request.QueryInt("k", 7), std::nullopt);     // present, bad
  EXPECT_EQ(request.QueryDouble("b", 7.0), std::nullopt);
  EXPECT_EQ(request.QueryInt("missing", 7), 7);          // absent: fallback
}

TEST(HttpResponseTest, SerializesStatusAndFraming) {
  HttpResponse response;
  response.status_code = 503;
  response.keep_alive = false;
  response.body = "{\"error\":\"overload\"}";
  const std::string wire = response.Serialize();
  EXPECT_NE(wire.find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 20\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"error\":\"overload\"}"),
            std::string::npos);
}

TEST(JsonWriterTest, NestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("items").BeginArray();
  w.BeginObject().Key("v").Int(-3).Key("c").Double(1.5).EndObject();
  w.Int(7);
  w.EndArray();
  w.Key("ok").Bool(true);
  w.Key("note").String("a\"b\\c\nd");
  w.Key("nothing").Null();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"items\":[{\"v\":-3,\"c\":1.5},7],\"ok\":true,"
            "\"note\":\"a\\\"b\\\\c\\nd\",\"nothing\":null}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.Double(0.5);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,0.5]");
}

TEST(JsonWriterTest, ControlCharactersEscaped) {
  std::string out;
  JsonWriter::Escape(std::string_view("\x01\t", 2), out);
  EXPECT_EQ(out, "\\u0001\\t");
}

TEST(ParseValueArrayTest, AcceptsJsonArrayAndBareList) {
  const auto a = ParseValueArray("[1, 2, -3]");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.ValueOrDie(), (std::vector<Value>{1, 2, -3}));

  const auto b = ParseValueArray(" 4,5\n6 ");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.ValueOrDie(), (std::vector<Value>{4, 5, 6}));

  const auto empty = ParseValueArray("[]");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.ValueOrDie().empty());

  const auto blank = ParseValueArray("   ");
  ASSERT_TRUE(blank.ok());
  EXPECT_TRUE(blank.ValueOrDie().empty());
}

TEST(ParseValueArrayTest, RejectsMalformedBodies) {
  EXPECT_FALSE(ParseValueArray("[1, 2").ok());       // unterminated
  EXPECT_FALSE(ParseValueArray("1] 2").ok());        // stray bracket
  EXPECT_FALSE(ParseValueArray("[1] trailing").ok());
  EXPECT_FALSE(ParseValueArray("[1, x]").ok());      // non-integer
  EXPECT_FALSE(ParseValueArray("{\"v\": 1}").ok());  // wrong shape
  EXPECT_FALSE(ParseValueArray("[99999999999999999999999]").ok());
}

}  // namespace
}  // namespace aqua
