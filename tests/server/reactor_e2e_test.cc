// End-to-end tests of the multi-reactor serving path against the real
// aqua_serve binary: byte-identical cached replays within a serving
// epoch, wholesale invalidation when ingest advances the epoch, the
// Cache-Control: no-cache bypass, and the /stats epoch + cache counters.
//
// Epoch control: the serving epoch advances when a snapshot cache
// refreshes.  Tests that need a HELD epoch spawn the server with huge
// staleness bounds (nothing goes stale, so every answer replays); tests
// that need an ADVANCING epoch spawn with --cache-stale-ops 1 (any ingest
// makes the snapshot stale, and the next query refreshes and swaps the
// epoch).

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/e2e_util.h"

namespace aqua {
namespace {

using namespace e2e;  // NOLINT(build/namespaces): test-local helpers

std::vector<std::string> HeldEpochArgs() {
  return {"--reactors", "2",          "--shards",         "1",
          "--preload-zipf", "30000,500,1.0,424242",
          "--cache-stale-ops", "1000000000", "--cache-stale-ms", "3600000"};
}

TEST(ReactorE2eTest, CachedReadsAreByteIdenticalWithinEpoch) {
  ServerProcess server(HeldEpochArgs());

  // One keep-alive connection pins one reactor (and thus one per-reactor
  // cache).  The replay must be byte-identical INCLUDING response_ns: a
  // hit writes the stored wire verbatim, it does not re-render.
  const int fd = ConnectTo(server.port());
  // Warm-up: the first query after startup finds the snapshot cache
  // unrefreshed (unsettled epoch), renders without storing, and settles
  // the epoch; only then does the cache fill.
  SendRaw(fd, KeepAliveRequest("GET", "/hotlist?k=10&beta=3"));
  ASSERT_TRUE(ReadOneResponse(fd).ok);
  SendRaw(fd, KeepAliveRequest("GET", "/hotlist?k=10&beta=3"));
  const FramedResponse first = ReadOneResponse(fd);
  ASSERT_TRUE(first.ok);
  ASSERT_EQ(first.status, 200) << first.body;

  SendRaw(fd, KeepAliveRequest("GET", "/hotlist?k=10&beta=3"));
  const FramedResponse replay = ReadOneResponse(fd);
  ASSERT_TRUE(replay.ok);
  EXPECT_EQ(replay.wire, first.wire);

  // Canonicalization: reordered parameters and escaped spellings share the
  // cached entry.
  SendRaw(fd, KeepAliveRequest("GET", "/hotlist?beta=3&k=%31%30"));
  const FramedResponse reordered = ReadOneResponse(fd);
  ASSERT_TRUE(reordered.ok);
  EXPECT_EQ(reordered.wire, first.wire);
  close(fd);

  const RawResponse stats = Fetch(server.port(), "/stats");
  ASSERT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"epoch\":"), std::string::npos);
  EXPECT_NE(stats.body.find("\"reactors\":2"), std::string::npos);
  // Two replays above; /stats itself is uncacheable so it adds nothing.
  EXPECT_EQ(stats.body.find("\"cache_hits\":0,"), std::string::npos);
}

TEST(ReactorE2eTest, NoCacheBypassesTheCache) {
  ServerProcess server(HeldEpochArgs());
  const int fd = ConnectTo(server.port());
  SendRaw(fd, KeepAliveRequest("GET", "/frequency?value=17"));
  ASSERT_TRUE(ReadOneResponse(fd).ok);  // settle the epoch (see above)
  SendRaw(fd, KeepAliveRequest("GET", "/frequency?value=17"));
  const FramedResponse cached = ReadOneResponse(fd);
  ASSERT_TRUE(cached.ok);
  SendRaw(fd, KeepAliveRequest("GET", "/frequency?value=17",
                               "Cache-Control: no-cache\r\n"));
  const FramedResponse fresh = ReadOneResponse(fd);
  ASSERT_TRUE(fresh.ok);
  close(fd);

  // Same answer, freshly rendered: bodies agree modulo the volatile
  // response_ns metric, and the bypass is counted.
  EXPECT_EQ(StripResponseNs(fresh.body), StripResponseNs(cached.body));
  const RawResponse stats = Fetch(server.port(), "/stats");
  EXPECT_NE(stats.body.find("\"cache_bypass\":1"), std::string::npos)
      << stats.body;
}

TEST(ReactorE2eTest, IngestAdvancesEpochAndInvalidatesCachedAnswers) {
  // --cache-stale-ops 1: any ingest staleness-marks the snapshot, so the
  // next query refreshes it and the serving epoch advances.
  ServerProcess server({"--reactors", "2", "--shards", "1",
                        "--preload-zipf", "30000,500,1.0,424242",
                        "--cache-stale-ops", "1"});

  // 777 is outside the preload domain [1,500]: its frequency estimate is
  // 0 before ingest and positive after, so the answer must change.
  const int fd = ConnectTo(server.port());
  SendRaw(fd, KeepAliveRequest("GET", "/frequency?value=777"));
  ASSERT_TRUE(ReadOneResponse(fd).ok);  // settle the epoch (see above)
  SendRaw(fd, KeepAliveRequest("GET", "/frequency?value=777"));
  const FramedResponse before = ReadOneResponse(fd);
  ASSERT_TRUE(before.ok);
  ASSERT_EQ(before.status, 200);
  // Warm hit within the current epoch.
  SendRaw(fd, KeepAliveRequest("GET", "/frequency?value=777"));
  const FramedResponse warm = ReadOneResponse(fd);
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(warm.wire, before.wire);

  std::string many;
  many += "[";
  for (int i = 0; i < 2000; ++i) many += (i ? ",777" : "777");
  many += "]";
  ASSERT_EQ(Post(server.port(), "/ingest", many).status, 200);

  // Same connection, same reactor, same cache: the post-ingest answer must
  // NOT replay the stale bytes.
  SendRaw(fd, KeepAliveRequest("GET", "/frequency?value=777"));
  const FramedResponse after = ReadOneResponse(fd);
  ASSERT_TRUE(after.ok);
  ASSERT_EQ(after.status, 200);
  EXPECT_NE(StripResponseNs(after.body), StripResponseNs(before.body));
  close(fd);

  const RawResponse stats = Fetch(server.port(), "/stats");
  EXPECT_NE(stats.body.find("\"cache_invalidations\":"), std::string::npos);
}

TEST(ReactorE2eTest, TwoReactorsServeConcurrentKeepAliveClients) {
  ServerProcess server(HeldEpochArgs());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 30;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&server, &failures, t] {
      const int fd = ConnectTo(server.port());
      const std::string target =
          "/hotlist?k=10&beta=" + std::to_string(2 + (t % 3));
      for (int i = 0; i < kPerThread; ++i) {
        SendRaw(fd, KeepAliveRequest("GET", target));
        const FramedResponse r = ReadOneResponse(fd);
        if (!r.ok || r.status != 200) {
          failures.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
      close(fd);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  const RawResponse stats = Fetch(server.port(), "/stats");
  ASSERT_EQ(stats.status, 200);
  // The bulk of the load repeats 3 distinct queries: almost all hits.
  EXPECT_NE(stats.body.find("\"cache_hits\":"), std::string::npos);
}

TEST(ReactorE2eTest, PerAttributeStatsExposeEpoch) {
  ServerProcess server({"--reactors", "2", "--attr", "qty"});
  ASSERT_EQ(Post(server.port(), "/attr/qty/ingest", "[1,2,3]").status, 200);
  // Every per-attribute stats page carries its registry's serving epoch.
  const RawResponse stats = Fetch(server.port(), "/attr/qty/stats");
  ASSERT_EQ(stats.status, 200) << stats.body;
  EXPECT_NE(stats.body.find("\"epoch\":"), std::string::npos);
}

}  // namespace
}  // namespace aqua
