// Regression pin for the parked-write path, on both IO backends: a client
// that stops reading must never stall the reactor.  The server runs with a
// deliberately tiny listener SO_SNDBUF so a ~300KB response cannot fit in
// the socket buffer; the old reactor poll-spun inside a blocking writev
// until the peer drained, freezing every other connection on the reactor.
// The IoBackend contract parks the unsent tail instead (EPOLLOUT rearm on
// epoll, ring-submitted send on io_uring), so a concurrent fast client
// keeps getting answers while the slow reader crawls — and the slow reader
// still receives every byte, verbatim.

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "server/io_backend.h"
#include "server/server.h"

namespace aqua {
namespace {

int ConnectTo(std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << strerror(errno);
  return fd;
}

void SendAll(int fd, const std::string& wire) {
  ASSERT_EQ(write(fd, wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
}

/// Reads until EOF (Connection: close responses) with a generous deadline.
std::string ReadToEof(int fd, int timeout_ms = 30000) {
  std::string out;
  char buf[8192];
  for (;;) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (poll(&pfd, 1, timeout_ms) <= 0) break;
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

class SlowReaderTest : public ::testing::TestWithParam<IoBackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == IoBackendKind::kIoUring) {
      std::string reason;
      if (!IoUringAvailable(&reason)) {
        GTEST_SKIP() << "io_uring unavailable: " << reason;
      }
    }
  }
};

TEST_P(SlowReaderTest, ParkedWriteDoesNotStallTheReactor) {
  // One reactor, so the slow and fast connections share it: any blocking
  // write on the slow connection would freeze the fast one.
  HttpServerOptions options;
  options.reactors = 1;
  options.workers = 2;
  options.io_backend = GetParam();
  options.sndbuf = 4096;  // a ~300KB response cannot fit: the tail parks
  HttpServer server(options);

  std::string big(300 * 1024, 'x');
  for (std::size_t i = 0; i < big.size(); i += 101) big[i] = 'A' + (i % 26);
  server.Route("GET", "/big",
               [&big](const HttpRequest&, HttpResponse* response) {
                 response->content_type = "text/plain";
                 response->body = big;
               });
  server.Route("GET", "/small", [](const HttpRequest&, HttpResponse* response) {
    response->content_type = "text/plain";
    response->body = "ok";
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_EQ(server.io_backend(), GetParam());

  const std::string big_request =
      "GET /big HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  const std::string small_request =
      "GET /small HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";

  // Reference bytes from a well-behaved client.
  const int ref_fd = ConnectTo(server.port());
  SendAll(ref_fd, big_request);
  const std::string expected = ReadToEof(ref_fd);
  close(ref_fd);
  ASSERT_GT(expected.size(), big.size());

  // The slow reader requests the big response and then refuses to read:
  // the socket buffers fill and the server must park the rest.
  const int slow_fd = ConnectTo(server.port());
  SendAll(slow_fd, big_request);
  // Give the response time to reach (and fill) the socket buffers.
  usleep(200 * 1000);

  // With the slow connection wedged mid-response, a fast client on the
  // same reactor must still be served promptly.
  const auto fast_start = std::chrono::steady_clock::now();
  for (int i = 0; i < 50; ++i) {
    const int fd = ConnectTo(server.port());
    SendAll(fd, small_request);
    const std::string reply = ReadToEof(fd);
    close(fd);
    ASSERT_NE(reply.find("HTTP/1.1 200"), std::string::npos) << "round " << i;
    ASSERT_NE(reply.find("ok"), std::string::npos) << "round " << i;
  }
  const auto fast_elapsed = std::chrono::steady_clock::now() - fast_start;
  // 50 loopback round trips take milliseconds; the old blocking reactor
  // would sit in writev until the slow reader drained (i.e. forever here).
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(fast_elapsed)
                .count(),
            20);

  // Now crawl: a few hundred 1-byte reads first (the pathological client),
  // then drain normally, and require the verbatim response bytes.
  std::string got;
  char byte;
  for (int i = 0; i < 256; ++i) {
    struct pollfd pfd = {slow_fd, POLLIN, 0};
    ASSERT_GT(poll(&pfd, 1, 30000), 0) << "slow reader starved at byte " << i;
    const ssize_t n = read(slow_fd, &byte, 1);
    ASSERT_EQ(n, 1) << "short read at byte " << i;
    got.push_back(byte);
  }
  got += ReadToEof(slow_fd);
  close(slow_fd);
  EXPECT_EQ(got.size(), expected.size());
  EXPECT_EQ(got, expected) << "parked-write bytes diverged";

  // The tail really did park (the whole point of the scenario).
  const HttpServer::ServerStats stats = server.Stats();
  EXPECT_GE(stats.io.copied_sends + stats.io.zero_copy_sends, 1);

  server.Shutdown();
}

TEST_P(SlowReaderTest, ShutdownDoesNotHangOnAParkedSend) {
  HttpServerOptions options;
  options.reactors = 1;
  options.workers = 1;
  options.io_backend = GetParam();
  options.sndbuf = 4096;
  HttpServer server(options);
  const std::string big(256 * 1024, 'y');
  server.Route("GET", "/big",
               [&big](const HttpRequest&, HttpResponse* response) {
                 response->body = big;
               });
  ASSERT_TRUE(server.Start().ok());

  const int fd = ConnectTo(server.port());
  SendAll(fd, "GET /big HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  usleep(200 * 1000);  // response parks against the unread socket

  // Shutdown must complete despite the parked send (bounded drain grace),
  // not wait for a reader that never comes.
  const auto start = std::chrono::steady_clock::now();
  server.Shutdown();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(
      std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(), 30);
  close(fd);
}

INSTANTIATE_TEST_SUITE_P(
    IoBackends, SlowReaderTest,
    ::testing::Values(IoBackendKind::kEpoll, IoBackendKind::kIoUring),
    [](const ::testing::TestParamInfo<IoBackendKind>& info) {
      return std::string(IoBackendKindName(info.param));
    });

}  // namespace
}  // namespace aqua
