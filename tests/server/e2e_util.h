// Shared helpers for end-to-end tests that spawn the real aqua_serve
// binary (injected by CMake as AQUA_SERVE_BINARY): process spawning with
// port discovery, a minimal raw-socket HTTP/1.1 client, and response
// normalization.
#ifndef AQUA_TESTS_SERVER_E2E_UTIL_H_
#define AQUA_TESTS_SERVER_E2E_UTIL_H_

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace aqua::e2e {

/// A spawned aqua_serve process: fork/exec with stdout piped back so the
/// test can read the "listening on ADDR:PORT" line.
class ServerProcess {
 public:
  ServerProcess(std::vector<std::string> extra_args) {
    Spawn(std::move(extra_args));  // ASSERTs need a void function
  }

  void Spawn(std::vector<std::string> extra_args) {
    int out_pipe[2];
    ASSERT_EQ(pipe(out_pipe), 0);
    pid_ = fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      dup2(out_pipe[1], STDOUT_FILENO);
      close(out_pipe[0]);
      close(out_pipe[1]);
      std::vector<std::string> args = {AQUA_SERVE_BINARY, "--port", "0"};
      for (auto& a : extra_args) args.push_back(std::move(a));
      std::vector<char*> argv;
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv(argv[0], argv.data());
      std::perror("execv aqua_serve");
      _exit(127);
    }
    close(out_pipe[1]);
    stdout_fd_ = out_pipe[0];
    ReadPort();
  }

  ~ServerProcess() {
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
    }
    if (stdout_fd_ >= 0) close(stdout_fd_);
  }

  std::uint16_t port() const { return port_; }
  pid_t pid() const { return pid_; }

  /// SIGTERM, then waits; returns the exit status (-1 on abnormal exit).
  int TerminateAndWait() {
    kill(pid_, SIGTERM);
    int wstatus = 0;
    waitpid(pid_, &wstatus, 0);
    const int code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
    pid_ = -1;
    return code;
  }

  /// SIGKILL and reap — the fault-injection crash: no shutdown handler
  /// runs, no buffered state is flushed, the process is simply gone.
  void KillNow() {
    kill(pid_, SIGKILL);
    waitpid(pid_, nullptr, 0);
    pid_ = -1;
    if (stdout_fd_ >= 0) {
      close(stdout_fd_);
      stdout_fd_ = -1;
    }
  }

 private:
  void ReadPort() {
    // Read stdout until the listening line appears (the server prints and
    // flushes it immediately after binding).
    std::string line;
    char c;
    const std::int64_t deadline_ms = 10000;
    struct pollfd pfd = {stdout_fd_, POLLIN, 0};
    while (line.find('\n') == std::string::npos) {
      ASSERT_GT(poll(&pfd, 1, static_cast<int>(deadline_ms)), 0)
          << "server did not print its port";
      const ssize_t n = read(stdout_fd_, &c, 1);
      ASSERT_GT(n, 0) << "server exited before printing its port";
      line.push_back(c);
    }
    const std::size_t colon = line.rfind(':');
    ASSERT_NE(colon, std::string::npos) << line;
    port_ = static_cast<std::uint16_t>(std::stoi(line.substr(colon + 1)));
    ASSERT_GT(port_, 0) << line;
  }

  pid_t pid_ = -1;
  int stdout_fd_ = -1;
  std::uint16_t port_ = 0;
};

/// A raw HTTP/1.1 response: status code + body.
struct RawResponse {
  int status = 0;
  std::string body;
};

inline int ConnectTo(std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << strerror(errno);
  return fd;
}

inline void SendRequest(int fd, const std::string& method,
                        const std::string& target,
                        const std::string& body = "") {
  std::string wire = method + " " + target + " HTTP/1.1\r\nHost: t\r\n";
  if (!body.empty()) {
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "Connection: close\r\n\r\n" + body;
  ASSERT_EQ(write(fd, wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
}

inline RawResponse ReadResponse(int fd) {
  std::string raw;
  char buf[4096];
  for (;;) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (poll(&pfd, 1, 15000) <= 0) break;  // hung server: fail below
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  RawResponse response;
  if (raw.rfind("HTTP/1.1 ", 0) == 0) {
    response.status = std::stoi(raw.substr(9, 3));
  }
  const std::size_t blank = raw.find("\r\n\r\n");
  if (blank != std::string::npos) response.body = raw.substr(blank + 4);
  return response;
}

/// Builds one HTTP/1.1 request without a Connection header (keep-alive by
/// default), for pipelined / multi-request connections.
inline std::string KeepAliveRequest(const std::string& method,
                                    const std::string& target,
                                    const std::string& extra_headers = "",
                                    const std::string& body = "") {
  std::string wire = method + " " + target + " HTTP/1.1\r\nHost: t\r\n";
  if (!body.empty()) {
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  return wire + extra_headers + "\r\n" + body;
}

inline void SendRaw(int fd, const std::string& wire) {
  ASSERT_EQ(write(fd, wire.data(), wire.size()),
            static_cast<ssize_t>(wire.size()));
}

/// One complete response off a keep-alive connection, framed by
/// Content-Length; `wire` keeps the verbatim bytes (status line, headers,
/// body) so tests can assert byte-identical cached replays.
struct FramedResponse {
  int status = 0;
  std::string wire;
  std::string body;
  bool ok = false;
};

/// `carry` holds bytes read past the returned response's frame (pipelined
/// bursts can land several responses in one read); pass the same string
/// for every read off one connection.
inline FramedResponse ReadOneResponse(int fd, std::string* carry = nullptr) {
  FramedResponse response;
  std::string raw = carry != nullptr ? std::move(*carry) : std::string();
  if (carry != nullptr) carry->clear();
  char buf[4096];
  std::size_t blank = raw.find("\r\n\r\n");
  while (blank == std::string::npos) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (poll(&pfd, 1, 15000) <= 0) return response;
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) return response;
    raw.append(buf, static_cast<std::size_t>(n));
    blank = raw.find("\r\n\r\n");
  }
  const std::string key = "content-length:";
  std::size_t content_length = 0;
  for (std::size_t at = 0; at < blank;) {
    const std::size_t eol = raw.find("\r\n", at);
    std::string line = raw.substr(at, eol - at);
    for (char& c : line) c = static_cast<char>(std::tolower(c));
    if (line.rfind(key, 0) == 0) {
      content_length = std::stoul(line.substr(key.size()));
    }
    at = eol + 2;
  }
  const std::size_t total = blank + 4 + content_length;
  while (raw.size() < total) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (poll(&pfd, 1, 15000) <= 0) return response;
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) return response;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  if (raw.rfind("HTTP/1.1 ", 0) == 0) {
    response.status = std::stoi(raw.substr(9, 3));
  }
  response.wire = raw.substr(0, total);
  response.body = raw.substr(blank + 4, content_length);
  if (carry != nullptr) *carry = raw.substr(total);
  response.ok = true;
  return response;
}

inline RawResponse Fetch(std::uint16_t port, const std::string& target) {
  const int fd = ConnectTo(port);
  SendRequest(fd, "GET", target);
  RawResponse response = ReadResponse(fd);
  close(fd);
  return response;
}

inline RawResponse Post(std::uint16_t port, const std::string& target,
                        const std::string& body) {
  const int fd = ConnectTo(port);
  SendRequest(fd, "POST", target, body);
  RawResponse response = ReadResponse(fd);
  close(fd);
  return response;
}

/// Removes the volatile `"response_ns":<digits>` metric so two responses to
/// the same query compare equal.
inline std::string StripResponseNs(std::string body) {
  const std::string key = "\"response_ns\":";
  const std::size_t at = body.find(key);
  if (at == std::string::npos) return body;
  std::size_t end = at + key.size();
  while (end < body.size() &&
         (std::isdigit(static_cast<unsigned char>(body[end])) ||
          body[end] == '-')) {
    ++end;
  }
  // Also swallow one adjacent comma to keep the JSON shape irrelevant.
  if (at > 0 && body[at - 1] == ',') {
    return body.substr(0, at - 1) + body.substr(end);
  }
  return body.substr(0, at) + body.substr(end);
}

}  // namespace aqua::e2e

#endif  // AQUA_TESTS_SERVER_E2E_UTIL_H_
