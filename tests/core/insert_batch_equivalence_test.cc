// The batched ingestion fast path must be *draw-for-draw* equivalent to
// per-element Insert(): with the same seed, feeding the stream through
// InsertBatch (any batching) must consume the same random draws and land in
// the same final state.  This pins the skip-ahead bookkeeping exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "sample/reservoir_sample.h"
#include "workload/generators.h"

namespace aqua {
namespace {

std::vector<ValueCount> Sorted(std::vector<ValueCount> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const ValueCount& a, const ValueCount& b) {
              return a.value < b.value;
            });
  return entries;
}

template <typename S>
void FeedBatched(S& s, const std::vector<Value>& data,
                 std::size_t batch_size) {
  const std::span<const Value> all(data);
  for (std::size_t i = 0; i < all.size(); i += batch_size) {
    s.InsertBatch(all.subspan(i, std::min(batch_size, all.size() - i)));
  }
}

class InsertBatchEquivalence : public ::testing::TestWithParam<std::size_t> {
};

INSTANTIATE_TEST_SUITE_P(BatchSizes, InsertBatchEquivalence,
                         ::testing::Values<std::size_t>(1, 7, 100, 4096,
                                                        1 << 20),
                         [](const auto& info) {
                           return "batch" + std::to_string(info.param);
                         });

TEST_P(InsertBatchEquivalence, ConciseSampleMatchesDrawForDraw) {
  const std::vector<Value> data = ZipfValues(80000, 3000, 1.0, 111);
  ConciseSampleOptions o;
  o.footprint_bound = 500;
  o.seed = 42;
  ConciseSample per_element(o);
  ConciseSample batched(o);
  for (Value v : data) per_element.Insert(v);
  FeedBatched(batched, data, GetParam());

  EXPECT_EQ(batched.ObservedInserts(), per_element.ObservedInserts());
  EXPECT_EQ(batched.Threshold(), per_element.Threshold());
  EXPECT_EQ(batched.SampleSize(), per_element.SampleSize());
  EXPECT_EQ(batched.Footprint(), per_element.Footprint());
  EXPECT_EQ(Sorted(batched.Entries()), Sorted(per_element.Entries()));
  // Same number of logical random draws: the batch path saves countdown
  // decrements, not randomness.
  EXPECT_EQ(batched.Cost().coin_flips, per_element.Cost().coin_flips);
  EXPECT_TRUE(batched.Validate().ok());
}

TEST_P(InsertBatchEquivalence, CountingSampleMatchesDrawForDraw) {
  const std::vector<Value> data = ZipfValues(60000, 4000, 0.5, 222);
  CountingSampleOptions o;
  o.footprint_bound = 400;
  o.seed = 43;
  CountingSample per_element(o);
  CountingSample batched(o);
  for (Value v : data) per_element.Insert(v);
  FeedBatched(batched, data, GetParam());

  EXPECT_EQ(batched.ObservedInserts(), per_element.ObservedInserts());
  EXPECT_EQ(batched.Threshold(), per_element.Threshold());
  EXPECT_EQ(Sorted(batched.Entries()), Sorted(per_element.Entries()));
  EXPECT_EQ(batched.Cost().coin_flips, per_element.Cost().coin_flips);
  EXPECT_TRUE(batched.Validate().ok());
}

TEST_P(InsertBatchEquivalence, ReservoirSampleMatchesDrawForDraw) {
  const std::vector<Value> data = UniformValues(200000, 100000, 333);
  for (ReservoirAlgorithm algo :
       {ReservoirAlgorithm::kR, ReservoirAlgorithm::kX,
        ReservoirAlgorithm::kL}) {
    ReservoirSample per_element(1000, 44, algo);
    ReservoirSample batched(1000, 44, algo);
    for (Value v : data) per_element.Insert(v);
    FeedBatched(batched, data, GetParam());

    EXPECT_EQ(batched.ObservedInserts(), per_element.ObservedInserts());
    EXPECT_EQ(batched.Points(), per_element.Points())
        << "algorithm " << static_cast<int>(algo);
    EXPECT_EQ(batched.Cost().coin_flips, per_element.Cost().coin_flips);
  }
}

TEST(InsertBatchTest, EmptyBatchIsANoOp) {
  ConciseSample s(ConciseSampleOptions{.footprint_bound = 100, .seed = 7});
  s.InsertBatch({});
  EXPECT_EQ(s.ObservedInserts(), 0);
  ReservoirSample r(10, 7);
  r.InsertBatch({});
  EXPECT_EQ(r.ObservedInserts(), 0);
}

TEST(InsertBatchTest, NaiveCoinFlipModeStillMatches) {
  // With skip counting disabled the batch path falls back to per-element
  // coins; equivalence must still hold.
  const std::vector<Value> data = ZipfValues(20000, 500, 1.5, 555);
  ConciseSampleOptions o;
  o.footprint_bound = 200;
  o.seed = 45;
  o.use_skip_counting = false;
  ConciseSample per_element(o);
  ConciseSample batched(o);
  for (Value v : data) per_element.Insert(v);
  FeedBatched(batched, data, 512);
  EXPECT_EQ(Sorted(batched.Entries()), Sorted(per_element.Entries()));
  EXPECT_EQ(batched.Threshold(), per_element.Threshold());
}

}  // namespace
}  // namespace aqua
