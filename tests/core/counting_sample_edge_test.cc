// Edge-case and failure-injection tests for CountingSample.

#include <gtest/gtest.h>

#include <limits>

#include "core/counting_sample.h"
#include "warehouse/relation.h"
#include "workload/generators.h"

namespace aqua {
namespace {

CountingSampleOptions Opts(Words bound, std::uint64_t seed) {
  return CountingSampleOptions{.footprint_bound = bound, .seed = seed};
}

TEST(CountingSampleEdgeTest, MinimumFootprintOfTwo) {
  CountingSample s(Opts(2, 1));
  for (Value v : ZipfValues(50000, 100, 1.0, 2)) {
    s.Insert(v);
    ASSERT_LE(s.Footprint(), 2);
  }
  ASSERT_TRUE(s.Validate().ok());
}

TEST(CountingSampleEdgeTest, DeleteEverythingRepeatedly) {
  CountingSample s(Opts(100, 3));
  for (int round = 0; round < 50; ++round) {
    for (Value v = 0; v < 20; ++v) s.Insert(v);
    for (Value v = 0; v < 20; ++v) {
      ASSERT_TRUE(s.Delete(v).ok());
    }
    ASSERT_TRUE(s.Validate().ok()) << "round " << round;
  }
  EXPECT_EQ(s.Footprint(), 0);
  EXPECT_EQ(s.CountedOccurrences(), 0);
}

TEST(CountingSampleEdgeTest, InterleavedInsertDeleteOfOneValue) {
  CountingSample s(Opts(10, 4));
  Count live = 0;
  Random rng(5);
  for (int i = 0; i < 100000; ++i) {
    if (live > 0 && rng.Bernoulli(0.5)) {
      ASSERT_TRUE(s.Delete(42).ok());
      --live;
    } else {
      s.Insert(42);
      ++live;
    }
    ASSERT_EQ(s.CountOf(42), live);  // τ stays 1: exact tracking
  }
  ASSERT_TRUE(s.Validate().ok());
}

TEST(CountingSampleEdgeTest, DeleteAfterThresholdRaises) {
  CountingSample s(Opts(100, 6));
  Relation relation;
  for (Value v : ZipfValues(200000, 2000, 1.0, 7)) {
    s.Insert(v);
    relation.Insert(v);
  }
  ASSERT_GT(s.Threshold(), 1.0);
  // Delete every remaining occurrence of the hottest value.
  const Value hot = 1;
  while (relation.FrequencyOf(hot) > 0) {
    ASSERT_TRUE(s.Delete(hot).ok());
    ASSERT_TRUE(relation.Delete(hot).ok());
  }
  EXPECT_EQ(s.CountOf(hot), 0);
  ASSERT_TRUE(s.Validate().ok());
  // Subset invariant still holds for everything else.
  for (const ValueCount& e : s.Entries()) {
    ASSERT_LE(e.count, relation.FrequencyOf(e.value));
  }
}

TEST(CountingSampleEdgeTest, ExtremeValues) {
  CountingSample s(Opts(100, 8));
  const Value extremes[] = {std::numeric_limits<Value>::min(),
                            std::numeric_limits<Value>::max(), 0};
  for (int i = 0; i < 50; ++i) {
    for (Value v : extremes) s.Insert(v);
  }
  for (Value v : extremes) EXPECT_EQ(s.CountOf(v), 50);
  for (Value v : extremes) ASSERT_TRUE(s.Delete(v).ok());
  for (Value v : extremes) EXPECT_EQ(s.CountOf(v), 49);
  ASSERT_TRUE(s.Validate().ok());
}

TEST(CountingSampleEdgeTest, RestoredSampleHandlesDeletes) {
  std::vector<ValueCount> entries = {{1, 10}, {2, 1}, {3, 5}};
  auto restored = CountingSample::Restore(Opts(100, 9), 3.0, 500, entries);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(restored->Delete(1).ok());
  EXPECT_EQ(restored->CountOf(1), 9);
  ASSERT_TRUE(restored->Delete(2).ok());
  EXPECT_EQ(restored->CountOf(2), 0);
  ASSERT_TRUE(restored->Validate().ok());
}

TEST(CountingSampleEdgeTest, RestoreValidation) {
  const CountingSampleOptions o = Opts(4, 10);
  EXPECT_TRUE(CountingSample::Restore(o, 2.0, 5, {{1, 2}, {2, 2}, {3, 1}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_FALSE(CountingSample::Restore(o, 0.0, 5, {{1, 1}}).ok());
  EXPECT_FALSE(CountingSample::Restore(o, 2.0, 5, {{1, -3}}).ok());
  EXPECT_TRUE(CountingSample::Restore(o, 2.0, 5, {{1, 2}, {2, 1}}).ok());
}

TEST(CountingSampleEdgeTest, HeavyChurnNearFootprintBound) {
  // Distinct-value churn keeps the synopsis at its bound, forcing raises
  // while deletes drain counts concurrently.
  CountingSample s(Opts(64, 11));
  Relation relation;
  const UpdateStream stream = MixedStream(200000, 400, 0.6, 0.35, 1000, 12);
  for (const StreamOp& op : stream) {
    if (op.kind == StreamOp::Kind::kInsert) {
      s.Insert(op.value);
      relation.Insert(op.value);
    } else {
      ASSERT_TRUE(s.Delete(op.value).ok());
      ASSERT_TRUE(relation.Delete(op.value).ok());
    }
    ASSERT_LE(s.Footprint(), 64);
  }
  ASSERT_TRUE(s.Validate().ok());
  for (const ValueCount& e : s.Entries()) {
    ASSERT_LE(e.count, relation.FrequencyOf(e.value));
  }
}

TEST(CountingSampleEdgeTest, ObservedInsertsExcludesDeletes) {
  CountingSample s(Opts(100, 13));
  for (int i = 0; i < 10; ++i) s.Insert(1);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(s.Delete(1).ok());
  EXPECT_EQ(s.ObservedInserts(), 10);
  EXPECT_EQ(s.CountOf(1), 6);
}

}  // namespace
}  // namespace aqua
