// Edge-case and failure-injection tests for ConciseSample, complementing
// the mainline suite in concise_sample_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/concise_sample.h"
#include "workload/generators.h"

namespace aqua {
namespace {

ConciseSampleOptions Opts(Words bound, std::uint64_t seed,
                          std::shared_ptr<ThresholdPolicy> policy = nullptr) {
  ConciseSampleOptions o;
  o.footprint_bound = bound;
  o.seed = seed;
  o.policy = std::move(policy);
  return o;
}

TEST(ConciseSampleEdgeTest, MinimumFootprintOfTwo) {
  // The smallest legal synopsis: room for exactly one <value,count> pair.
  ConciseSample s(Opts(2, 1));
  for (Value v : ZipfValues(50000, 100, 1.0, 2)) {
    s.Insert(v);
    ASSERT_LE(s.Footprint(), 2);
  }
  ASSERT_TRUE(s.Validate().ok());
  EXPECT_LE(s.DistinctValues(), 2);
}

TEST(ConciseSampleEdgeTest, SingleValueStreamAtMinimumFootprint) {
  ConciseSample s(Opts(2, 3));
  for (int i = 0; i < 100000; ++i) s.Insert(7);
  // One pair holds everything; no raise ever needed.
  EXPECT_EQ(s.Footprint(), 2);
  EXPECT_EQ(s.SampleSize(), 100000);
  EXPECT_EQ(s.Cost().threshold_raises, 0);
}

TEST(ConciseSampleEdgeTest, ExtremeValuesSurvive) {
  ConciseSample s(Opts(100, 4));
  const Value extremes[] = {std::numeric_limits<Value>::min(),
                            std::numeric_limits<Value>::max(), 0, -1, 1};
  for (int round = 0; round < 100; ++round) {
    for (Value v : extremes) s.Insert(v);
  }
  ASSERT_TRUE(s.Validate().ok());
  for (Value v : extremes) EXPECT_EQ(s.CountOf(v), 100);
}

TEST(ConciseSampleEdgeTest, AggressiveRaisePolicyStaysCorrect) {
  // A ×16 raise policy evicts most of the sample each time; invariants and
  // uniform-sampling semantics must survive.
  ConciseSample s(
      Opts(100, 5, std::make_shared<MultiplicativeThresholdPolicy>(16.0)));
  for (Value v : ZipfValues(300000, 5000, 1.0, 6)) {
    s.Insert(v);
    ASSERT_LE(s.Footprint(), 100);
  }
  ASSERT_TRUE(s.Validate().ok());
  // Expected sample-size n/τ still honored within wide noise.
  const double expected = 300000.0 / s.Threshold();
  EXPECT_LT(std::abs(static_cast<double>(s.SampleSize()) - expected),
            4.0 * expected + 50.0);
}

TEST(ConciseSampleEdgeTest, TinyRaisePolicyTerminates) {
  // A 0.1% raise frequently fails to shrink the footprint, exercising the
  // "raise and try again" loop.
  ConciseSample s(
      Opts(64, 7, std::make_shared<MultiplicativeThresholdPolicy>(1.001)));
  for (Value v : ZipfValues(100000, 2000, 0.75, 8)) s.Insert(v);
  ASSERT_TRUE(s.Validate().ok());
  EXPECT_GT(s.Cost().threshold_raises, 100);
}

TEST(ConciseSampleEdgeTest, AlternatingHotColdPattern) {
  // Adversarial-ish pattern: a burst of one hot value, then a sweep of
  // fresh singletons, repeated.  Footprint accounting must track the
  // singleton<->pair churn exactly.
  ConciseSample s(Opts(128, 9));
  Value fresh = 1000;
  for (int round = 0; round < 2000; ++round) {
    for (int i = 0; i < 20; ++i) s.Insert(1);
    for (int i = 0; i < 20; ++i) s.Insert(fresh++);
    if (round % 100 == 0) {
      ASSERT_TRUE(s.Validate().ok()) << "round " << round;
    }
  }
  ASSERT_TRUE(s.Validate().ok());
  EXPECT_GT(s.CountOf(1), 0);  // the persistent hot value survives
}

TEST(ConciseSampleEdgeTest, NaiveModeRaisesBehaveLikeSkipMode) {
  ConciseSampleOptions o = Opts(64, 10);
  o.use_skip_counting = false;
  ConciseSample s(o);
  for (Value v : ZipfValues(100000, 2000, 1.0, 11)) {
    s.Insert(v);
    ASSERT_LE(s.Footprint(), 64);
  }
  ASSERT_TRUE(s.Validate().ok());
  EXPECT_GT(s.Cost().threshold_raises, 0);
}

TEST(ConciseSampleEdgeTest, RestoredSampleRaisesCorrectly) {
  // Restore near the footprint bound, then force raises with new inserts.
  std::vector<ValueCount> entries;
  for (Value v = 0; v < 40; ++v) entries.push_back({v, 2});  // 80 words
  auto restored = ConciseSample::Restore(Opts(81, 12), 4.0, 1000, entries);
  ASSERT_TRUE(restored.ok());
  for (Value v : ZipfValues(50000, 500, 1.0, 13)) restored->Insert(v);
  ASSERT_TRUE(restored->Validate().ok());
  EXPECT_LE(restored->Footprint(), 81);
  EXPECT_GT(restored->Threshold(), 4.0);
}

TEST(ConciseSampleEdgeTest, EntriesSnapshotIsStable) {
  ConciseSample s(Opts(100, 14));
  for (Value v : ZipfValues(20000, 300, 1.0, 15)) s.Insert(v);
  auto a = s.Entries();
  auto b = s.Entries();
  auto by_value = [](const ValueCount& x, const ValueCount& y) {
    return x.value < y.value;
  };
  std::sort(a.begin(), a.end(), by_value);
  std::sort(b.begin(), b.end(), by_value);
  EXPECT_EQ(a, b);
}

TEST(ConciseSampleEdgeTest, CostAccessorIsIdempotent) {
  ConciseSample s(Opts(100, 16));
  for (Value v : ZipfValues(10000, 500, 1.0, 17)) s.Insert(v);
  const std::int64_t flips1 = s.Cost().coin_flips;
  const std::int64_t flips2 = s.Cost().coin_flips;
  EXPECT_EQ(flips1, flips2);
  EXPECT_GT(flips1, 0);
}

}  // namespace
}  // namespace aqua
