#include "core/concise_sample_builder.h"

#include <gtest/gtest.h>

#include <vector>

#include "workload/generators.h"

namespace aqua {
namespace {

TEST(ConciseSampleBuilderTest, EmptyData) {
  const OfflineConciseSample s =
      BuildOfflineConciseSample(std::vector<Value>{}, 100, 1);
  EXPECT_EQ(s.sample_size, 0);
  EXPECT_EQ(s.footprint, 0);
  EXPECT_TRUE(s.entries.empty());
}

TEST(ConciseSampleBuilderTest, FootprintWithinBound) {
  const std::vector<Value> data = ZipfValues(100000, 5000, 1.0, 1);
  const OfflineConciseSample s = BuildOfflineConciseSample(data, 100, 2);
  EXPECT_LE(s.footprint, 100);
  EXPECT_EQ(s.footprint, FootprintOf(s.entries));
  EXPECT_EQ(s.sample_size, SampleSizeOf(s.entries));
}

TEST(ConciseSampleBuilderTest, ConsumesWholeDatasetWhenAllValuesFit) {
  // D distinct values with 2D <= m: the loop can only stop at n samples.
  const std::vector<Value> data = ZipfValues(20000, 40, 1.0, 3);
  const OfflineConciseSample s = BuildOfflineConciseSample(data, 100, 4);
  EXPECT_EQ(s.sample_size, 20000);
  EXPECT_EQ(s.disk_accesses, 20000);
}

TEST(ConciseSampleBuilderTest, SkewIncreasesSampleSize) {
  const std::vector<Value> uniform = ZipfValues(100000, 5000, 0.0, 5);
  const std::vector<Value> skewed = ZipfValues(100000, 5000, 1.5, 5);
  const OfflineConciseSample su = BuildOfflineConciseSample(uniform, 200, 6);
  const OfflineConciseSample ss = BuildOfflineConciseSample(skewed, 200, 6);
  EXPECT_GT(ss.sample_size, 3 * su.sample_size);
}

TEST(ConciseSampleBuilderTest, DeterministicForFixedSeed) {
  const std::vector<Value> data = ZipfValues(50000, 1000, 1.0, 7);
  const OfflineConciseSample a = BuildOfflineConciseSample(data, 150, 8);
  const OfflineConciseSample b = BuildOfflineConciseSample(data, 150, 8);
  EXPECT_EQ(a.sample_size, b.sample_size);
  EXPECT_EQ(a.footprint, b.footprint);
}

TEST(ConciseSampleBuilderTest, OneDiskAccessPerSamplePoint) {
  const std::vector<Value> data = ZipfValues(50000, 5000, 0.5, 9);
  const OfflineConciseSample s = BuildOfflineConciseSample(data, 100, 10);
  // The ignored final point also cost an access; allow that off-by-one.
  EXPECT_GE(s.disk_accesses, s.sample_size);
  EXPECT_LE(s.disk_accesses, s.sample_size + 1);
}

TEST(ConciseSampleBuilderTest, EntriesDrawnFromData) {
  const std::vector<Value> data = ZipfValues(10000, 300, 1.0, 11);
  const OfflineConciseSample s = BuildOfflineConciseSample(data, 120, 12);
  for (const ValueCount& e : s.entries) {
    EXPECT_GE(e.value, 1);
    EXPECT_LE(e.value, 300);
    EXPECT_GE(e.count, 1);
  }
}

}  // namespace
}  // namespace aqua
