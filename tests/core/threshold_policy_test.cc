#include "core/threshold_policy.h"

#include <gtest/gtest.h>

#include <vector>

namespace aqua {
namespace {

ThresholdRaiseContext MakeContext(double tau, std::int64_t singletons,
                                  std::int64_t pairs, Words bound) {
  ThresholdRaiseContext c;
  c.threshold = tau;
  c.footprint_bound = bound;
  c.footprint = bound + 1;
  c.singletons = singletons;
  c.pairs = pairs;
  c.sample_size = singletons + 3 * pairs;
  return c;
}

TEST(MultiplicativePolicyTest, ScalesByFactor) {
  MultiplicativeThresholdPolicy policy(1.1);
  const ThresholdRaiseContext c = MakeContext(10.0, 50, 25, 100);
  EXPECT_DOUBLE_EQ(policy.NextThreshold(c), 11.0);
  EXPECT_EQ(policy.Name(), "multiplicative");
  EXPECT_FALSE(policy.NeedsCounts());
}

TEST(MultiplicativePolicyTest, RejectsNonIncreasingFactor) {
  EXPECT_DEATH({ MultiplicativeThresholdPolicy p(1.0); (void)p; },
               "exceed 1");
}

TEST(SingletonBoundPolicyTest, MeetsTargetInExpectation) {
  SingletonBoundThresholdPolicy policy(0.05);
  const ThresholdRaiseContext c = MakeContext(10.0, 80, 10, 100);
  const double next = policy.NextThreshold(c);
  ASSERT_GT(next, 10.0);
  // (1 - τ/τ') * singletons >= 5% of the bound = 5 evictions.
  const double expected_singleton_evictions =
      (1.0 - 10.0 / next) * 80.0;
  EXPECT_GE(expected_singleton_evictions, 5.0 - 1e-9);
}

TEST(SingletonBoundPolicyTest, FallsBackWithFewSingletons) {
  SingletonBoundThresholdPolicy policy(0.05, 1.25);
  const ThresholdRaiseContext c = MakeContext(10.0, 2, 49, 100);
  EXPECT_DOUBLE_EQ(policy.NextThreshold(c), 12.5);
}

TEST(BinarySearchPolicyTest, ExpectedDecreaseIsExactForSingletons) {
  std::vector<Count> counts(100, 1);
  ThresholdRaiseContext c = MakeContext(10.0, 100, 0, 100);
  c.counts = &counts;
  // Retention r = 10/20 = 0.5: each singleton evicts w.p. 0.5 → 50 words.
  EXPECT_NEAR(BinarySearchThresholdPolicy::ExpectedDecrease(c, 20.0), 50.0,
              1e-9);
}

TEST(BinarySearchPolicyTest, ExpectedDecreaseForPairs) {
  std::vector<Count> counts = {2};
  ThresholdRaiseContext c = MakeContext(10.0, 0, 1, 100);
  c.counts = &counts;
  const double r = 0.5;
  // 2·(1-r)² + 2·r·(1-r) words expected.
  const double expected = 2 * (1 - r) * (1 - r) + 2 * r * (1 - r);
  EXPECT_NEAR(BinarySearchThresholdPolicy::ExpectedDecrease(c, 20.0),
              expected, 1e-9);
}

TEST(BinarySearchPolicyTest, ExpectedDecreaseMonotoneInThreshold) {
  std::vector<Count> counts = {1, 1, 2, 5, 10, 100};
  ThresholdRaiseContext c = MakeContext(10.0, 2, 4, 100);
  c.counts = &counts;
  double last = 0.0;
  for (double next : {11.0, 12.0, 15.0, 20.0, 40.0}) {
    const double dec = BinarySearchThresholdPolicy::ExpectedDecrease(c, next);
    EXPECT_GE(dec, last);
    last = dec;
  }
}

TEST(BinarySearchPolicyTest, FindsThresholdMeetingTarget) {
  BinarySearchThresholdPolicy policy(0.05);
  std::vector<Count> counts(200, 1);
  ThresholdRaiseContext c = MakeContext(10.0, 200, 0, 200);
  c.counts = &counts;
  const double next = policy.NextThreshold(c);
  ASSERT_GT(next, 10.0);
  const double dec = BinarySearchThresholdPolicy::ExpectedDecrease(c, next);
  EXPECT_GE(dec, 10.0 - 0.1);   // target = 5% of 200
  EXPECT_LE(dec, 11.0);         // …and not wildly more (binary search tight)
  EXPECT_TRUE(policy.NeedsCounts());
}

TEST(BinarySearchPolicyTest, CapsAtMaxFactor) {
  BinarySearchThresholdPolicy policy(0.5, 2.0);
  // One pair with a huge count: even doubling τ cannot evict 50 words.
  std::vector<Count> counts = {1000000};
  ThresholdRaiseContext c = MakeContext(10.0, 0, 1, 100);
  c.counts = &counts;
  EXPECT_DOUBLE_EQ(policy.NextThreshold(c), 20.0);
}

TEST(DefaultPolicyTest, IsPaperMultiplicative) {
  auto policy = DefaultThresholdPolicy();
  EXPECT_EQ(policy->Name(), "multiplicative");
  const ThresholdRaiseContext c = MakeContext(100.0, 10, 10, 100);
  EXPECT_NEAR(policy->NextThreshold(c), 110.0, 1e-9);
}

}  // namespace
}  // namespace aqua
