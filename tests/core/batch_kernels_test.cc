// The vector kernels may only touch deterministic work, and must be
// lane-for-lane identical to the scalar reference: hashes equal to
// IntegerHash, routes equal to hash % shards, partitions stable.  These
// tests sweep every remainder class around the vector widths (1, width-1,
// width, width+1 for widths 2, 4, 8, 16) so no lane of any compiled-in
// kernel — AVX2, SSE2, NEON, or the forced-scalar fallback — goes
// unchecked.

#include "core/batch_kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "container/flat_hash_map.h"
#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "random/random.h"
#include "workload/generators.h"

namespace aqua {
namespace {

TEST(BatchKernelsTest, KernelNameIsKnown) {
  const std::string_view name = BatchKernelName();
  EXPECT_TRUE(name == "avx2" || name == "sse2" || name == "neon" ||
              name == "scalar")
      << name;
#if defined(AQUA_FORCE_SCALAR)
  EXPECT_EQ(name, "scalar");
#endif
}

// All batch sizes around every plausible vector width, plus empty.
std::vector<std::size_t> WidthSweep() {
  std::vector<std::size_t> sizes = {0, 1};
  for (std::size_t width : {2u, 4u, 8u, 16u}) {
    sizes.push_back(width - 1);
    sizes.push_back(width);
    sizes.push_back(width + 1);
  }
  sizes.push_back(100);
  sizes.push_back(kBatchChunk - 1);
  sizes.push_back(kBatchChunk);
  sizes.push_back(kBatchChunk + 1);
  sizes.push_back(4096);
  return sizes;
}

TEST(BatchKernelsTest, HashBatchMatchesIntegerHashLaneForLane) {
  IntegerHash reference;
  Random rng(0xBA7C4);
  for (std::size_t n : WidthSweep()) {
    std::vector<Value> values(n);
    for (Value& v : values) {
      v = static_cast<Value>(rng.UniformU64(~std::uint64_t{0}));
    }
    std::vector<std::uint64_t> hashes(n + 1, 0xDEADDEADDEADDEADULL);
    HashBatch(values, hashes.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hashes[i], reference(values[i])) << "lane " << i << " of "
                                                 << n;
    }
    // No out-of-bounds store past the batch.
    EXPECT_EQ(hashes[n], 0xDEADDEADDEADDEADULL);
  }
}

TEST(BatchKernelsTest, HashBatchExtremeValues) {
  IntegerHash reference;
  const std::vector<Value> values = {0,  -1, 1,  INT64_MIN, INT64_MAX,
                                     42, -42, 0x7f, -0x80,   1LL << 62};
  std::vector<std::uint64_t> hashes(values.size());
  HashBatch(values, hashes.data());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(hashes[i], reference(values[i])) << values[i];
  }
}

TEST(BatchKernelsTest, RouteFromHashesMatchesModulo) {
  Random rng(0xF00D);
  for (std::size_t shards : {1u, 2u, 3u, 7u, 8u, 64u}) {
    std::vector<std::uint64_t> hashes(257);
    for (auto& h : hashes) h = rng.UniformU64(~std::uint64_t{0});
    std::vector<std::uint32_t> routes(hashes.size());
    RouteFromHashes(hashes, shards, routes.data());
    for (std::size_t i = 0; i < hashes.size(); ++i) {
      EXPECT_EQ(routes[i], hashes[i] % shards);
    }
  }
}

TEST(BatchKernelsTest, PartitionByShardIsStableAndComplete) {
  const std::vector<Value> values = ZipfValues(10000, 700, 1.0, 99);
  IntegerHash hash;
  for (std::size_t shards : {1u, 3u, 8u}) {
    ShardPartitionScratch scratch;
    PartitionByShard(values, shards, scratch);
    ASSERT_EQ(scratch.offsets.size(), shards + 1);
    EXPECT_EQ(scratch.offsets.front(), 0u);
    EXPECT_EQ(scratch.offsets.back(), values.size());
    // Per-shard ranges must contain exactly the values routed there, in
    // stream order (stability is what keeps per-shard draw streams equal
    // to element-at-a-time routing).
    for (std::size_t s = 0; s < shards; ++s) {
      std::vector<Value> expected;
      for (Value v : values) {
        if (hash(v) % shards == s) expected.push_back(v);
      }
      const std::vector<Value> got(
          scratch.values.begin() + scratch.offsets[s],
          scratch.values.begin() + scratch.offsets[s + 1]);
      EXPECT_EQ(got, expected) << "shard " << s << "/" << shards;
      for (std::size_t i = scratch.offsets[s]; i < scratch.offsets[s + 1];
           ++i) {
        EXPECT_EQ(scratch.grouped_hashes[i], hash(scratch.values[i]));
      }
    }
  }
}

TEST(BatchKernelsTest, PartitionScratchDoesNotShrinkAcrossCalls) {
  ShardPartitionScratch scratch;
  const std::vector<Value> big = UniformValues(5000, 1000, 3);
  PartitionByShard(big, 8, scratch);
  const std::size_t cap = scratch.values.capacity();
  const std::vector<Value> small = UniformValues(10, 1000, 4);
  PartitionByShard(small, 8, scratch);
  EXPECT_EQ(scratch.values.capacity(), cap);
  EXPECT_EQ(scratch.offsets.back(), small.size());
}

// Prehashed sample ingestion must be bit-identical to the self-hashing
// batch path (which the equivalence suite already pins against per-element
// Insert) across the same width sweep.
TEST(BatchKernelsTest, PrehashedConciseSampleMatches) {
  const std::vector<Value> data = ZipfValues(40000, 2000, 1.0, 777);
  ConciseSampleOptions o;
  o.footprint_bound = 300;
  o.seed = 21;
  ConciseSample plain(o);
  ConciseSample prehashed(o);
  std::vector<std::uint64_t> hashes(data.size());
  HashBatch(data, hashes.data());
  const std::span<const Value> all(data);
  const std::span<const std::uint64_t> all_hashes(hashes);
  for (std::size_t n : WidthSweep()) {
    std::size_t i = 0;
    // consume the stream in sweep-sized slices, alternating entry points
    for (; i + n <= data.size() && n > 0; i += n) {
      plain.InsertBatch(all.subspan(i, n));
      prehashed.InsertBatchPrehashed(all.subspan(i, n),
                                     all_hashes.subspan(i, n));
    }
    EXPECT_EQ(plain.SampleSize(), prehashed.SampleSize());
    EXPECT_EQ(plain.Threshold(), prehashed.Threshold());
    break;  // one full pass with the first nonzero size is enough here
  }
}

TEST(BatchKernelsTest, PrehashedCountingSampleMatchesEverySliceSize) {
  const std::vector<Value> data = ZipfValues(30000, 1500, 0.8, 555);
  for (std::size_t n : WidthSweep()) {
    if (n == 0) continue;
    CountingSampleOptions o;
    o.footprint_bound = 250;
    o.seed = 31;
    CountingSample plain(o);
    CountingSample prehashed(o);
    std::vector<std::uint64_t> hashes(data.size());
    HashBatch(data, hashes.data());
    const std::span<const Value> all(data);
    const std::span<const std::uint64_t> all_hashes(hashes);
    for (std::size_t i = 0; i < data.size(); i += n) {
      const std::size_t len = std::min(n, data.size() - i);
      plain.InsertBatch(all.subspan(i, len));
      prehashed.InsertBatchPrehashed(all.subspan(i, len),
                                     all_hashes.subspan(i, len));
    }
    EXPECT_EQ(plain.Threshold(), prehashed.Threshold()) << "slice " << n;
    EXPECT_EQ(plain.CountedOccurrences(), prehashed.CountedOccurrences())
        << "slice " << n;
    auto a = plain.Entries();
    auto b = prehashed.Entries();
    std::sort(a.begin(), a.end(), [](const ValueCount& x, const ValueCount& y) {
      return x.value < y.value;
    });
    std::sort(b.begin(), b.end(), [](const ValueCount& x, const ValueCount& y) {
      return x.value < y.value;
    });
    EXPECT_EQ(a, b) << "slice " << n;
  }
}

}  // namespace
}  // namespace aqua
