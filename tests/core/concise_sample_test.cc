#include "core/concise_sample.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "workload/generators.h"

namespace aqua {
namespace {

ConciseSampleOptions Opts(Words bound, std::uint64_t seed,
                          bool skip = true) {
  ConciseSampleOptions o;
  o.footprint_bound = bound;
  o.seed = seed;
  o.use_skip_counting = skip;
  return o;
}

TEST(ConciseSampleTest, ReseedDecorrelatesFutureDraws) {
  // A copy shares the original's random stream state; fed the same suffix
  // it stays byte-identical.  After Reseed the copy's selections must
  // diverge (contents are untouched at the moment of reseeding).
  ConciseSample original(Opts(100, 5));
  const std::vector<Value> prefix = ZipfValues(50000, 2000, 1.0, 6);
  original.InsertBatch(prefix);
  ASSERT_GT(original.Threshold(), 1.0);  // selection is actually random

  ConciseSample twin = original;
  ConciseSample reseeded = original;
  reseeded.Reseed(999);
  EXPECT_EQ(reseeded.Entries().size(), original.Entries().size());
  EXPECT_DOUBLE_EQ(reseeded.Threshold(), original.Threshold());

  const std::vector<Value> suffix = ZipfValues(50000, 2000, 1.0, 7);
  original.InsertBatch(suffix);
  twin.InsertBatch(suffix);
  reseeded.InsertBatch(suffix);
  auto sorted_entries = [](const ConciseSample& s) {
    std::vector<ValueCount> entries = s.Entries();
    std::sort(entries.begin(), entries.end(),
              [](const ValueCount& a, const ValueCount& b) {
                return a.value < b.value;
              });
    return entries;
  };
  EXPECT_EQ(sorted_entries(twin), sorted_entries(original));
  EXPECT_NE(sorted_entries(reseeded), sorted_entries(original));
  EXPECT_TRUE(reseeded.Validate().ok());
}

TEST(ConciseSampleTest, EmptySample) {
  ConciseSample s(Opts(100, 1));
  EXPECT_EQ(s.SampleSize(), 0);
  EXPECT_EQ(s.Footprint(), 0);
  EXPECT_EQ(s.DistinctValues(), 0);
  EXPECT_DOUBLE_EQ(s.Threshold(), 1.0);
  EXPECT_TRUE(s.Validate().ok());
  EXPECT_EQ(s.Name(), "concise-sample");
}

TEST(ConciseSampleTest, StartupPhaseKeepsEverything) {
  // Until the footprint bound is hit, τ stays 1 and the sample is the exact
  // data (in concise form).
  ConciseSample s(Opts(1000, 2));
  for (Value v = 0; v < 100; ++v) s.Insert(v % 10);
  EXPECT_EQ(s.SampleSize(), 100);
  EXPECT_EQ(s.DistinctValues(), 10);
  EXPECT_EQ(s.PairCount(), 10);
  EXPECT_EQ(s.Footprint(), 20);
  EXPECT_DOUBLE_EQ(s.Threshold(), 1.0);
  EXPECT_EQ(s.CountOf(3), 10);
  EXPECT_EQ(s.CountOf(12345), 0);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(ConciseSampleTest, ExactHistogramWhenAllValuesFit) {
  // §3: "if there are at most m/2 distinct values for R.A, then a concise
  // sample of sample-size n has a footprint at most m" — the sample is the
  // exact histogram and the threshold never rises.
  ConciseSample s(Opts(1000, 3));
  const std::vector<Value> data = ZipfValues(50000, 400, 1.5, 99);
  for (Value v : data) s.Insert(v);
  EXPECT_EQ(s.SampleSize(), 50000);
  EXPECT_DOUBLE_EQ(s.Threshold(), 1.0);
  EXPECT_LE(s.Footprint(), 800);
  EXPECT_EQ(s.Cost().threshold_raises, 0);
  // Zero coin flips: every insert is deterministic at τ = 1 (§3.3's
  // observation for zipf > 2: "exactly one lookup and zero coin flips").
  EXPECT_EQ(s.Cost().coin_flips, 0);
  EXPECT_EQ(s.Cost().lookups, 50000);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(ConciseSampleTest, FootprintNeverExceedsBound) {
  ConciseSample s(Opts(100, 4));
  const std::vector<Value> data = ZipfValues(100000, 5000, 1.0, 100);
  for (Value v : data) {
    s.Insert(v);
    ASSERT_LE(s.Footprint(), 100);
  }
  EXPECT_TRUE(s.Validate().ok());
  EXPECT_GT(s.Cost().threshold_raises, 0);
  EXPECT_GT(s.Threshold(), 1.0);
}

TEST(ConciseSampleTest, SampleSizeAtLeastDistinctValues) {
  ConciseSample s(Opts(200, 5));
  for (Value v : ZipfValues(50000, 1000, 1.25, 101)) s.Insert(v);
  EXPECT_GE(s.SampleSize(), s.DistinctValues());
  // Footprint accounting identity from Definition 2.
  EXPECT_EQ(s.Footprint(), s.DistinctValues() + s.PairCount());
}

TEST(ConciseSampleTest, SkewGrowsSampleSizeBeyondFootprint) {
  // Lemma 1 direction: a skewed stream packs many sample points per word.
  // At zipf 1.5 / D=500 / m=100 the paper's Figure-4 run measured a 3.8×
  // gain (sample-size 388); zipf 2.0 gives an order of magnitude.
  ConciseSample moderate(Opts(100, 6));
  for (Value v : ZipfValues(500000, 500, 1.5, 102)) moderate.Insert(v);
  EXPECT_GT(moderate.SampleSize(), 3 * moderate.Footprint());
  EXPECT_TRUE(moderate.Validate().ok());

  ConciseSample high(Opts(100, 6));
  for (Value v : ZipfValues(500000, 500, 2.0, 102)) high.Insert(v);
  EXPECT_GT(high.SampleSize(), 10 * high.Footprint());
  EXPECT_TRUE(high.Validate().ok());
}

TEST(ConciseSampleTest, UniformDataSampleSizeNearFootprint) {
  // With no duplication in the sample, concise ≈ traditional (§3.3: "no
  // noticeable gains" at low skew with high D/m).
  ConciseSample s(Opts(100, 7));
  for (Value v : ZipfValues(200000, 50000, 0.0, 103)) s.Insert(v);
  EXPECT_LT(s.SampleSize(), 150);
  EXPECT_GE(s.SampleSize(), 80);
}

TEST(ConciseSampleTest, ThresholdIsMonotoneNondecreasing) {
  ConciseSample s(Opts(64, 8));
  double last = s.Threshold();
  for (Value v : ZipfValues(50000, 2000, 0.5, 104)) {
    s.Insert(v);
    ASSERT_GE(s.Threshold(), last);
    last = s.Threshold();
  }
}

TEST(ConciseSampleTest, ExpectedSampleSizeTracksNOverTau) {
  // E[sample-size] = n / τ for the final threshold (each tuple is in the
  // sample with probability 1/τ, Theorem 2).
  ConciseSample s(Opts(500, 9));
  const std::vector<Value> data = ZipfValues(300000, 3000, 1.0, 105);
  for (Value v : data) s.Insert(v);
  const double expected =
      static_cast<double>(data.size()) / s.Threshold();
  EXPECT_NEAR(static_cast<double>(s.SampleSize()), expected,
              0.35 * expected);
}

TEST(ConciseSampleTest, EntriesMatchAccessors) {
  ConciseSample s(Opts(100, 10));
  for (Value v : ZipfValues(20000, 500, 1.2, 106)) s.Insert(v);
  const std::vector<ValueCount> entries = s.Entries();
  EXPECT_EQ(static_cast<std::int64_t>(entries.size()), s.DistinctValues());
  EXPECT_EQ(SampleSizeOf(entries), s.SampleSize());
  EXPECT_EQ(FootprintOf(entries), s.Footprint());
  for (const ValueCount& e : entries) {
    EXPECT_EQ(s.CountOf(e.value), e.count);
  }
}

TEST(ConciseSampleTest, ToPointSampleExpandsCounts) {
  ConciseSample s(Opts(50, 11));
  for (Value v : ZipfValues(10000, 100, 1.5, 107)) s.Insert(v);
  const std::vector<Value> points = s.ToPointSample();
  EXPECT_EQ(static_cast<std::int64_t>(points.size()), s.SampleSize());
  // Point multiplicities must match entry counts.
  for (const ValueCount& e : s.Entries()) {
    EXPECT_EQ(std::count(points.begin(), points.end(), e.value), e.count);
  }
}

TEST(ConciseSampleTest, DeterministicForFixedSeed) {
  ConciseSample a(Opts(100, 12)), b(Opts(100, 12));
  for (Value v : ZipfValues(50000, 1000, 1.0, 108)) {
    a.Insert(v);
    b.Insert(v);
  }
  EXPECT_EQ(a.SampleSize(), b.SampleSize());
  EXPECT_EQ(a.Footprint(), b.Footprint());
  EXPECT_DOUBLE_EQ(a.Threshold(), b.Threshold());
  auto ea = a.Entries(), eb = b.Entries();
  auto by_value = [](const ValueCount& x, const ValueCount& y) {
    return x.value < y.value;
  };
  std::sort(ea.begin(), ea.end(), by_value);
  std::sort(eb.begin(), eb.end(), by_value);
  EXPECT_EQ(ea, eb);
}

TEST(ConciseSampleTest, SkipAndNaiveModesAgreeStatistically) {
  // The skip-counting economization must not change the distribution;
  // compare mean sample-sizes across seeds.
  const std::vector<Value> data = ZipfValues(50000, 1000, 1.0, 109);
  double mean_skip = 0.0, mean_naive = 0.0;
  constexpr int kTrials = 12;
  for (int t = 0; t < kTrials; ++t) {
    ConciseSample skip(Opts(200, 500 + static_cast<std::uint64_t>(t), true));
    ConciseSample naive(
        Opts(200, 900 + static_cast<std::uint64_t>(t), false));
    for (Value v : data) {
      skip.Insert(v);
      naive.Insert(v);
    }
    mean_skip += static_cast<double>(skip.SampleSize());
    mean_naive += static_cast<double>(naive.SampleSize());
    ASSERT_TRUE(skip.Validate().ok());
    ASSERT_TRUE(naive.Validate().ok());
  }
  mean_skip /= kTrials;
  mean_naive /= kTrials;
  EXPECT_NEAR(mean_skip, mean_naive, 0.2 * mean_naive);
}

TEST(ConciseSampleTest, SkipModeUsesFarFewerFlipsThanNaive) {
  const std::vector<Value> data = ZipfValues(100000, 2000, 1.0, 110);
  ConciseSample skip(Opts(200, 13, true));
  ConciseSample naive(Opts(200, 13, false));
  for (Value v : data) {
    skip.Insert(v);
    naive.Insert(v);
  }
  EXPECT_LT(skip.Cost().coin_flips, naive.Cost().coin_flips / 5);
}

TEST(ConciseSampleTest, LookupsOnlyOnSelectedInserts) {
  ConciseSample s(Opts(100, 14));
  for (Value v : ZipfValues(200000, 5000, 0.0, 111)) s.Insert(v);
  // Lookups << inserts once the threshold grows (Table 1's lookup column).
  EXPECT_LT(s.Cost().lookups, 20000);
  EXPECT_GT(s.Cost().lookups, 100);
}

TEST(ConciseSampleTest, MinimumFootprintBoundIsEnforced) {
  EXPECT_DEATH({ ConciseSample s(Opts(1, 15)); (void)s; }, "at least 2");
}

TEST(ConciseSampleTest, CustomPolicyIsUsed) {
  ConciseSampleOptions o = Opts(100, 16);
  o.policy = std::make_shared<MultiplicativeThresholdPolicy>(2.0);
  ConciseSample s(o);
  for (Value v : ZipfValues(100000, 5000, 0.5, 112)) s.Insert(v);
  // Doubling policy reaches a given threshold in far fewer raises than 1.1×.
  ConciseSample default_s(Opts(100, 16));
  for (Value v : ZipfValues(100000, 5000, 0.5, 112)) default_s.Insert(v);
  EXPECT_LT(s.Cost().threshold_raises,
            default_s.Cost().threshold_raises / 2);
  EXPECT_TRUE(s.Validate().ok());
}

}  // namespace
}  // namespace aqua
