#include "core/counting_sample.h"

#include <gtest/gtest.h>

#include "core/concise_sample.h"

#include <algorithm>
#include <vector>

#include "warehouse/relation.h"
#include "workload/generators.h"

namespace aqua {
namespace {

CountingSampleOptions Opts(Words bound, std::uint64_t seed,
                           bool skip = true) {
  CountingSampleOptions o;
  o.footprint_bound = bound;
  o.seed = seed;
  o.use_skip_counting = skip;
  return o;
}

TEST(CountingSampleTest, EmptySample) {
  CountingSample s(Opts(100, 1));
  EXPECT_EQ(s.CountedOccurrences(), 0);
  EXPECT_EQ(s.Footprint(), 0);
  EXPECT_DOUBLE_EQ(s.Threshold(), 1.0);
  EXPECT_TRUE(s.Validate().ok());
  EXPECT_EQ(s.Name(), "counting-sample");
}

TEST(CountingSampleTest, ExactWhenAllValuesFit) {
  // While τ = 1 every value is admitted, so counts are exact.
  CountingSample s(Opts(1000, 2));
  Relation relation;
  for (Value v : ZipfValues(50000, 400, 1.5, 99)) {
    s.Insert(v);
    relation.Insert(v);
  }
  EXPECT_DOUBLE_EQ(s.Threshold(), 1.0);
  for (const ValueCount& vc : relation.ExactCounts()) {
    EXPECT_EQ(s.CountOf(vc.value), vc.count) << "value " << vc.value;
  }
  EXPECT_EQ(s.Cost().coin_flips, 0);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(CountingSampleTest, LookupOnEveryInsert) {
  CountingSample s(Opts(100, 3));
  const std::vector<Value> data = ZipfValues(100000, 5000, 1.0, 100);
  for (Value v : data) s.Insert(v);
  // §4.1: "they perform a look-up at each update".
  EXPECT_EQ(s.Cost().lookups, static_cast<std::int64_t>(data.size()));
}

TEST(CountingSampleTest, FootprintNeverExceedsBound) {
  CountingSample s(Opts(100, 4));
  for (Value v : ZipfValues(200000, 5000, 1.0, 101)) {
    s.Insert(v);
    ASSERT_LE(s.Footprint(), 100);
  }
  EXPECT_GT(s.Threshold(), 1.0);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(CountingSampleTest, CountsNeverExceedTrueFrequencies) {
  // Under insert-only streams the counted occurrences are a subset of the
  // true occurrences (property 1 of Definition 3).
  CountingSample s(Opts(200, 5));
  Relation relation;
  for (Value v : ZipfValues(150000, 2000, 1.25, 102)) {
    s.Insert(v);
    relation.Insert(v);
    }
  for (const ValueCount& e : s.Entries()) {
    ASSERT_LE(e.count, relation.FrequencyOf(e.value))
        << "value " << e.value;
  }
}

TEST(CountingSampleTest, HotValuesCountsNearlyExact) {
  // Theorem 6(iii): frequent values are admitted early, so their counts
  // miss at most ~τ occurrences.
  CountingSample s(Opts(500, 6));
  Relation relation;
  for (Value v : ZipfValues(300000, 5000, 1.25, 103)) {
    s.Insert(v);
    relation.Insert(v);
  }
  const double tau = s.Threshold();
  // The most frequent value.
  const Count f1 = relation.FrequencyOf(1);
  const Count c1 = s.CountOf(1);
  ASSERT_GT(c1, 0);
  EXPECT_GE(static_cast<double>(c1), static_cast<double>(f1) - 12.0 * tau);
  EXPECT_LE(c1, f1);
}

TEST(CountingSampleTest, DeleteDecrementsPresentValue) {
  CountingSample s(Opts(100, 7));
  for (int i = 0; i < 10; ++i) s.Insert(42);
  ASSERT_EQ(s.CountOf(42), 10);
  ASSERT_TRUE(s.Delete(42).ok());
  EXPECT_EQ(s.CountOf(42), 9);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(CountingSampleTest, DeleteToZeroRemovesValue) {
  CountingSample s(Opts(100, 8));
  s.Insert(7);
  ASSERT_EQ(s.CountOf(7), 1);
  ASSERT_TRUE(s.Delete(7).ok());
  EXPECT_EQ(s.CountOf(7), 0);
  EXPECT_EQ(s.Footprint(), 0);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(CountingSampleTest, DeleteOfAbsentValueIsNoOp) {
  CountingSample s(Opts(100, 9));
  s.Insert(1);
  EXPECT_TRUE(s.Delete(999).ok());
  EXPECT_EQ(s.CountOf(1), 1);
}

TEST(CountingSampleTest, MixedStreamKeepsSubsetInvariant) {
  CountingSample s(Opts(150, 10));
  Relation relation;
  const UpdateStream stream = MixedStream(120000, 1500, 1.0, 0.25, 5000, 104);
  for (const StreamOp& op : stream) {
    if (op.kind == StreamOp::Kind::kInsert) {
      s.Insert(op.value);
      relation.Insert(op.value);
    } else {
      ASSERT_TRUE(s.Delete(op.value).ok());
      ASSERT_TRUE(relation.Delete(op.value).ok());
    }
    ASSERT_LE(s.Footprint(), 150);
  }
  ASSERT_TRUE(s.Validate().ok());
  for (const ValueCount& e : s.Entries()) {
    ASSERT_LE(e.count, relation.FrequencyOf(e.value))
        << "value " << e.value;
  }
}

TEST(CountingSampleTest, ConversionYieldsValidConciseEntries) {
  CountingSample s(Opts(300, 11));
  for (Value v : ZipfValues(200000, 3000, 1.25, 105)) s.Insert(v);
  const std::vector<ValueCount> counting = s.Entries();
  const std::vector<ValueCount> concise = s.ToConciseEntries(42);
  ASSERT_EQ(concise.size(), counting.size());
  // Conversion only shrinks counts, never below 1 (§4: "the footprint
  // decreases by one for each pair for which all its coins are tails").
  std::int64_t reduced = 0;
  for (std::size_t i = 0; i < concise.size(); ++i) {
    EXPECT_EQ(concise[i].value, counting[i].value);
    EXPECT_GE(concise[i].count, 1);
    EXPECT_LE(concise[i].count, counting[i].count);
    reduced += counting[i].count - concise[i].count;
  }
  EXPECT_GT(reduced, 0);
  EXPECT_LE(FootprintOf(concise), FootprintOf(counting));
}

TEST(CountingSampleTest, ConversionExpectedSize) {
  // E[converted count] = 1 + (c-1)/τ per entry.
  CountingSample s(Opts(300, 12));
  for (Value v : ZipfValues(200000, 3000, 1.25, 106)) s.Insert(v);
  const double tau = s.Threshold();
  double expected = 0.0;
  for (const ValueCount& e : s.Entries()) {
    expected += 1.0 + static_cast<double>(e.count - 1) / tau;
  }
  double mean = 0.0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    mean += static_cast<double>(
        SampleSizeOf(s.ToConciseEntries(1000 + static_cast<std::uint64_t>(t))));
  }
  mean /= kTrials;
  EXPECT_NEAR(mean, expected, 0.15 * expected);
}

TEST(CountingSampleTest, DeterministicForFixedSeed) {
  CountingSample a(Opts(100, 13)), b(Opts(100, 13));
  for (Value v : ZipfValues(80000, 1000, 1.0, 107)) {
    a.Insert(v);
    b.Insert(v);
  }
  EXPECT_EQ(a.CountedOccurrences(), b.CountedOccurrences());
  EXPECT_DOUBLE_EQ(a.Threshold(), b.Threshold());
}

TEST(CountingSampleTest, SkipAndNaiveModesAgreeStatistically) {
  const std::vector<Value> data = ZipfValues(60000, 1500, 1.0, 108);
  double mean_skip = 0.0, mean_naive = 0.0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    CountingSample skip(Opts(200, 600 + static_cast<std::uint64_t>(t), true));
    CountingSample naive(
        Opts(200, 800 + static_cast<std::uint64_t>(t), false));
    for (Value v : data) {
      skip.Insert(v);
      naive.Insert(v);
    }
    mean_skip += static_cast<double>(skip.CountedOccurrences());
    mean_naive += static_cast<double>(naive.CountedOccurrences());
  }
  mean_skip /= kTrials;
  mean_naive /= kTrials;
  EXPECT_NEAR(mean_skip, mean_naive, 0.2 * mean_naive);
}

TEST(CountingSampleTest, MoreRaisesThanConciseOnSameStream) {
  // Table 2's observation: the counting sample raises the threshold more
  // often because most entries are pairs (counting all occurrences).
  const std::vector<Value> data = ZipfValues(200000, 5000, 1.0, 109);
  CountingSample counting(Opts(1000, 14));
  ConciseSampleOptions co;
  co.footprint_bound = 1000;
  co.seed = 14;
  ConciseSample concise(co);
  for (Value v : data) {
    counting.Insert(v);
    concise.Insert(v);
  }
  EXPECT_GE(counting.Cost().threshold_raises,
            concise.Cost().threshold_raises);
  EXPECT_GE(counting.Threshold(), concise.Threshold());
}

}  // namespace
}  // namespace aqua
