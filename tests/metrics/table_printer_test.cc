#include "metrics/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace aqua {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Each line has the same length (padding applied), ignoring the rule.
  std::istringstream is(out);
  std::string line1, rule, line2, line3;
  std::getline(is, line1);
  std::getline(is, rule);
  std::getline(is, line2);
  std::getline(is, line3);
  EXPECT_EQ(line1.size(), line2.size());
  EXPECT_EQ(line2.size(), line3.size());
  EXPECT_EQ(rule.find_first_not_of('-'), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"}).AddRow({"3", "4"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(TablePrinterTest, NumFormatting) {
  EXPECT_EQ(TablePrinter::Num(static_cast<std::int64_t>(42)), "42");
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(0.0005, 3), "0.001");
}

TEST(TablePrinterDeathTest, RowArityMustMatchHeaders) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "AQUA_CHECK");
}

}  // namespace
}  // namespace aqua
