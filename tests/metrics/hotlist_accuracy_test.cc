#include "metrics/hotlist_accuracy.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

const std::vector<ValueCount> kExact = {
    {1, 100}, {2, 80}, {3, 60}, {4, 40}, {5, 20}, {6, 10}, {7, 5}};

TEST(ExactTopKTest, SortsAndTruncates) {
  const auto top3 = ExactTopK(kExact, 3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0].value, 1);
  EXPECT_EQ(top3[2].value, 3);
}

TEST(ExactTopKTest, KeepsTiesAtCutoff) {
  const std::vector<ValueCount> tied = {{1, 10}, {2, 5}, {3, 5}, {4, 1}};
  const auto top2 = ExactTopK(tied, 2);
  ASSERT_EQ(top2.size(), 3u);  // value 3 ties with value 2
}

TEST(EvaluateHotListTest, PerfectReport) {
  HotList reported = {{1, 100.0, 100}, {2, 80.0, 80}, {3, 60.0, 60}};
  const HotListAccuracy acc = EvaluateHotList(reported, kExact, 3);
  EXPECT_EQ(acc.reported, 3);
  EXPECT_EQ(acc.true_positives, 3);
  EXPECT_EQ(acc.false_positives, 0);
  EXPECT_EQ(acc.false_negatives, 0);
  EXPECT_EQ(acc.correct_prefix, 3);
  EXPECT_DOUBLE_EQ(acc.mean_relative_count_error, 0.0);
  EXPECT_DOUBLE_EQ(acc.Recall(3), 1.0);
  EXPECT_DOUBLE_EQ(acc.Precision(), 1.0);
}

TEST(EvaluateHotListTest, FalseNegativeBreaksPrefix) {
  // Top-4 is {1,2,3,4}; value 2 missing → prefix stops at 1.
  HotList reported = {{1, 100.0, 100}, {3, 60.0, 60}, {4, 40.0, 40}};
  const HotListAccuracy acc = EvaluateHotList(reported, kExact, 4);
  EXPECT_EQ(acc.true_positives, 3);
  EXPECT_EQ(acc.false_negatives, 1);
  EXPECT_EQ(acc.correct_prefix, 1);
}

TEST(EvaluateHotListTest, FalsePositivesCounted) {
  HotList reported = {{1, 100.0, 100}, {99, 55.0, 55}};
  const HotListAccuracy acc = EvaluateHotList(reported, kExact, 2);
  EXPECT_EQ(acc.true_positives, 1);
  EXPECT_EQ(acc.false_positives, 1);
  EXPECT_DOUBLE_EQ(acc.Precision(), 0.5);
}

TEST(EvaluateHotListTest, CountErrorsAveraged) {
  // Errors: |90-100|/100 = 0.1 and |100-80|/80 = 0.25.
  HotList reported = {{1, 90.0, 90}, {2, 100.0, 100}};
  const HotListAccuracy acc = EvaluateHotList(reported, kExact, 2);
  EXPECT_NEAR(acc.mean_relative_count_error, (0.1 + 0.25) / 2, 1e-12);
  EXPECT_NEAR(acc.max_relative_count_error, 0.25, 1e-12);
}

TEST(EvaluateHotListTest, EmptyReport) {
  const HotListAccuracy acc = EvaluateHotList({}, kExact, 3);
  EXPECT_EQ(acc.reported, 0);
  EXPECT_EQ(acc.false_negatives, 3);
  EXPECT_DOUBLE_EQ(acc.Recall(3), 0.0);
  EXPECT_DOUBLE_EQ(acc.Precision(), 0.0);
}

}  // namespace
}  // namespace aqua
