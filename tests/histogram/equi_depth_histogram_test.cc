#include "histogram/equi_depth_histogram.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/concise_sample.h"
#include "workload/generators.h"

namespace aqua {
namespace {

TEST(EquiDepthHistogramTest, EmptySample) {
  EquiDepthHistogram h(std::vector<Value>{}, 4, 1000);
  EXPECT_DOUBLE_EQ(h.EstimateRangeCount(1, 10), 0.0);
}

TEST(EquiDepthHistogramTest, FullRangeCoversRelation) {
  const std::vector<Value> sample = UniformValues(5000, 1000, 1);
  EquiDepthHistogram h(sample, 10, 100000);
  EXPECT_NEAR(h.EstimateRangeCount(1, 1000), 100000.0, 1.0);
}

TEST(EquiDepthHistogramTest, UniformDataBoundariesAreLinear) {
  const std::vector<Value> sample = UniformValues(20000, 1000, 2);
  EquiDepthHistogram h(sample, 10, 20000);
  const std::vector<double>& b = h.boundaries();
  ASSERT_EQ(b.size(), 11u);
  for (int i = 1; i < 10; ++i) {
    EXPECT_NEAR(b[static_cast<std::size_t>(i)], 100.0 * i, 25.0) << i;
  }
}

TEST(EquiDepthHistogramTest, RangeSelectivityNearTruthOnUniform) {
  const std::vector<Value> sample = UniformValues(20000, 1000, 3);
  EquiDepthHistogram h(sample, 20, 500000);
  // True selectivity of [1, 250] is 0.25.
  EXPECT_NEAR(h.EstimateRangeSelectivity(1, 250), 0.25, 0.03);
  EXPECT_NEAR(h.EstimateRangeCount(1, 250), 125000.0, 15000.0);
}

TEST(EquiDepthHistogramTest, EmptyAndInvertedRanges) {
  const std::vector<Value> sample = UniformValues(1000, 100, 4);
  EquiDepthHistogram h(sample, 5, 1000);
  EXPECT_DOUBLE_EQ(h.EstimateRangeSelectivity(50, 40), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateRangeSelectivity(2000, 3000), 0.0);
}

TEST(EquiDepthHistogramTest, SelectivityMonotoneInRangeWidth) {
  const std::vector<Value> sample = ZipfValues(20000, 1000, 1.0, 5);
  EquiDepthHistogram h(sample, 20, 20000);
  double last = 0.0;
  for (Value hi = 50; hi <= 1000; hi += 50) {
    const double s = h.EstimateRangeSelectivity(1, hi);
    EXPECT_GE(s, last - 1e-12);
    last = s;
  }
  EXPECT_NEAR(last, 1.0, 1e-9);
}

TEST(EquiDepthHistogramTest, ConciseBackingSampleImprovesAccuracy) {
  // §2's point: a concise sample packs more sample points into the same
  // footprint, so a histogram built from it beats one built from a
  // traditional sample of equal footprint.  Use skewed data where the
  // concise sample-size advantage is large.
  const std::vector<Value> data = ZipfValues(300000, 1000, 1.25, 6);
  ConciseSample concise(
      ConciseSampleOptions{.footprint_bound = 250, .seed = 7});
  for (Value v : data) concise.Insert(v);
  const std::vector<Value> concise_points = concise.ToPointSample();
  ASSERT_GT(concise_points.size(), 500u);
  std::vector<Value> traditional_points(concise_points.begin(),
                                        concise_points.begin() + 250);

  EquiDepthHistogram from_concise(concise_points, 20,
                                  static_cast<std::int64_t>(data.size()));
  EquiDepthHistogram from_traditional(
      traditional_points, 20, static_cast<std::int64_t>(data.size()));

  // Ground truth for [1, 5].
  std::int64_t truth = 0;
  for (Value v : data) truth += (v >= 1 && v <= 5);
  const double err_concise = std::abs(
      from_concise.EstimateRangeCount(1, 5) - static_cast<double>(truth));
  const double err_traditional =
      std::abs(from_traditional.EstimateRangeCount(1, 5) -
               static_cast<double>(truth));
  EXPECT_LE(err_concise, err_traditional * 1.5);
}

}  // namespace
}  // namespace aqua
