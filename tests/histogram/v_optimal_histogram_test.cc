#include "histogram/v_optimal_histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "histogram/equi_depth_histogram.h"
#include "workload/generators.h"

namespace aqua {
namespace {

/// Brute-force minimum SSE over all partitions (exponential; tiny inputs).
double BruteForceSse(const std::vector<double>& f, int buckets) {
  const std::size_t d = f.size();
  auto sse = [&](std::size_t i, std::size_t j) {
    double mean = 0.0;
    for (std::size_t k = i; k < j; ++k) mean += f[k];
    mean /= static_cast<double>(j - i);
    double total = 0.0;
    for (std::size_t k = i; k < j; ++k) total += (f[k] - mean) * (f[k] - mean);
    return total;
  };
  double best = std::numeric_limits<double>::infinity();
  // Enumerate partitions as bitmasks of split positions.
  const std::size_t splits = d - 1;
  for (std::uint64_t mask = 0; mask < (1ULL << splits); ++mask) {
    if (std::popcount(mask) != buckets - 1) continue;
    double total = 0.0;
    std::size_t start = 0;
    for (std::size_t pos = 0; pos < splits; ++pos) {
      if (mask & (1ULL << pos)) {
        total += sse(start, pos + 1);
        start = pos + 1;
      }
    }
    total += sse(start, d);
    best = std::min(best, total);
  }
  return best;
}

TEST(VOptimalPartitionTest, MatchesBruteForceOnSmallInputs) {
  const std::vector<std::vector<double>> cases = {
      {5, 5, 5, 1, 1, 1},
      {10, 1, 10, 1, 10, 1},
      {1, 2, 3, 4, 5, 6, 7, 8},
      {100, 90, 5, 4, 3, 50, 49, 2},
      {7, 7, 7, 7},
  };
  for (const auto& f : cases) {
    for (int buckets = 1;
         buckets <= static_cast<int>(f.size()) && buckets <= 4; ++buckets) {
      double dp_sse = 0.0;
      const auto ends =
          VOptimalHistogram::OptimalPartition(f, buckets, &dp_sse);
      EXPECT_EQ(ends.size(), static_cast<std::size_t>(buckets));
      EXPECT_EQ(ends.back(), f.size());
      EXPECT_NEAR(dp_sse, BruteForceSse(f, buckets), 1e-9)
          << "buckets=" << buckets;
    }
  }
}

TEST(VOptimalPartitionTest, OneBucketSseIsTotalVariance) {
  const std::vector<double> f = {2, 4, 6};
  double sse = 0.0;
  const auto ends = VOptimalHistogram::OptimalPartition(f, 1, &sse);
  EXPECT_EQ(ends, (std::vector<std::size_t>{3}));
  EXPECT_NEAR(sse, 8.0, 1e-12);  // mean 4: (4 + 0 + 4)
}

TEST(VOptimalPartitionTest, EnoughBucketsGivesZeroSse) {
  const std::vector<double> f = {9, 1, 5, 5, 7};
  double sse = 1.0;
  const auto ends = VOptimalHistogram::OptimalPartition(f, 5, &sse);
  EXPECT_EQ(ends.size(), 5u);
  EXPECT_NEAR(sse, 0.0, 1e-12);
}

TEST(VOptimalPartitionTest, BucketsCappedAtDistinctValues) {
  const std::vector<double> f = {1, 2};
  const auto ends = VOptimalHistogram::OptimalPartition(f, 10);
  EXPECT_EQ(ends.size(), 2u);
}

TEST(VOptimalHistogramTest, SeparatesHeadFromTail) {
  // Skewed data: the optimal partition isolates the huge head frequencies
  // into their own buckets.
  const std::vector<Value> sample = ZipfValues(50000, 1000, 1.5, 1);
  VOptimalHistogram h(sample, 10, 50000);
  ASSERT_GE(h.bucket_count(), 2);
  // The first bucket must cover very few distinct values (the head).
  EXPECT_LE(h.buckets().front().distinct, 3);
  // Head frequency estimate is nearly exact.
  std::int64_t f1 = 0;
  for (Value v : sample) f1 += (v == 1);
  EXPECT_NEAR(h.EstimateFrequency(1), static_cast<double>(f1),
              0.35 * static_cast<double>(f1));
}

TEST(VOptimalHistogramTest, RangeCountFullDomain) {
  const std::vector<Value> sample = ZipfValues(30000, 500, 1.0, 2);
  VOptimalHistogram h(sample, 12, 300000);
  EXPECT_NEAR(h.EstimateRangeCount(1, 500), 300000.0, 3000.0);
  EXPECT_DOUBLE_EQ(h.EstimateRangeCount(400, 300), 0.0);
}

TEST(VOptimalHistogramTest, BeatsEquiDepthOnSkewedRangeError) {
  // V-optimal's motivating property (§1 / [PIHS96]): lower range-count
  // error on skewed frequency vectors than equi-depth with the same bucket
  // budget, for ranges inside the skewed head.
  const std::vector<Value> data = ZipfValues(200000, 2000, 1.3, 3);
  VOptimalHistogram vopt(data, 16, 200000);
  EquiDepthHistogram equi(data, 16, 200000);
  double vopt_err = 0.0, equi_err = 0.0;
  for (Value hi = 2; hi <= 20; hi += 2) {
    std::int64_t truth = 0;
    for (Value v : data) truth += (v <= hi);
    vopt_err += std::abs(vopt.EstimateRangeCount(1, hi) -
                         static_cast<double>(truth));
    equi_err += std::abs(equi.EstimateRangeCount(1, hi) -
                         static_cast<double>(truth));
  }
  EXPECT_LT(vopt_err, equi_err);
}

TEST(VOptimalHistogramTest, EmptySample) {
  VOptimalHistogram h(std::vector<Value>{}, 5, 100);
  EXPECT_EQ(h.bucket_count(), 0);
  EXPECT_DOUBLE_EQ(h.EstimateRangeCount(1, 10), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateFrequency(1), 0.0);
}

}  // namespace
}  // namespace aqua
