#include "histogram/compressed_histogram.h"

#include <gtest/gtest.h>

#include <vector>

#include "workload/generators.h"

namespace aqua {
namespace {

TEST(CompressedHistogramTest, SkewedHeadGetsSingletonBuckets) {
  const std::vector<Value> sample = ZipfValues(20000, 1000, 1.5, 1);
  CompressedHistogram h(sample, 20, 20000);
  ASSERT_FALSE(h.singleton_buckets().empty());
  // The most frequent value must be a singleton bucket.
  bool found = false;
  for (const ValueCount& vc : h.singleton_buckets()) found |= (vc.value == 1);
  EXPECT_TRUE(found);
  EXPECT_GE(h.equi_depth_buckets(), 1);
}

TEST(CompressedHistogramTest, UniformDataHasNoSingletons) {
  const std::vector<Value> sample = UniformValues(20000, 1000, 2);
  CompressedHistogram h(sample, 10, 20000);
  EXPECT_TRUE(h.singleton_buckets().empty());
}

TEST(CompressedHistogramTest, HotFrequencyNearExact) {
  const std::vector<Value> data = ZipfValues(100000, 500, 1.5, 3);
  CompressedHistogram h(data, 20, 100000);  // sample == data here
  std::int64_t truth = 0;
  for (Value v : data) truth += (v == 1);
  EXPECT_NEAR(h.EstimateFrequency(1), static_cast<double>(truth),
              0.01 * static_cast<double>(truth));
}

TEST(CompressedHistogramTest, FullRangeCoversRelation) {
  const std::vector<Value> sample = ZipfValues(30000, 1000, 1.0, 4);
  CompressedHistogram h(sample, 15, 600000);
  EXPECT_NEAR(h.EstimateRangeCount(1, 1000), 600000.0, 6000.0);
}

TEST(CompressedHistogramTest, RangeCountBlendsSingletonsAndTail) {
  const std::vector<Value> data = ZipfValues(100000, 1000, 1.25, 5);
  CompressedHistogram h(data, 20, 100000);
  std::int64_t truth = 0;
  for (Value v : data) truth += (v <= 10);
  EXPECT_NEAR(h.EstimateRangeCount(1, 10), static_cast<double>(truth),
              0.12 * static_cast<double>(truth));
}

TEST(CompressedHistogramTest, InvertedRangeIsZero) {
  const std::vector<Value> sample = UniformValues(1000, 100, 6);
  CompressedHistogram h(sample, 5, 1000);
  EXPECT_DOUBLE_EQ(h.EstimateRangeCount(80, 20), 0.0);
}

}  // namespace
}  // namespace aqua
