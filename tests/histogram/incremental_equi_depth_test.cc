#include "histogram/incremental_equi_depth.h"

#include <gtest/gtest.h>

#include <numeric>

#include "sample/backing_sample.h"
#include "core/concise_sample.h"
#include "workload/generators.h"

namespace aqua {
namespace {

TEST(IncrementalEquiDepthTest, EmptyHistogram) {
  IncrementalEquiDepthHistogram h(4, 1.0, [] { return std::vector<Value>{}; });
  EXPECT_EQ(h.total(), 0);
  EXPECT_DOUBLE_EQ(h.EstimateRangeCount(1, 10), 0.0);
}

TEST(IncrementalEquiDepthTest, CountsSumToTotal) {
  BackingSample backing(200, 20, 1);
  IncrementalEquiDepthHistogram h(8, 0.5,
                                  [&backing] { return backing.Points(); });
  for (Value v : ZipfValues(100000, 2000, 1.0, 2)) {
    backing.Insert(v);
    h.Insert(v);
  }
  const double sum =
      std::accumulate(h.counts().begin(), h.counts().end(), 0.0);
  EXPECT_NEAR(sum, static_cast<double>(h.total()), 1e-6);
  EXPECT_EQ(h.total(), 100000);
  EXPECT_EQ(h.bucket_count(), 8);
}

TEST(IncrementalEquiDepthTest, SplitsKeepBucketsBalanced) {
  BackingSample backing(500, 50, 3);
  IncrementalEquiDepthHistogram h(10, 0.5,
                                  [&backing] { return backing.Points(); });
  for (Value v : ZipfValues(200000, 5000, 1.0, 4)) {
    backing.Insert(v);
    h.Insert(v);
  }
  EXPECT_GT(h.splits(), 0);
  // No bucket should end far beyond the imbalance threshold.
  const double threshold = 1.5 * 200000.0 / 10.0;
  for (double c : h.counts()) EXPECT_LE(c, threshold * 1.3);
}

TEST(IncrementalEquiDepthTest, SplitsOutnumberRecomputes) {
  // The [GMP97b] efficiency claim: local split&merge handles nearly all
  // imbalance events without touching the full sample.
  BackingSample backing(500, 50, 5);
  IncrementalEquiDepthHistogram h(10, 0.5,
                                  [&backing] { return backing.Points(); });
  for (Value v : ZipfValues(300000, 10000, 0.8, 6)) {
    backing.Insert(v);
    h.Insert(v);
  }
  EXPECT_GT(h.splits(), 2 * h.recomputes());
}

TEST(IncrementalEquiDepthTest, RangeCountsTrackTruthOnUniform) {
  BackingSample backing(1000, 100, 7);
  IncrementalEquiDepthHistogram h(20, 0.5,
                                  [&backing] { return backing.Points(); });
  const std::vector<Value> data = UniformValues(200000, 1000, 8);
  for (Value v : data) {
    backing.Insert(v);
    h.Insert(v);
  }
  std::int64_t truth = 0;
  for (Value v : data) truth += (v >= 100 && v <= 400);
  EXPECT_NEAR(h.EstimateRangeCount(100, 400), static_cast<double>(truth),
              0.1 * static_cast<double>(truth));
  // Full-range query returns ~everything.
  EXPECT_NEAR(h.EstimateRangeCount(1, 1000), 200000.0, 4000.0);
}

TEST(IncrementalEquiDepthTest, ConciseSampleAsBackingSample) {
  // §2: "a concise sample could be used as a backing sample".
  ConciseSample concise(
      ConciseSampleOptions{.footprint_bound = 400, .seed = 9});
  IncrementalEquiDepthHistogram h(
      10, 0.5, [&concise] { return concise.ToPointSample(); });
  const std::vector<Value> data = ZipfValues(150000, 2000, 1.2, 10);
  for (Value v : data) {
    concise.Insert(v);
    h.Insert(v);
  }
  // Equi-depth buckets dilute the extreme head under the continuous-spread
  // assumption, so tolerances differ by range width: generous for the
  // narrow head, tight for a range covering whole buckets.
  std::int64_t head_truth = 0, wide_truth = 0;
  for (Value v : data) {
    head_truth += (v <= 10);
    wide_truth += (v <= 100);
  }
  EXPECT_NEAR(h.EstimateRangeCount(1, 10), static_cast<double>(head_truth),
              0.5 * static_cast<double>(head_truth));
  EXPECT_NEAR(h.EstimateRangeCount(1, 100),
              static_cast<double>(wide_truth),
              0.2 * static_cast<double>(wide_truth));
}

TEST(IncrementalEquiDepthTest, SingleValueStreamStaysDegenerate) {
  IncrementalEquiDepthHistogram h(4, 1.0, [] {
    return std::vector<Value>(100, 7);
  });
  for (int i = 0; i < 10000; ++i) h.Insert(7);
  EXPECT_EQ(h.total(), 10000);
  EXPECT_NEAR(h.EstimateRangeCount(7, 7), 10000.0, 1.0);
  EXPECT_NEAR(h.EstimateRangeCount(8, 9), 0.0, 1.0);
}

}  // namespace
}  // namespace aqua
