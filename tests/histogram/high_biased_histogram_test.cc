#include "histogram/high_biased_histogram.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

HighBiasedHistogram MakeBasic() {
  // n = 1000; hot: {1: 500, 2: 200}; remainder 300 over 30 values.
  return HighBiasedHistogram({{1, 500}, {2, 200}}, 1000, 30);
}

TEST(HighBiasedHistogramTest, HotValuesExact) {
  const HighBiasedHistogram h = MakeBasic();
  EXPECT_DOUBLE_EQ(h.EstimateFrequency(1), 500.0);
  EXPECT_DOUBLE_EQ(h.EstimateFrequency(2), 200.0);
}

TEST(HighBiasedHistogramTest, RemainderIsUniformAverage) {
  const HighBiasedHistogram h = MakeBasic();
  EXPECT_DOUBLE_EQ(h.EstimateFrequency(99), 10.0);  // 300 / 30
  EXPECT_DOUBLE_EQ(h.remainder_mass(), 300.0);
}

TEST(HighBiasedHistogramTest, EqualitySelectivity) {
  const HighBiasedHistogram h = MakeBasic();
  EXPECT_DOUBLE_EQ(h.EstimateEqualitySelectivity(1), 0.5);
  EXPECT_DOUBLE_EQ(h.EstimateEqualitySelectivity(99), 0.01);
}

TEST(HighBiasedHistogramTest, ZeroRemainderDistinct) {
  HighBiasedHistogram h({{1, 10}}, 10, 0);
  EXPECT_DOUBLE_EQ(h.EstimateFrequency(2), 0.0);
}

TEST(HighBiasedHistogramTest, FootprintCountsPairsPlusRemainder) {
  EXPECT_EQ(MakeBasic().Footprint(), 2 * 2 + 2);
}

TEST(HighBiasedHistogramTest, JoinSizeExactWhenBothFullyHot) {
  // R: {1: 3, 2: 4}; S: {1: 5, 2: 6}; no remainder.
  HighBiasedHistogram r({{1, 3}, {2, 4}}, 7, 0);
  HighBiasedHistogram s({{1, 5}, {2, 6}}, 11, 0);
  EXPECT_DOUBLE_EQ(HighBiasedHistogram::EstimateJoinSize(r, s),
                   3 * 5 + 4 * 6);
}

TEST(HighBiasedHistogramTest, JoinSizeIncludesRemainderTerms) {
  // R hot {1:10}, remainder 10 over 10 values; S hot {1:10}, remainder 10
  // over 10 values.  Hot⋈hot = 100; remainder⋈remainder adds 10·1·1 = 10.
  HighBiasedHistogram r({{1, 10}}, 20, 10);
  HighBiasedHistogram s({{1, 10}}, 20, 10);
  const double join = HighBiasedHistogram::EstimateJoinSize(r, s);
  EXPECT_DOUBLE_EQ(join, 100.0 + 10.0);
}

TEST(HighBiasedHistogramTest, SkewDominatedJoinMatchesIntuition) {
  // The hot value dominates the join size ([IC93]'s motivation).
  HighBiasedHistogram r({{7, 1000}}, 1100, 100);
  HighBiasedHistogram s({{7, 2000}}, 2100, 100);
  const double join = HighBiasedHistogram::EstimateJoinSize(r, s);
  EXPECT_GT(join, 1000.0 * 2000.0);
  EXPECT_LT(join, 1000.0 * 2000.0 * 1.1);
}

}  // namespace
}  // namespace aqua
