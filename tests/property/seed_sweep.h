#ifndef AQUA_TESTS_PROPERTY_SEED_SWEEP_H_
#define AQUA_TESTS_PROPERTY_SEED_SWEEP_H_

// Seed-sweep harness for the statistical property tests.
//
// Tolerance policy
// ----------------
// Every chi-square / uniformity / inclusion-rate check in tests/property/
// is a *statistical* assertion: it can fail on a correct implementation
// with some small probability p_false.  A single hard-coded RNG stream
// hides that — the tolerances silently end up tuned to the one stream that
// happens to pass.  Instead, each check runs once per seed in kSweepSeeds
// (five fixed, arbitrary, mutually unrelated base seeds; each run derives
// its data stream and all per-trial sampler seeds from the base seed), and
// the test asserts that at most kAllowedSeedFailures of the five runs
// fail.
//
// The per-seed tolerances are sized so that p_false is a few percent at
// worst (4-6 sigma bands, generous chi-square ceilings).  Binomially,
// with p_false = 0.05 per seed the probability of >= 2 failures in 5
// independent runs is ~2%, and a real bias — which shifts *every* stream,
// not one — fails all five.  So the budget of one keeps flakes near zero
// without loosening the per-seed bands to the point of vacuity.
//
// Usage: the statistical body of a test becomes a callable
// `bool check(std::uint64_t base_seed)` using EXPECT-free comparisons
// (return false instead of asserting), and the test calls
// `RunSeedSweep(check)`.  Structural invariants (Validate(), footprint
// bounds, exactness guarantees) stay as hard per-seed ASSERTs inside the
// callable: they must hold on every stream, so a sweep must not absorb
// their failures.

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace aqua {

/// Five fixed base seeds, deliberately unrelated (no shared affine
/// pattern a generator could alias with).
inline constexpr std::uint64_t kSweepSeeds[] = {
    0x0000A4A2ULL, 0x5EEDBEEFULL, 0x00C0FFEEULL, 0x12345678ULL,
    0x9E3779B9ULL};

inline constexpr int kSweepSeedCount = 5;
inline constexpr int kAllowedSeedFailures = 1;

/// Runs `check` once per sweep seed and fails the test when more than
/// kAllowedSeedFailures runs report failure.  `check` returns true on
/// pass; it may also use ASSERT_*/FAIL for structural invariants that no
/// seed is allowed to violate.
inline void RunSeedSweep(
    const std::function<bool(std::uint64_t)>& check) {
  std::vector<std::uint64_t> failed;
  for (const std::uint64_t seed : kSweepSeeds) {
    if (!check(seed)) failed.push_back(seed);
  }
  std::ostringstream which;
  for (const std::uint64_t seed : failed) which << " 0x" << std::hex << seed;
  EXPECT_LE(static_cast<int>(failed.size()), kAllowedSeedFailures)
      << "statistical check failed on " << failed.size() << "/"
      << kSweepSeedCount << " sweep seeds:" << which.str()
      << " — a systematic bias, not single-stream bad luck";
}

}  // namespace aqua

#endif  // AQUA_TESTS_PROPERTY_SEED_SWEEP_H_
