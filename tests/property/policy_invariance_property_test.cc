// Tolerance policy: the composition and sample-size checks run once per
// base seed in kSweepSeeds (data stream and per-trial sampler seeds
// derived from the base seed); per-seed bands allow ~25% relative error
// plus an absolute floor, and the sweep tolerates kAllowedSeedFailures
// bad seeds.  See tests/property/seed_sweep.h.  Validate() stays a hard
// assertion: Theorem 2's invariant holds for every policy on every seed.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/concise_sample.h"
#include "property/seed_sweep.h"
#include "warehouse/relation.h"
#include "workload/generators.h"

namespace aqua {
namespace {

/// Theorem 2's flexibility claim: "the algorithm maintains a concise
/// sample regardless of the sequence of increasing thresholds used" — so
/// *any* raise policy must yield a statistically identical uniform sample
/// (conditioned on its final threshold).  We run each policy across many
/// seeds and check that the aggregated sample composition matches the data
/// composition, and that sample-size ≈ n/τ holds per policy.
class PolicyInvarianceProperty
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::shared_ptr<ThresholdPolicy> MakePolicy() const {
    const std::string name = GetParam();
    if (name == "x1.1") {
      return std::make_shared<MultiplicativeThresholdPolicy>(1.1);
    }
    if (name == "x2") {
      return std::make_shared<MultiplicativeThresholdPolicy>(2.0);
    }
    if (name == "binary") {
      return std::make_shared<BinarySearchThresholdPolicy>(0.05);
    }
    return std::make_shared<SingletonBoundThresholdPolicy>(0.05);
  }
};

INSTANTIATE_TEST_SUITE_P(Policies, PolicyInvarianceProperty,
                         ::testing::Values("x1.1", "x2", "binary",
                                           "singleton"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

TEST_P(PolicyInvarianceProperty, SampleCompositionTracksData) {
  RunSeedSweep([this](std::uint64_t base) {
    const std::vector<Value> data = ZipfValues(40000, 500, 1.0, base);
    Relation relation;
    for (Value v : data) relation.Insert(v);

    constexpr int kTrials = 12;
    double total_points = 0.0;
    std::vector<double> mass(501, 0.0);
    double size_vs_ntau = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      ConciseSampleOptions o;
      o.footprint_bound = 128;
      o.seed = base + 104729ULL * (static_cast<std::uint64_t>(t) + 1);
      o.policy = MakePolicy();
      ConciseSample s(o);
      for (Value v : data) s.Insert(v);
      // Structural: Theorem 2's invariant is policy- and seed-independent.
      EXPECT_TRUE(s.Validate().ok());
      for (const ValueCount& e : s.Entries()) {
        mass[static_cast<std::size_t>(e.value)] +=
            static_cast<double>(e.count);
        total_points += static_cast<double>(e.count);
      }
      size_vs_ntau += static_cast<double>(s.SampleSize()) /
                      (static_cast<double>(data.size()) / s.Threshold());
    }
    if (total_points <= 0.0) return false;
    // Composition: top-2 values' share of the sample ≈ their share of the
    // data (uniformity is policy-independent).
    for (Value v = 1; v <= 2; ++v) {
      const double data_share =
          static_cast<double>(relation.FrequencyOf(v)) /
          static_cast<double>(data.size());
      const double sample_share =
          mass[static_cast<std::size_t>(v)] / total_points;
      if (std::abs(sample_share - data_share) > 0.25 * data_share + 0.01) {
        return false;
      }
    }
    // E[sample-size] = n/τ for every policy.
    return std::abs(size_vs_ntau / kTrials - 1.0) < 0.25;
  });
}

}  // namespace
}  // namespace aqua
