// Tolerance policy: the reporting-rate assertions run once per base seed
// in kSweepSeeds (calibration stream, noise streams, and sampler seeds all
// derived from the base seed); per-seed rate thresholds leave several
// sigma of binomial headroom at kTrials trials, and the sweep tolerates
// kAllowedSeedFailures bad seeds.  See tests/property/seed_sweep.h.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/concise_sample.h"
#include "hotlist/concise_hot_list.h"
#include "property/seed_sweep.h"
#include "workload/generators.h"

namespace aqua {
namespace {

/// Theorem 7 sweep (accuracy of hot lists from concise samples with
/// confidence threshold β): frequent values — f_v well above βτ — are
/// reported with high probability, and infrequent values — f_v well below
/// βτ — are reported with vanishing probability.  We plant a tracer value
/// of controlled frequency and measure its reporting rate across trials.
class Theorem7Property : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(FrequencyMultipliers, Theorem7Property,
                         ::testing::Values(0.2, 4.0, 8.0),
                         [](const auto& info) {
                           return "fv_betatau_x" +
                                  std::to_string(
                                      static_cast<int>(info.param * 10));
                         });

TEST_P(Theorem7Property, ReportingProbabilityMatchesRegime) {
  const double multiplier = GetParam();
  RunSeedSweep([multiplier](std::uint64_t base) {
    constexpr Words kBound = 200;
    constexpr double kBeta = 3.0;
    constexpr std::int64_t kNoise = 60000;
    constexpr Value kTracer = -42;

    // Calibrate the typical final threshold on a tracer-free run.
    double tau_estimate;
    {
      ConciseSampleOptions o;
      o.footprint_bound = kBound;
      o.seed = base ^ 0xCA11B8ULL;
      ConciseSample s(o);
      for (Value v : ZipfValues(kNoise, 3000, 0.9, base ^ 0x5712EA3ULL)) {
        s.Insert(v);
      }
      tau_estimate = s.Threshold();
    }
    const auto fv = static_cast<std::int64_t>(
        std::max(1.0, multiplier * kBeta * tau_estimate));

    constexpr int kTrials = 60;
    int reported = 0;
    for (int t = 0; t < kTrials; ++t) {
      const auto trial = static_cast<std::uint64_t>(t);
      ConciseSampleOptions o;
      o.footprint_bound = kBound;
      o.seed = base + 104729ULL * (trial + 1);
      ConciseSample s(o);
      const std::vector<Value> noise =
          ZipfValues(kNoise, 3000, 0.9, base + 7919ULL * (trial + 1));
      const std::int64_t gap = kNoise / (fv + 1);
      std::int64_t emitted = 0;
      for (std::int64_t i = 0; i < kNoise; ++i) {
        s.Insert(noise[static_cast<std::size_t>(i)]);
        if (emitted < fv && i % gap == gap - 1) {
          s.Insert(kTracer);
          ++emitted;
        }
      }
      while (emitted++ < fv) s.Insert(kTracer);

      const HotList hot = ConciseHotList(s).Report({.k = 0, .beta = kBeta});
      for (const HotListItem& item : hot) {
        if (item.value == kTracer) {
          ++reported;
          break;
        }
      }
    }
    const double rate = static_cast<double>(reported) / kTrials;
    if (multiplier >= 8.0) {
      // Far above βτ: Theorem 7(1) with δ→0 — near-certain reporting.
      return rate > 0.9;
    }
    if (multiplier >= 4.0) {
      return rate > 0.6;
    }
    // Far below βτ: Theorem 7(2) — rare false reporting.
    return rate < 0.15;
  });
}

}  // namespace
}  // namespace aqua
