// Statistical properties of the cluster wire path: shipping synopsis
// deltas as serialized state (EncodeState -> PrepareDeltaMerge -> apply,
// exactly what POST /cluster/push drives) must be indistinguishable from
// one synopsis fed the concatenated stream.  The in-memory MergeFrom
// properties are pinned by merge_uniformity_property_test.cc; these suites
// pin that the codec round trip in the middle does not bias anything — and
// that the round trip is *byte-deterministic*, which is the property crash
// recovery's re-derived pending frames are built on.
//
// Tolerance policy: see tests/property/seed_sweep.h — each statistical
// check runs once per base seed in kSweepSeeds with 4-6 sigma bands (chi2
// ceiling 2x df), and the sweep tolerates kAllowedSeedFailures bad seeds.
// Bookkeeping (observed inserts, footprint bounds, byte equality) stays
// hard-asserted.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/concise_sample.h"
#include "persist/snapshot.h"
#include "property/seed_sweep.h"
#include "registry/builtin.h"
#include "registry/registry.h"
#include "sample/reservoir_sample.h"
#include "server/cluster.h"
#include "workload/generators.h"

namespace aqua {
namespace {

constexpr Words kBound = 512;

/// Round-robin split — the same interleaving an N-node ingest tier sees
/// when a load balancer sprays the stream across nodes.
std::vector<std::vector<Value>> RoundRobinSplit(const std::vector<Value>& data,
                                                std::size_t nodes) {
  std::vector<std::vector<Value>> out(nodes);
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i % nodes].push_back(data[i]);
  }
  return out;
}

/// Ships every persistable synopsis of `from` into `to` over the wire
/// path the aggregator uses: serialize, stage with PrepareDeltaMerge (the
/// decode/validate phase), then apply, then account the external inserts.
void ShipState(const SynopsisRegistry& from, std::int64_t covers_ops,
               SynopsisRegistry* to) {
  for (std::size_t i = 0; i < from.size(); ++i) {
    const SynopsisHandle* handle = from.handle_at(i);
    if (!handle->Capabilities().persistable || !handle->valid()) continue;
    const Result<std::vector<std::uint8_t>> bytes = handle->EncodeState();
    ASSERT_TRUE(bytes.ok()) << handle->Name();
    const Result<std::function<Status()>> apply =
        to->PrepareDeltaMerge(handle->Name(), bytes.ValueOrDie());
    ASSERT_TRUE(apply.ok()) << handle->Name();
    ASSERT_TRUE(apply.ValueOrDie()().ok()) << handle->Name();
  }
  to->NoteExternalInserts(covers_ops);
  to->CompleteMergeRound();
}

/// K node registries fed round-robin shards, shipped into one aggregator.
std::unique_ptr<SynopsisRegistry> BuildWireMerged(
    const std::vector<Value>& data, std::size_t nodes, std::uint64_t seed) {
  const DeltaRegistryFactory factory = MakeClusterDeltaFactory(kBound);
  std::unique_ptr<SynopsisRegistry> aggregator = factory(seed);
  const auto shards = RoundRobinSplit(data, nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    // The per-node seeds are the ones the replicator would use for its
    // first delta round.
    std::unique_ptr<SynopsisRegistry> node =
        factory(DeltaSeed(seed + i + 1, /*seq=*/1));
    node->InsertBatch(shards[i]);
    ShipState(*node, static_cast<std::int64_t>(shards[i].size()),
              aggregator.get());
  }
  return aggregator;
}

TEST(WireMergeProperty, ClusterSelectionShipsEverySynopsisItMaintains) {
  // The cluster roles maintain exactly the synopses that are both
  // persistable (can serialize into a frame) and mergeable (can apply on
  // the aggregator) — a node maintaining anything else would hold state it
  // can never ship.  Guard the selection against future synopses joining
  // the builtin set without a codec.
  const DeltaRegistryFactory factory = MakeClusterDeltaFactory(kBound);
  const std::unique_ptr<SynopsisRegistry> registry = factory(1);
  ASSERT_EQ(registry->size(), 2u);
  for (std::size_t i = 0; i < registry->size(); ++i) {
    const SynopsisHandle* handle = registry->handle_at(i);
    EXPECT_TRUE(handle->Capabilities().persistable) << handle->Name();
    EXPECT_TRUE(handle->Capabilities().mergeable) << handle->Name();
  }
  EXPECT_NE(registry->handle(kTraditionalSynopsisName), nullptr);
  EXPECT_NE(registry->handle(kConciseSynopsisName), nullptr);
}

TEST(WireMergeProperty, WireMergedConciseMatchesDataComposition) {
  // Chi-square goodness of fit, as in MergeUniformityProperty but through
  // the serialized wire path: aggregate the merged concise sample's
  // per-value counts over independent trials against the stream's own
  // composition.  Under Theorem 2 sampled mass is proportional to f_v; a
  // codec that dropped, duplicated, or re-weighted entries would bias this
  // immediately.
  RunSeedSweep([](std::uint64_t base) {
    const std::int64_t kDomain = 250;
    const std::vector<Value> data = ZipfValues(45000, kDomain, 0.8, base);
    std::vector<double> freq(static_cast<std::size_t>(kDomain) + 1, 0.0);
    for (Value v : data) freq[static_cast<std::size_t>(v)] += 1.0;

    constexpr int kTrials = 15;
    std::vector<double> observed(static_cast<std::size_t>(kDomain) + 1, 0.0);
    double total_points = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      const std::unique_ptr<SynopsisRegistry> merged = BuildWireMerged(
          data, /*nodes=*/3,
          base + 15485863ULL * (static_cast<std::uint64_t>(t) + 1));
      // Bookkeeping is exact on every seed: the aggregator never saw a raw
      // op, yet must account the whole stream.
      EXPECT_EQ(merged->observed_inserts(),
                static_cast<std::int64_t>(data.size()));
      const Result<ConciseSample> sample =
          merged->StateCopy<ConciseSample>(kConciseSynopsisName);
      EXPECT_TRUE(sample.ok());
      if (!sample.ok()) return false;
      EXPECT_EQ(sample.ValueOrDie().ObservedInserts(),
                static_cast<std::int64_t>(data.size()));
      EXPECT_LE(sample.ValueOrDie().Footprint(), kBound);
      for (const ValueCount& e : sample.ValueOrDie().Entries()) {
        observed[static_cast<std::size_t>(e.value)] +=
            static_cast<double>(e.count);
        total_points += static_cast<double>(e.count);
      }
    }
    if (total_points <= 0.0) return false;

    // Pool cells with expected >= 5; everything rarer into one tail cell.
    const auto n = static_cast<double>(data.size());
    double chi2 = 0.0, tail_obs = 0.0, tail_exp = 0.0;
    int df = 0;
    for (std::size_t v = 1; v < freq.size(); ++v) {
      const double expected = total_points * freq[v] / n;
      if (expected >= 5.0) {
        const double d = observed[v] - expected;
        chi2 += d * d / expected;
        ++df;
      } else {
        tail_obs += observed[v];
        tail_exp += expected;
      }
    }
    if (tail_exp >= 5.0) {
      const double d = tail_obs - tail_exp;
      chi2 += d * d / tail_exp;
      ++df;
    }
    if (df <= 20) return false;  // the pooling must leave a usable test
    return chi2 < 2.0 * df;
  });
}

TEST(WireMergeProperty, WireMergedReservoirDrawsProportionally) {
  // Two nodes over substreams tagged by disjoint value ranges: the number
  // of aggregator reservoir points originating from node A must be
  // Hypergeometric(n, n_a, m), exactly as for in-memory MergeFrom.
  constexpr std::int64_t kNa = 30000;
  constexpr std::int64_t kNb = 10000;
  constexpr Value kOffset = 1000000;
  RunSeedSweep([](std::uint64_t base) {
    constexpr int kTrials = 30;
    double mean_from_a = 0.0;
    std::int64_t capacity = 0;
    for (int t = 0; t < kTrials; ++t) {
      const std::uint64_t seed =
          base + 104729ULL * (static_cast<std::uint64_t>(t) + 1);
      const DeltaRegistryFactory factory = MakeClusterDeltaFactory(kBound);
      std::unique_ptr<SynopsisRegistry> aggregator = factory(seed);
      std::unique_ptr<SynopsisRegistry> node_a = factory(seed + 1);
      std::unique_ptr<SynopsisRegistry> node_b = factory(seed + 2);
      node_a->InsertBatch(UniformValues(kNa, 1000, seed + 3));
      std::vector<Value> b_data = UniformValues(kNb, 1000, seed + 4);
      for (Value& v : b_data) v += kOffset;
      node_b->InsertBatch(b_data);
      ShipState(*node_a, kNa, aggregator.get());
      ShipState(*node_b, kNb, aggregator.get());

      const Result<ReservoirSample> merged =
          aggregator->StateCopy<ReservoirSample>(kTraditionalSynopsisName);
      EXPECT_TRUE(merged.ok());
      if (!merged.ok()) return false;
      EXPECT_EQ(merged.ValueOrDie().ObservedInserts(), kNa + kNb);
      capacity = merged.ValueOrDie().SampleSize();
      int from_a = 0;
      for (Value v : merged.ValueOrDie().Points()) from_a += (v < kOffset);
      mean_from_a += from_a;
    }
    mean_from_a /= kTrials;
    const double n = static_cast<double>(kNa + kNb);
    const double m = static_cast<double>(capacity);
    const double expect = m * (kNa / n);
    const double per_trial_var =
        m * (kNa / n) * (kNb / n) * ((n - m) / (n - 1.0));
    const double band = 5.0 * std::sqrt(per_trial_var / kTrials);
    return std::abs(mean_from_a - expect) <= band;
  });
}

TEST(WireMergeProperty, DeltaRegistryStateIsByteDeterministic) {
  // The recovery contract: a delta registry's serialized state is a pure
  // function of (seed, op sequence).  Crash recovery rebuilds the pending
  // frame by replaying WAL ops into a fresh registry seeded with the same
  // DeltaSeed — byte equality here is what lets the fault test assert the
  // re-pushed frame is identical to the lost one.
  const std::vector<Value> data = ZipfValues(20000, 500, 1.0, 0xD5);
  const DeltaRegistryFactory factory = MakeClusterDeltaFactory(kBound);
  const std::uint64_t seed = DeltaSeed(0xFACE, 7);
  std::unique_ptr<SynopsisRegistry> first = factory(seed);
  std::unique_ptr<SynopsisRegistry> second = factory(seed);
  first->InsertBatch(data);
  // The replay path inserts op by op — batched and per-op ingest must land
  // on identical bytes or recovery would diverge from the live path.
  for (Value v : data) {
    ASSERT_TRUE(second->Observe(StreamOp::Insert(v)).ok());
  }
  for (std::size_t i = 0; i < first->size(); ++i) {
    const SynopsisHandle* a = first->handle_at(i);
    const SynopsisHandle* b = second->handle_at(i);
    ASSERT_EQ(a->Name(), b->Name());
    const Result<std::vector<std::uint8_t>> bytes_a = a->EncodeState();
    const Result<std::vector<std::uint8_t>> bytes_b = b->EncodeState();
    ASSERT_TRUE(bytes_a.ok());
    ASSERT_TRUE(bytes_b.ok());
    EXPECT_EQ(bytes_a.ValueOrDie(), bytes_b.ValueOrDie()) << a->Name();
  }
  // A different seq must produce a different random stream (the rounds'
  // subsampling draws must not repeat) — in the sampled regime the
  // reservoir's retained subset almost surely differs.
  std::unique_ptr<SynopsisRegistry> other_seq =
      factory(DeltaSeed(0xFACE, 8));
  other_seq->InsertBatch(data);
  const Result<std::vector<std::uint8_t>> bytes_7 =
      first->handle(kTraditionalSynopsisName)->EncodeState();
  const Result<std::vector<std::uint8_t>> bytes_8 =
      other_seq->handle(kTraditionalSynopsisName)->EncodeState();
  ASSERT_TRUE(bytes_7.ok());
  ASSERT_TRUE(bytes_8.ok());
  EXPECT_NE(bytes_7.ValueOrDie(), bytes_8.ValueOrDie());
}

TEST(WireMergeProperty, ReservoirSnapshotReEncodesByteStably) {
  // Decode-then-re-encode must reproduce the exact bytes (the codec sorts
  // points, so byte stability survives the round trip) — the fault test
  // byte-compares a recovered node's re-serialized snapshot against the
  // pre-crash one, which silently depends on this.
  const std::vector<Value> data = ZipfValues(30000, 2000, 0.6, 0xE7);
  ReservoirSample sample(/*capacity=*/256, /*seed=*/0x5EED);
  for (Value v : data) sample.Insert(v);
  const std::vector<std::uint8_t> bytes = EncodeSnapshot(sample);
  const Result<ReservoirSample> decoded =
      DecodeReservoirSnapshot(bytes, /*seed=*/0xD1FF);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(EncodeSnapshot(decoded.ValueOrDie()), bytes);
}

}  // namespace
}  // namespace aqua
