// Statistical properties of synopsis merging (Theorem-2 threshold-aligned
// subsampling for concise samples; hypergeometric union for reservoirs):
// a sharded-then-merged sample must be indistinguishable from a sample
// built by one synopsis over the whole stream.
//
// Tolerance policy: each chi-square / z-score / hypergeometric check runs
// once per base seed in kSweepSeeds (data stream and per-shard seeds
// derived from the base seed) with per-seed bands at 4-6 sigma (chi2
// ceiling 2x df), and the sweep tolerates kAllowedSeedFailures bad seeds.
// See tests/property/seed_sweep.h.  Merge bookkeeping (ObservedInserts,
// footprint bounds, Validate(), post-merge ingest) stays hard-asserted.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/concise_sample.h"
#include "property/seed_sweep.h"
#include "sample/reservoir_sample.h"
#include "workload/generators.h"

namespace aqua {
namespace {

/// Round-robin split of `data` into `shards` substreams — the same
/// interleaving ShardedSynopsis applies at ingest time.
std::vector<std::vector<Value>> RoundRobinSplit(const std::vector<Value>& data,
                                                std::size_t shards) {
  std::vector<std::vector<Value>> out(shards);
  for (std::size_t i = 0; i < data.size(); ++i) {
    out[i % shards].push_back(data[i]);
  }
  return out;
}

/// Builds per-shard concise samples with heterogeneous footprint bounds
/// (so the shards settle at different thresholds and the merge exercises
/// the subsampling alignment), merges them, and validates every step.
ConciseSample BuildMerged(const std::vector<Value>& data,
                          const std::vector<Words>& bounds,
                          std::uint64_t seed) {
  const auto substreams = RoundRobinSplit(data, bounds.size());
  std::vector<ConciseSample> shards;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    ConciseSampleOptions o;
    o.footprint_bound = bounds[i];
    o.seed = seed + 104729ULL * (i + 1);
    shards.emplace_back(o);
    shards.back().InsertBatch(substreams[i]);
  }
  ConciseSample merged = shards[0];
  for (std::size_t i = 1; i < shards.size(); ++i) {
    EXPECT_TRUE(merged.MergeFrom(shards[i]).ok());
    EXPECT_TRUE(merged.Validate().ok()) << "after merging shard " << i;
  }
  return merged;
}

TEST(MergeUniformityProperty, ShardedMergeMatchesDataComposition) {
  // Chi-square goodness of fit: aggregate the merged sample's per-value
  // counts over many independent trials and compare against the data's own
  // composition.  Under Theorem 2 each value's sampled count is
  // Binomial(f_v, 1/τ), so expected sampled mass is proportional to f_v.
  RunSeedSweep([](std::uint64_t base) {
    const std::int64_t kDomain = 250;
    const std::vector<Value> data = ZipfValues(45000, kDomain, 0.8, base);
    std::vector<double> freq(static_cast<std::size_t>(kDomain) + 1, 0.0);
    for (Value v : data) freq[static_cast<std::size_t>(v)] += 1.0;

    // Heterogeneous bounds: shard thresholds differ, so the merge must
    // subsample the union down to the common (highest) threshold.
    const std::vector<Words> kBounds = {512, 256, 128};
    constexpr int kTrials = 15;
    std::vector<double> observed(static_cast<std::size_t>(kDomain) + 1, 0.0);
    double total_points = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      const ConciseSample merged = BuildMerged(
          data, kBounds, base + 15485863ULL * (static_cast<std::uint64_t>(t) + 1));
      // Structural: merge bookkeeping is exact on every seed.
      EXPECT_EQ(merged.ObservedInserts(),
                static_cast<std::int64_t>(data.size()));
      EXPECT_LE(merged.Footprint(), kBounds[0]);
      for (const ValueCount& e : merged.Entries()) {
        observed[static_cast<std::size_t>(e.value)] +=
            static_cast<double>(e.count);
        total_points += static_cast<double>(e.count);
      }
    }
    if (total_points <= 0.0) return false;

    // Pool cells with expected count >= 5 (the usual chi-square validity
    // floor); everything rarer goes into one tail cell.
    const auto n = static_cast<double>(data.size());
    double chi2 = 0.0, tail_obs = 0.0, tail_exp = 0.0;
    int df = 0;
    for (std::size_t v = 1; v < freq.size(); ++v) {
      const double expected = total_points * freq[v] / n;
      if (expected >= 5.0) {
        const double d = observed[v] - expected;
        chi2 += d * d / expected;
        ++df;
      } else {
        tail_obs += observed[v];
        tail_exp += expected;
      }
    }
    if (tail_exp >= 5.0) {
      const double d = tail_obs - tail_exp;
      chi2 += d * d / tail_exp;
      ++df;
    }
    if (df <= 20) return false;  // the pooling must leave a usable test
    // E[chi2] = df - 1, sd = sqrt(2 df).  2x df is many sigmas out — this
    // only fails if the merge is biased, not from run-to-run noise.
    return chi2 < 2.0 * df;
  });
}

TEST(MergeUniformityProperty, MergedSampleSizeTracksThreshold) {
  // Conditioned on the merged threshold τ', the merged sample size is
  // Binomial(n, 1/τ'): each of the n stream elements survives its shard's
  // selection and the merge-time subsampling with total probability 1/τ'.
  RunSeedSweep([](std::uint64_t base) {
    const std::vector<Value> data = ZipfValues(60000, 20000, 0.3, base);
    constexpr int kTrials = 10;
    double z_sum = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      const ConciseSample merged = BuildMerged(
          data, {400, 300, 200, 100},
          base + 32452843ULL * (static_cast<std::uint64_t>(t) + 1));
      const auto n = static_cast<double>(data.size());
      const double p = 1.0 / merged.Threshold();
      const double expect = n * p;
      const double sd = std::sqrt(n * p * (1.0 - p));
      const double z =
          (static_cast<double>(merged.SampleSize()) - expect) / sd;
      if (std::abs(z) >= 6.0) return false;
      z_sum += z;
    }
    // The per-trial z-scores must also not be systematically biased
    // (mean of kTrials unit normals has sd ~0.32; 1.5 is ~4.7 sigma).
    return std::abs(z_sum / kTrials) < 1.5;
  });
}

TEST(MergeUniformityProperty, SelfAndUndersizedMergesAreRejected) {
  ConciseSampleOptions o;
  o.footprint_bound = 64;
  o.seed = 99;
  ConciseSample s(o);
  EXPECT_FALSE(s.MergeFrom(s).ok());

  ReservoirSample r(100, 99);
  EXPECT_FALSE(r.MergeFrom(r).ok());
}

TEST(MergeUniformityProperty, ReservoirMergeDrawsProportionally) {
  // Merging reservoirs over substreams A (n_a elements) and B (n_b) must
  // behave like one reservoir over the concatenated stream: the number of
  // merged points originating from A is Hypergeometric(n, n_a, m) with
  // mean m * n_a / n.  Tag the substreams by disjoint value ranges.
  constexpr std::int64_t kNa = 30000;
  constexpr std::int64_t kNb = 10000;
  constexpr std::size_t kCap = 200;
  constexpr Value kOffset = 1000000;
  for (ReservoirAlgorithm algo :
       {ReservoirAlgorithm::kR, ReservoirAlgorithm::kX,
        ReservoirAlgorithm::kL}) {
    RunSeedSweep([algo](std::uint64_t base) {
      constexpr int kTrials = 50;
      double mean_from_a = 0.0;
      for (int t = 0; t < kTrials; ++t) {
        const std::uint64_t seed =
            base + 104729ULL * (static_cast<std::uint64_t>(t) + 1);
        ReservoirSample a(kCap, seed, algo);
        a.InsertBatch(UniformValues(kNa, 1000, seed + 1));
        ReservoirSample b(kCap, seed + 2, algo);
        std::vector<Value> b_data = UniformValues(kNb, 1000, seed + 3);
        for (Value& v : b_data) v += kOffset;
        b.InsertBatch(b_data);

        // Structural: merge bookkeeping and post-merge ingest are exact.
        EXPECT_TRUE(a.MergeFrom(b).ok());
        EXPECT_EQ(a.ObservedInserts(), kNa + kNb);
        EXPECT_EQ(a.SampleSize(), static_cast<std::int64_t>(kCap));
        int from_a = 0;
        for (Value v : a.Points()) from_a += (v < kOffset);
        mean_from_a += from_a;

        // The merged reservoir must keep ingesting as if it had seen the
        // concatenated stream all along.
        for (Value v : UniformValues(5000, 1000, seed + 4)) a.Insert(v);
        EXPECT_EQ(a.ObservedInserts(), kNa + kNb + 5000);
        EXPECT_EQ(a.SampleSize(), static_cast<std::int64_t>(kCap));
      }
      mean_from_a /= kTrials;
      const double n = static_cast<double>(kNa + kNb);
      const double expect = kCap * (kNa / n);
      // Hypergeometric sd per trial ~6.1; the mean of kTrials draws has
      // sd ~0.87 — a 5-sigma band.
      const double per_trial_var = kCap * (kNa / n) * (kNb / n) *
                                   ((n - kCap) / (n - 1.0));
      const double band = 5.0 * std::sqrt(per_trial_var / kTrials);
      return std::abs(mean_from_a - expect) <= band;
    });
  }
}

}  // namespace
}  // namespace aqua
