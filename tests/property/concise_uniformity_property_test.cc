// Tolerance policy: statistical assertions in this file run once per base
// seed in kSweepSeeds (data stream and all sampler seeds derived from the
// base seed) with per-seed bands sized at 4-6 sigma; the sweep tolerates
// kAllowedSeedFailures bad seeds out of kSweepSeedCount, so no band is
// tuned to a single RNG stream.  See tests/property/seed_sweep.h.
// Structural invariants (Validate(), footprint bounds, observed-insert
// accounting) remain hard assertions on every seed.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <tuple>
#include <vector>

#include "core/concise_sample.h"
#include "property/seed_sweep.h"
#include "warehouse/relation.h"
#include "workload/generators.h"

namespace aqua {
namespace {

std::uint64_t TrialSeed(std::uint64_t base, int trial) {
  return base ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(trial + 1));
}

/// Property sweep over (zipf parameter, footprint bound): every structural
/// invariant of the concise sample must hold on every prefix-checkpoint of
/// the stream, and across repeated trials the sample must be *uniform*:
/// each value's expected representation is proportional to its frequency
/// (Theorem 2).
class ConciseUniformityProperty
    : public ::testing::TestWithParam<std::tuple<double, Words>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConciseUniformityProperty,
    ::testing::Combine(::testing::Values(0.0, 0.5, 1.0, 1.5, 2.0, 3.0),
                       ::testing::Values<Words>(64, 256, 1024)),
    [](const auto& info) {
      const double alpha = std::get<0>(info.param);
      const Words m = std::get<1>(info.param);
      return "zipf" + std::to_string(static_cast<int>(alpha * 10)) + "_m" +
             std::to_string(m);
    });

TEST_P(ConciseUniformityProperty, InvariantsHoldOnEveryCheckpoint) {
  const auto [alpha, bound] = GetParam();
  ConciseSampleOptions o;
  o.footprint_bound = bound;
  o.seed = 0xABC0 + static_cast<std::uint64_t>(bound);
  ConciseSample s(o);
  const std::vector<Value> data =
      ZipfValues(60000, 2000, alpha, 17 + static_cast<std::uint64_t>(bound));
  std::int64_t i = 0;
  for (Value v : data) {
    s.Insert(v);
    if (++i % 10000 == 0) {
      ASSERT_TRUE(s.Validate().ok()) << "at insert " << i;
      ASSERT_LE(s.Footprint(), bound);
      ASSERT_GE(s.SampleSize(), s.DistinctValues());
      ASSERT_EQ(s.Footprint(), s.DistinctValues() + s.PairCount());
      ASSERT_GE(s.Threshold(), 1.0);
    }
  }
  EXPECT_EQ(s.ObservedInserts(), static_cast<std::int64_t>(data.size()));
}

TEST_P(ConciseUniformityProperty, SampleProportionsTrackFrequencies) {
  const auto [alpha, bound] = GetParam();
  RunSeedSweep([alpha = alpha, bound = bound](std::uint64_t base) {
    // One fixed data multiset per base seed; many independent sampling
    // trials.  The aggregated sample composition must match the data
    // composition (the definition of a uniform sample).
    const std::vector<Value> data = ZipfValues(30000, 300, alpha, base);
    Relation relation;
    for (Value v : data) relation.Insert(v);

    constexpr int kTrials = 20;
    double total_points = 0.0;
    std::vector<double> per_value(301, 0.0);
    for (int t = 0; t < kTrials; ++t) {
      ConciseSampleOptions o;
      o.footprint_bound = bound;
      o.seed = TrialSeed(base, t);
      ConciseSample s(o);
      for (Value v : data) s.Insert(v);
      for (const ValueCount& e : s.Entries()) {
        per_value[static_cast<std::size_t>(e.value)] +=
            static_cast<double>(e.count);
        total_points += static_cast<double>(e.count);
      }
    }
    if (total_points <= 0.0) return false;
    // Check the three most frequent values (enough sampled mass to
    // compare).
    for (Value v = 1; v <= 3; ++v) {
      const double expected_fraction =
          static_cast<double>(relation.FrequencyOf(v)) /
          static_cast<double>(data.size());
      const double observed_fraction =
          per_value[static_cast<std::size_t>(v)] / total_points;
      // Generous band: binomial noise over ~kTrials*bound points.
      const double slack =
          6.0 * std::sqrt(expected_fraction / total_points) + 0.02;
      if (std::abs(observed_fraction - expected_fraction) > slack) {
        return false;
      }
    }
    return true;
  });
}

TEST(ConciseSampleDistributionTest, CountDistributionIsBinomialGivenTau) {
  // Theorem 2 refined: conditioned on the final threshold τ, each value's
  // sample count is Binomial(f_v, 1/τ).  With a fixed stream the final τ
  // is (nearly) deterministic per seed class; compare the tracer value's
  // count mean and variance against the binomial prediction using each
  // trial's own τ.
  RunSeedSweep([](std::uint64_t base) {
    const std::vector<Value> data = ZipfValues(40000, 400, 1.0, base);
    std::int64_t fv = 0;
    for (Value v : data) fv += (v == 5);
    if (fv <= 100) return false;  // Zipf(1.0) guarantees a heavy value 5

    constexpr int kTrials = 80;
    double mean = 0.0, mean_sq = 0.0, predicted_mean = 0.0,
           predicted_var = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      ConciseSampleOptions o;
      o.footprint_bound = 256;
      o.seed = TrialSeed(base, t);
      ConciseSample s(o);
      for (Value v : data) s.Insert(v);
      const auto c = static_cast<double>(s.CountOf(5));
      mean += c;
      mean_sq += c * c;
      const double p = 1.0 / s.Threshold();
      predicted_mean += static_cast<double>(fv) * p;
      predicted_var += static_cast<double>(fv) * p * (1.0 - p);
    }
    mean /= kTrials;
    mean_sq /= kTrials;
    predicted_mean /= kTrials;
    predicted_var /= kTrials;
    const double var = mean_sq - mean * mean;
    // Mean within 5σ of the prediction; variance within a loose band (the
    // per-trial τ variation inflates it slightly).
    if (std::abs(mean - predicted_mean) >
        5.0 * std::sqrt(predicted_var / kTrials) + 0.5) {
      return false;
    }
    return var > 0.4 * predicted_var && var < 2.5 * predicted_var;
  });
}

}  // namespace
}  // namespace aqua
