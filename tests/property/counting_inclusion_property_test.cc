// Tolerance policy: the inclusion-rate check runs once per base seed in
// kSweepSeeds (calibration stream, noise streams, sampler seeds all
// derived from the base seed); the per-seed band is 4 binomial sigma at
// kTrials trials plus an absolute floor for the tracer's perturbation of
// τ, and the sweep tolerates kAllowedSeedFailures bad seeds.  See
// tests/property/seed_sweep.h.  The count-never-exceeds-frequency
// companion is Definition 3 exactness and stays a hard assertion.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/counting_sample.h"
#include "property/seed_sweep.h"
#include "workload/generators.h"

namespace aqua {
namespace {

/// Theorem 6 property sweep: a value occurring f_v times is in the counting
/// sample with probability 1 - (1 - 1/τ)^{f_v} for the *current* threshold
/// τ, regardless of the update history (Theorem 5's invariant).  We plant a
/// tracer value with controlled frequency inside a noise stream, run many
/// trials, and compare the empirical inclusion rate with the prediction
/// computed from each trial's final threshold.
class CountingInclusionProperty : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(FrequencyMultipliers, CountingInclusionProperty,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0),
                         [](const auto& info) {
                           return "fv_tau_x" +
                                  std::to_string(static_cast<int>(
                                      info.param * 100));
                         });

TEST_P(CountingInclusionProperty, InclusionMatchesTheorem6) {
  const double multiplier = GetParam();
  RunSeedSweep([multiplier](std::uint64_t base) {
    constexpr Words kBound = 100;
    constexpr std::int64_t kNoise = 40000;
    constexpr Value kTracer = -777;  // outside the noise domain

    // Calibrate: run once without the tracer to learn the typical final τ.
    double tau_estimate;
    {
      CountingSampleOptions o;
      o.footprint_bound = kBound;
      o.seed = base ^ 0xCA11B8ULL;
      CountingSample s(o);
      for (Value v : ZipfValues(kNoise, 2000, 0.8, base ^ 0x5712EA3ULL)) {
        s.Insert(v);
      }
      tau_estimate = s.Threshold();
    }
    const auto fv = static_cast<std::int64_t>(
        std::max(1.0, multiplier * tau_estimate));

    constexpr int kTrials = 100;
    double included = 0.0;
    double predicted = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      const auto trial = static_cast<std::uint64_t>(t);
      CountingSampleOptions o;
      o.footprint_bound = kBound;
      o.seed = base + 104729ULL * (trial + 1);
      CountingSample s(o);
      const std::vector<Value> noise =
          ZipfValues(kNoise, 2000, 0.8, base + 7919ULL * (trial + 1));
      // Spread the tracer's occurrences evenly through the stream.
      const std::int64_t gap = kNoise / (fv + 1);
      std::int64_t next_tracer = gap;
      std::int64_t emitted = 0;
      for (std::int64_t i = 0; i < kNoise; ++i) {
        s.Insert(noise[static_cast<std::size_t>(i)]);
        if (i == next_tracer && emitted < fv) {
          s.Insert(kTracer);
          ++emitted;
          next_tracer += gap;
        }
      }
      while (emitted < fv) {
        s.Insert(kTracer);
        ++emitted;
      }
      included += (s.CountOf(kTracer) > 0) ? 1.0 : 0.0;
      const double tau = s.Threshold();
      predicted +=
          1.0 - std::pow(1.0 - 1.0 / tau, static_cast<double>(fv));
    }
    included /= kTrials;
    predicted /= kTrials;
    // Binomial noise over kTrials plus the tracer's own perturbation of τ.
    const double slack =
        4.0 * std::sqrt(predicted * (1.0 - predicted) / kTrials) + 0.06;
    return std::abs(included - predicted) <= slack;
  });
}

TEST(CountingInclusionTest, CountNeverExceedsFrequency) {
  // Deterministic companion: across all trials of the sweep above the
  // tracer count never exceeds its true frequency (Definition 3).
  CountingSampleOptions o;
  o.footprint_bound = 64;
  o.seed = 3;
  CountingSample s(o);
  constexpr Value kTracer = -5;
  std::int64_t emitted = 0;
  const std::vector<Value> noise = ZipfValues(30000, 1000, 1.0, 4);
  for (std::size_t i = 0; i < noise.size(); ++i) {
    s.Insert(noise[i]);
    if (i % 100 == 0) {
      s.Insert(kTracer);
      ++emitted;
      ASSERT_LE(s.CountOf(kTracer), emitted);
    }
  }
}

}  // namespace
}  // namespace aqua
