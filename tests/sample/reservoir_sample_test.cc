#include "sample/reservoir_sample.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace aqua {
namespace {

class ReservoirAlgorithms
    : public ::testing::TestWithParam<ReservoirAlgorithm> {};

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ReservoirAlgorithms,
                         ::testing::Values(ReservoirAlgorithm::kR,
                                           ReservoirAlgorithm::kX,
                                           ReservoirAlgorithm::kL),
                         [](const auto& info) {
                           switch (info.param) {
                             case ReservoirAlgorithm::kR: return "R";
                             case ReservoirAlgorithm::kX: return "X";
                             default: return "L";
                           }
                         });

TEST_P(ReservoirAlgorithms, HoldsEntireStreamWhileBelowCapacity) {
  ReservoirSample sample(100, 1, GetParam());
  for (Value v = 0; v < 50; ++v) sample.Insert(v);
  EXPECT_EQ(sample.SampleSize(), 50);
  std::vector<Value> points = sample.Points();
  std::sort(points.begin(), points.end());
  for (Value v = 0; v < 50; ++v) EXPECT_EQ(points[v], v);
}

TEST_P(ReservoirAlgorithms, SampleSizeCapsAtCapacity) {
  ReservoirSample sample(64, 2, GetParam());
  for (Value v = 0; v < 10000; ++v) sample.Insert(v);
  EXPECT_EQ(sample.SampleSize(), 64);
  EXPECT_EQ(sample.Footprint(), 64);
  EXPECT_EQ(sample.ObservedInserts(), 10000);
}

TEST_P(ReservoirAlgorithms, SampleIsSubsetOfStream) {
  ReservoirSample sample(32, 3, GetParam());
  for (Value v = 0; v < 5000; ++v) sample.Insert(v * 7);
  for (Value p : sample.Points()) {
    EXPECT_EQ(p % 7, 0);
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 5000 * 7);
  }
}

TEST_P(ReservoirAlgorithms, MarginalInclusionIsUniform) {
  // Every stream position must be included with probability m/n.  Run many
  // trials and check early/middle/late positions' inclusion rates.
  constexpr int kTrials = 2000;
  constexpr std::int64_t kN = 500;
  constexpr std::int64_t kM = 50;
  std::vector<int> inclusion(kN, 0);
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSample sample(kM, 1000 + static_cast<std::uint64_t>(t),
                           GetParam());
    for (Value v = 0; v < kN; ++v) sample.Insert(v);
    for (Value p : sample.Points()) ++inclusion[static_cast<std::size_t>(p)];
  }
  const double expected = static_cast<double>(kTrials) * kM / kN;
  // 5σ band for a binomial(kTrials, m/n).
  const double sigma =
      std::sqrt(kTrials * (static_cast<double>(kM) / kN) *
                (1.0 - static_cast<double>(kM) / kN));
  for (std::int64_t pos : {std::int64_t{0}, kN / 2, kN - 1}) {
    EXPECT_NEAR(inclusion[static_cast<std::size_t>(pos)], expected,
                5.0 * sigma)
        << "position " << pos;
  }
}

TEST(ReservoirSampleTest, AlgorithmXUsesFarFewerDrawsThanR) {
  constexpr std::int64_t kN = 200000;
  constexpr std::int64_t kM = 100;
  ReservoirSample r(kM, 4, ReservoirAlgorithm::kR);
  ReservoirSample x(kM, 4, ReservoirAlgorithm::kX);
  for (Value v = 0; v < kN; ++v) {
    r.Insert(v);
    x.Insert(v);
  }
  // R: one draw per record past the fill phase.
  EXPECT_GE(r.Cost().coin_flips, kN - kM);
  // X: ~2 draws per replacement, ~m ln(n/m) replacements ≈ 1520.
  EXPECT_LT(x.Cost().coin_flips, 5000);
  EXPECT_GT(x.Cost().coin_flips, 200);
}

TEST(ReservoirSampleTest, AlgorithmLDrawCountComparableToX) {
  constexpr std::int64_t kN = 200000;
  constexpr std::int64_t kM = 100;
  ReservoirSample l(kM, 5, ReservoirAlgorithm::kL);
  for (Value v = 0; v < kN; ++v) l.Insert(v);
  EXPECT_LT(l.Cost().coin_flips, 8000);
}

TEST(ReservoirSampleTest, DeterministicForFixedSeed) {
  ReservoirSample a(32, 99), b(32, 99);
  for (Value v = 0; v < 10000; ++v) {
    a.Insert(v);
    b.Insert(v);
  }
  EXPECT_EQ(a.Points(), b.Points());
}

TEST(ReservoirSampleTest, NameAndCapacity) {
  ReservoirSample s(10, 1);
  EXPECT_EQ(s.Name(), "traditional-sample");
  EXPECT_EQ(s.Capacity(), 10);
  EXPECT_EQ(s.algorithm(), ReservoirAlgorithm::kX);
}

TEST(ReservoirSampleTest, DeleteUnsupported) {
  ReservoirSample s(10, 1);
  EXPECT_TRUE(s.Delete(1).IsFailedPrecondition());
}

}  // namespace
}  // namespace aqua
