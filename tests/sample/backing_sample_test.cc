#include "sample/backing_sample.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "warehouse/relation.h"

namespace aqua {
namespace {

TEST(BackingSampleTest, FillsToCapacityUnderInserts) {
  BackingSample sample(50, 10, 1);
  for (Value v = 0; v < 1000; ++v) sample.Insert(v % 7);
  EXPECT_EQ(sample.SampleSize(), 50);
  EXPECT_FALSE(sample.NeedsRepopulation());
}

TEST(BackingSampleTest, HoldsWholeRelationWhileSmall) {
  BackingSample sample(100, 10, 2);
  for (Value v = 0; v < 30; ++v) sample.Insert(v);
  EXPECT_EQ(sample.SampleSize(), 30);
}

TEST(BackingSampleTest, PlainDeleteIsRejected) {
  BackingSample sample(10, 2, 3);
  sample.Insert(1);
  EXPECT_TRUE(sample.Delete(1).IsFailedPrecondition());
}

TEST(BackingSampleTest, DeleteWithBadFrequencyRejected) {
  BackingSample sample(10, 2, 4);
  EXPECT_TRUE(sample.DeleteWithFrequency(1, 0).IsInvalidArgument());
}

TEST(BackingSampleTest, SampleStaysSubsetUnderDeletes) {
  // Track the exact relation; after deleting all copies of a value, the
  // sample must not contain it.
  BackingSample sample(64, 8, 5);
  Relation relation;
  for (Value v = 0; v < 2000; ++v) {
    const Value val = v % 20;
    sample.Insert(val);
    relation.Insert(val);
  }
  // Delete every copy of values 0..4.
  for (Value val = 0; val < 5; ++val) {
    while (relation.FrequencyOf(val) > 0) {
      const Count before = relation.FrequencyOf(val);
      ASSERT_TRUE(sample.DeleteWithFrequency(val, before).ok());
      ASSERT_TRUE(relation.Delete(val).ok());
    }
  }
  for (Value p : sample.Points()) {
    EXPECT_GE(p, 5);
    EXPECT_LT(p, 20);
  }
}

TEST(BackingSampleTest, RepopulationTriggerAndRebuild) {
  BackingSample sample(40, 35, 6);
  Relation relation;
  for (Value v = 0; v < 500; ++v) {
    sample.Insert(v);
    relation.Insert(v);
  }
  // Hammer deletions until the sample shrinks below the watermark.
  Value next = 0;
  while (!sample.NeedsRepopulation() && relation.size() > 100) {
    const Count before = relation.FrequencyOf(next);
    if (before > 0) {
      ASSERT_TRUE(sample.DeleteWithFrequency(next, before).ok());
      ASSERT_TRUE(relation.Delete(next).ok());
    }
    ++next;
  }
  ASSERT_TRUE(sample.NeedsRepopulation());
  const std::vector<Value> base = relation.Materialize();
  sample.Repopulate(base);
  EXPECT_EQ(sample.SampleSize(), 40);
  EXPECT_FALSE(sample.NeedsRepopulation());
  // All points must come from the current base data.
  for (Value p : sample.Points()) {
    EXPECT_GT(relation.FrequencyOf(p), 0);
  }
}

TEST(BackingSampleTest, RepopulateSamplesWithoutReplacement) {
  BackingSample sample(20, 5, 7);
  std::vector<Value> base(100);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<Value>(i);
  }
  sample.Repopulate(base);
  std::vector<Value> points = sample.Points();
  std::sort(points.begin(), points.end());
  EXPECT_TRUE(std::adjacent_find(points.begin(), points.end()) ==
              points.end());
}

TEST(BackingSampleTest, SurvivorsStayUniformAfterDeletes) {
  // Delete every tuple of half the values; among surviving values the
  // sample must remain balanced (each survivor value has equal frequency).
  constexpr int kTrials = 800;
  constexpr Value kValues = 10;
  constexpr Count kPerValue = 100;
  std::vector<double> mass(kValues, 0.0);
  double total = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    BackingSample sample(30, 2, 9000 + static_cast<std::uint64_t>(t));
    for (Count i = 0; i < kPerValue; ++i) {
      for (Value v = 0; v < kValues; ++v) sample.Insert(v);
    }
    for (Value v = 0; v < kValues / 2; ++v) {
      for (Count remaining = kPerValue; remaining > 0; --remaining) {
        ASSERT_TRUE(sample.DeleteWithFrequency(v, remaining).ok());
      }
    }
    for (Value p : sample.Points()) {
      ASSERT_GE(p, kValues / 2);  // deleted values must be gone
      mass[static_cast<std::size_t>(p)] += 1.0;
      total += 1.0;
    }
  }
  ASSERT_GT(total, 0.0);
  for (Value v = kValues / 2; v < kValues; ++v) {
    const double share = mass[static_cast<std::size_t>(v)] / total;
    EXPECT_NEAR(share, 1.0 / (kValues / 2.0), 0.03) << "value " << v;
  }
}

TEST(BackingSampleTest, InclusionStaysUniformUnderInsertOnly) {
  constexpr int kTrials = 1500;
  constexpr std::int64_t kN = 400;
  constexpr std::int64_t kM = 40;
  std::vector<int> inclusion(kN, 0);
  for (int t = 0; t < kTrials; ++t) {
    BackingSample sample(kM, 4, 100 + static_cast<std::uint64_t>(t));
    for (Value v = 0; v < kN; ++v) sample.Insert(v);
    for (Value p : sample.Points()) ++inclusion[static_cast<std::size_t>(p)];
  }
  const double expected = static_cast<double>(kTrials) * kM / kN;
  const double sigma = std::sqrt(expected * (1.0 - static_cast<double>(kM) / kN));
  for (std::int64_t pos : {std::int64_t{0}, kN / 2, kN - 1}) {
    EXPECT_NEAR(inclusion[static_cast<std::size_t>(pos)], expected,
                5.0 * sigma)
        << "position " << pos;
  }
}

}  // namespace
}  // namespace aqua
