#include "sample/bernoulli_sample.h"

#include <gtest/gtest.h>

namespace aqua {
namespace {

TEST(BernoulliSampleTest, ProbabilityOneKeepsEverything) {
  BernoulliSample sample(1.0, 1);
  for (Value v = 0; v < 100; ++v) sample.Insert(v);
  EXPECT_EQ(sample.Points().size(), 100u);
  EXPECT_EQ(sample.Cost().coin_flips, 0);
}

TEST(BernoulliSampleTest, SizeConcentratesAroundPN) {
  BernoulliSample sample(0.05, 2);
  constexpr std::int64_t kN = 100000;
  for (Value v = 0; v < kN; ++v) sample.Insert(v);
  const auto size = static_cast<double>(sample.Points().size());
  EXPECT_NEAR(size, 0.05 * kN, 6.0 * std::sqrt(0.05 * kN));
  EXPECT_EQ(sample.ObservedInserts(), kN);
  EXPECT_EQ(sample.Footprint(),
            static_cast<Words>(sample.Points().size()));
}

TEST(BernoulliSampleTest, PointsAreSubsetOfStream) {
  BernoulliSample sample(0.2, 3);
  for (Value v = 0; v < 1000; ++v) sample.Insert(v * 3 + 1);
  for (Value p : sample.Points()) EXPECT_EQ((p - 1) % 3, 0);
}

TEST(BernoulliSampleTest, DrawsOnePerSelection) {
  BernoulliSample sample(0.01, 4);
  constexpr std::int64_t kN = 100000;
  for (Value v = 0; v < kN; ++v) sample.Insert(v);
  // Skip counting: draws ≈ selections + 1, far below one per insert.
  EXPECT_LE(sample.Cost().coin_flips,
            static_cast<std::int64_t>(sample.Points().size()) + 1);
}

TEST(BernoulliSampleTest, DeleteUnsupported) {
  BernoulliSample sample(0.5, 5);
  EXPECT_TRUE(sample.Delete(1).IsFailedPrecondition());
  EXPECT_EQ(sample.Name(), "bernoulli-sample");
}

}  // namespace
}  // namespace aqua
