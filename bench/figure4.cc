// Reproduces Figure 4 of Gibbons & Matias (SIGMOD 1998): comparison of the
// four hot-list algorithms on 500000 values in [1,500], zipf parameter 1.5,
// footprint 100.  The paper's measured outcome on this configuration:
// counting samples accurately reported the 15 most frequent values (18 of
// the first 20) with two mildly-overestimated false positives; concise did
// almost as well; traditional had false negatives by rank 7-8.

#include <iostream>

#include "bench/bench_util.h"
#include "hotlist/concise_hot_list.h"
#include "hotlist/counting_hot_list.h"
#include "hotlist/traditional_hot_list.h"
#include "metrics/hotlist_accuracy.h"
#include "warehouse/full_histogram.h"

int main(int argc, char** argv) {
  using namespace aqua;
  using namespace aqua::bench;
  ApplySmoke(argc, argv);

  PrintHeader(
      "Figure 4: hot-list algorithms, 500000 values in [1,500], "
      "zipf 1.5, footprint 100");

  const std::uint64_t seed = TrialSeed(4000, 0);
  HotListExperiment e(kInserts, 500, 1.5, 100, seed);
  FullHistogram full(100);
  for (const ValueCount& vc : e.relation.ExactCounts()) {
    for (Count i = 0; i < vc.count; ++i) full.Insert(vc.value);
  }

  const HotListQuery query{.k = 0, .beta = kBeta};
  const std::vector<AlgoReport> reports = {
      {"full-hist", full.Report({.k = 25})},
      {"counting", CountingHotList(e.counting).Report(query)},
      {"concise", ConciseHotList(e.concise).Report(query)},
      {"traditional", TraditionalHotList(e.traditional).Report(query)},
  };
  PrintRankTable(e.relation, reports, /*max_rows=*/30);

  // Paper-style summary lines.
  const auto exact = e.relation.ExactCounts();
  std::cout << "\nSummary (vs exact top-20):\n";
  for (std::size_t a = 1; a < reports.size(); ++a) {
    const HotListAccuracy acc = EvaluateHotList(reports[a].list, exact, 20);
    std::cout << "  " << reports[a].name << ": reported " << acc.reported
              << ", correct prefix " << acc.correct_prefix << ", "
              << acc.true_positives << " of first 20, false positives "
              << acc.false_positives << ", mean count error "
              << static_cast<int>(acc.mean_relative_count_error * 100)
              << "%\n";
  }
  std::cout << "concise sample-size: " << e.concise.SampleSize()
            << " (footprint 100; paper measured 388, a 3.8x gain)\n";
  return 0;
}
