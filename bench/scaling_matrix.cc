// The scaling harness: measured (not extrapolated) multi-core numbers for
// the vectorized data plane, swept over --reactors × --shards with
// optional core pinning.  Three sections, one BENCH_6.json:
//
//   ingest_s{S}        S producer threads driving ServingEngine::InsertBatch
//                      through the SIMD batch kernels and the pre-routed
//                      sharded inserter (elements/sec vs shard count),
//   batch_large_tau    per-element Insert vs batched InsertBatch on the
//                      concise sample in the large-τ regime — the paper's
//                      "per-update cost is the point" number, reported as
//                      batch_speedup_vs_insert,
//   serve_r{R}_s{S}    a real HttpServer with R pinned reactors over an
//                      engine with S ingest shards, keep-alive GET load
//                      from R pinned client threads (rps + tail latency).
//
// --pin-cpus pins reactor i to CPU i and client thread t to CPU R+t
// (modulo online CPUs) via sched_setaffinity; the JSON's hardware object
// records hw_concurrency, the affinity mask width, and the pin policy, so
// a 1-CPU container's numbers cannot masquerade as a 16-core result.
// --smoke shrinks streams and request counts to CI size; --json <path>
// archives the metrics (BENCH_6.json).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/http_client.h"
#include "core/concise_sample.h"
#include "server/routes.h"
#include "server/server.h"
#include "server/serving_engine.h"
#include "workload/generators.h"

namespace aqua {
namespace bench {
namespace {

constexpr std::size_t kBatch = 4096;

/// "1,2,4" -> {1, 2, 4}; invalid tokens are skipped.
std::vector<int> ParseIntList(const std::string& arg) {
  std::vector<int> out;
  std::size_t at = 0;
  while (at < arg.size()) {
    const std::size_t comma = arg.find(',', at);
    const std::string token =
        arg.substr(at, comma == std::string::npos ? arg.size() - at
                                                  : comma - at);
    const int v = std::atoi(token.c_str());
    if (v > 0) out.push_back(v);
    at = comma == std::string::npos ? arg.size() : comma + 1;
  }
  return out;
}

ServingEngineOptions EngineOptions(std::size_t shards) {
  ServingEngineOptions options;
  options.shards = shards;
  // Refreshes are merge work, not wire work; push them past the bench
  // horizon so a serving row measures the serving path.
  options.cache_max_stale_ops = std::numeric_limits<std::int64_t>::max();
  options.cache_max_stale_interval = std::chrono::hours(24);
  return options;
}

/// S producer threads, each feeding its contiguous slice of `stream` in
/// kBatch-element spans through the engine's vectorized ingest.
void IngestRow(int shards, const std::vector<Value>& stream, bool pin,
               BenchReport* report) {
  double best_s = 1e300;
  constexpr int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    ServingEngine engine(EngineOptions(static_cast<std::size_t>(shards)));
    const std::size_t per_thread = stream.size() / static_cast<std::size_t>(
                                                       shards);
    const std::int64_t start = NowNs();
    std::vector<std::thread> producers;
    producers.reserve(static_cast<std::size_t>(shards));
    for (int t = 0; t < shards; ++t) {
      producers.emplace_back([&, t] {
        if (pin) PinSelfToCpu(static_cast<std::size_t>(t));
        const std::size_t begin = static_cast<std::size_t>(t) * per_thread;
        const std::size_t end =
            t == shards - 1 ? stream.size() : begin + per_thread;
        const std::span<const Value> mine(stream.data() + begin,
                                          end - begin);
        for (std::size_t i = 0; i < mine.size(); i += kBatch) {
          engine.InsertBatch(
              mine.subspan(i, std::min(kBatch, mine.size() - i)));
        }
      });
    }
    for (std::thread& p : producers) p.join();
    const double secs = static_cast<double>(NowNs() - start) / 1e9;
    if (secs < best_s) best_s = secs;
  }
  const auto n = static_cast<double>(stream.size());
  std::printf("ingest_s%-2d %3d threads  %10.0f elem/s  %7.1f ns/elem\n",
              shards, shards, n / best_s, best_s / n * 1e9);
  char row[32];
  std::snprintf(row, sizeof(row), "ingest_s%d", shards);
  report->Add(row, {{"shards", static_cast<double>(shards)},
                    {"threads", static_cast<double>(shards)},
                    {"elements_per_sec", n / best_s},
                    {"ns_per_element", best_s / n * 1e9}});
}

/// The acceptance number: batched vs per-element concise-sample ingest in
/// the large-τ regime (long low-duplication stream, small footprint, so
/// the threshold is high and almost every element is skip-jumped).
void BatchLargeTauRow(BenchReport* report) {
  const std::int64_t n = SmokeCap(2000000);
  const std::vector<Value> stream = UniformValues(n, 400000, 91);
  constexpr int kReps = 3;
  auto time_best = [&](auto&& feed) {
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      ConciseSample sample(
          ConciseSampleOptions{.footprint_bound = 1000, .seed = 92});
      const std::int64_t start = NowNs();
      feed(sample);
      const double secs = static_cast<double>(NowNs() - start) / 1e9;
      if (secs < best) best = secs;
    }
    return best;
  };
  const double insert_s = time_best([&](ConciseSample& sample) {
    for (Value v : stream) sample.Insert(v);
  });
  const double batch_s = time_best([&](ConciseSample& sample) {
    const std::span<const Value> all(stream);
    for (std::size_t i = 0; i < all.size(); i += kBatch) {
      sample.InsertBatch(all.subspan(i, std::min(kBatch, all.size() - i)));
    }
  });
  const auto dn = static_cast<double>(n);
  const double speedup = insert_s / batch_s;
  std::printf(
      "batch_large_tau  insert %6.1f ns/elem  batch %6.1f ns/elem  "
      "speedup %.2fx\n",
      insert_s / dn * 1e9, batch_s / dn * 1e9, speedup);
  report->Add("batch_large_tau",
              {{"insert_ns_per_element", insert_s / dn * 1e9},
               {"batch_ns_per_element", batch_s / dn * 1e9},
               {"batch_speedup_vs_insert", speedup}});
}

/// One serving cell: R reactors (pinned when --pin-cpus) over an engine
/// with S ingest shards, cacheable GET load from R keep-alive clients.
void ServeRow(int reactors, int shards, const std::vector<Value>& preload,
              bool pin, BenchReport* report) {
  ServingEngine engine(EngineOptions(static_cast<std::size_t>(shards)));
  engine.InsertBatch(preload);

  HttpServerOptions options;
  options.reactors = reactors;
  options.workers = 1;
  options.pin_reactors = pin;
  HttpServer server(options);
  RegisterServingRoutes(server, engine);
  InstallEpochSource(server, engine, nullptr);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "serve_r%d_s%d: server failed to start\n", reactors,
                 shards);
    return;
  }

  const int per_thread = SmokeMode() ? 200 : 6000;
  const std::vector<std::string> paths = {"/hotlist?k=10&beta=3",
                                          "/frequency?value=17",
                                          "/count_where?low=0&high=1000"};
  // Clients pin past the reactors so they land on distinct cores when the
  // host has enough; on a narrow host both wrap onto the same CPUs and
  // the hardware object says so.
  const LoadResult load = DriveLoad(server.port(), paths, reactors,
                                    per_thread, pin ? reactors : -1);
  const HttpServer::ServerStats stats = server.Stats();
  server.Shutdown();

  const LatencySummary summary = Summarize(load.samples_ns, load.elapsed_s);
  std::printf(
      "serve_r%d_s%-2d %10.0f rps  p50 %7.0f ns  p99 %8.0f ns  p999 "
      "%8.0f ns  hits %lld/%lld  errors %lld\n",
      reactors, shards, summary.throughput_rps, summary.p50_ns,
      summary.p99_ns, summary.p999_ns,
      static_cast<long long>(stats.cache_hits),
      static_cast<long long>(stats.requests),
      static_cast<long long>(load.errors));
  char row[32];
  std::snprintf(row, sizeof(row), "serve_r%d_s%d", reactors, shards);
  std::vector<std::pair<std::string, double>> metrics = {
      {"reactors", static_cast<double>(reactors)},
      {"shards", static_cast<double>(shards)},
      {"client_threads", static_cast<double>(reactors)},
      {"pinned", pin ? 1.0 : 0.0},
      {"cache_hits", static_cast<double>(stats.cache_hits)},
      {"errors", static_cast<double>(load.errors)},
  };
  AppendSummaryMetrics("", summary, &metrics);
  report->Add(row, std::move(metrics));
}

}  // namespace
}  // namespace bench
}  // namespace aqua

int main(int argc, char** argv) {
  using namespace aqua;          // NOLINT(build/namespaces)
  using namespace aqua::bench;   // NOLINT(build/namespaces)
  ApplySmoke(argc, argv);
  const std::string json_path = BenchReport::JsonPathFromArgs(argc, argv);

  bool pin = false;
  std::vector<int> reactors = {1, 2, 4};
  std::vector<int> shards = {1, 2, 4};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pin-cpus") == 0) {
      pin = true;
    } else if (std::strcmp(argv[i], "--reactors") == 0 && i + 1 < argc) {
      reactors = ParseIntList(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = ParseIntList(argv[++i]);
    }
  }
  if (SmokeMode()) {
    reactors = {1, 2};
    shards = {1, 2};
  }

  BenchReport report("scaling_matrix");
  report.SetHardware("pin_policy",
                     pin ? "reactor i -> cpu i, client t -> cpu R+t "
                           "(mod online cpus)"
                         : "unpinned");

  PrintHeader("scaling matrix (reactors x shards, measured)");
  std::printf("hw_concurrency=%u pin=%s\n",
              std::thread::hardware_concurrency(), pin ? "on" : "off");

  const std::vector<Value> ingest_stream =
      ZipfValues(SmokeCap(1000000), 50000, 1.0, 93);
  for (int s : shards) IngestRow(s, ingest_stream, pin, &report);

  BatchLargeTauRow(&report);

  const std::vector<Value> preload = ZipfValues(SmokeCap(200000), 500, 1.0,
                                                94);
  for (int r : reactors) {
    for (int s : shards) ServeRow(r, s, preload, pin, &report);
  }

  if (!report.WriteJson(json_path)) return 1;
  return 0;
}
