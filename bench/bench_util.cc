#include "bench/bench_util.h"

#include <sched.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <thread>

#include "container/flat_hash_map.h"
#include "metrics/hotlist_accuracy.h"
#include "metrics/table_printer.h"

namespace aqua {
namespace bench {

void PrintRankTable(const Relation& relation,
                    const std::vector<AlgoReport>& reports,
                    std::int64_t max_rows) {
  // Minimum reported count across all approximation algorithms.
  double min_reported = std::numeric_limits<double>::infinity();
  for (const AlgoReport& r : reports) {
    for (const HotListItem& item : r.list) {
      min_reported = std::min(min_reported, item.estimated_count);
    }
  }
  // k = number of exact values whose frequency >= min reported count.
  std::vector<ValueCount> exact = relation.ExactCounts();
  std::sort(exact.begin(), exact.end(),
            [](const ValueCount& a, const ValueCount& b) {
              return a.count > b.count ||
                     (a.count == b.count && a.value < b.value);
            });
  std::int64_t k = 0;
  for (const ValueCount& vc : exact) {
    if (static_cast<double>(vc.count) >= min_reported) {
      ++k;
    } else {
      break;
    }
  }
  if (k == 0) k = std::min<std::int64_t>(10, exact.size());
  k = std::min(k, max_rows);

  // Per-algorithm estimate lookup.
  std::vector<FlatHashMap<Value, double>> estimates(reports.size());
  for (std::size_t a = 0; a < reports.size(); ++a) {
    for (const HotListItem& item : reports[a].list) {
      estimates[a].TryInsert(item.value, item.estimated_count);
    }
  }
  FlatHashMap<Value, Count> in_top_k;
  for (std::int64_t i = 0; i < k; ++i) {
    in_top_k.TryInsert(exact[static_cast<std::size_t>(i)].value, 1);
  }

  std::vector<std::string> headers = {"rank", "value", "exact"};
  for (const AlgoReport& r : reports) headers.push_back(r.name);
  TablePrinter table(std::move(headers));

  auto add_row = [&](std::int64_t rank, const ValueCount& vc) {
    std::vector<std::string> row = {
        rank > 0 ? TablePrinter::Num(rank) : std::string("FP"),
        TablePrinter::Num(vc.value), TablePrinter::Num(vc.count)};
    for (std::size_t a = 0; a < reports.size(); ++a) {
      const double* est = estimates[a].Find(vc.value);
      row.push_back(est != nullptr ? TablePrinter::Num(*est, 0)
                                   : std::string("-"));
    }
    table.AddRow(std::move(row));
  };

  for (std::int64_t i = 0; i < k; ++i) {
    add_row(i + 1, exact[static_cast<std::size_t>(i)]);
  }
  // False positives: reported values outside the exact top-k, in
  // nonincreasing order of actual frequency.
  std::vector<ValueCount> false_positives;
  FlatHashMap<Value, Count> fp_seen;
  for (const AlgoReport& r : reports) {
    for (const HotListItem& item : r.list) {
      if (!in_top_k.Contains(item.value) && !fp_seen.Contains(item.value)) {
        fp_seen.TryInsert(item.value, 1);
        false_positives.push_back(
            ValueCount{item.value, relation.FrequencyOf(item.value)});
      }
    }
  }
  std::sort(false_positives.begin(), false_positives.end(),
            [](const ValueCount& a, const ValueCount& b) {
              return a.count > b.count ||
                     (a.count == b.count && a.value < b.value);
            });
  if (!false_positives.empty()) {
    std::vector<std::string> sep = {"--", "--", "--"};
    for (std::size_t a = 0; a < reports.size(); ++a) sep.push_back("--");
    table.AddRow(std::move(sep));
    for (const ValueCount& vc : false_positives) add_row(0, vc);
  }
  table.Print(std::cout);
  std::cout << "(rows below the -- rule are false positives, shown with "
               "their actual frequency)\n";
}

LatencySummary Summarize(std::vector<std::int64_t> samples_ns,
                         double elapsed_s) {
  LatencySummary s;
  if (samples_ns.empty()) return s;
  std::sort(samples_ns.begin(), samples_ns.end());
  const std::size_t n = samples_ns.size();
  s.p50_ns = static_cast<double>(samples_ns[n / 2]);
  s.p99_ns = static_cast<double>(samples_ns[std::min(n - 1, n * 99 / 100)]);
  s.p999_ns =
      static_cast<double>(samples_ns[std::min(n - 1, n * 999 / 1000)]);
  if (elapsed_s > 0.0) {
    s.throughput_rps = static_cast<double>(n) / elapsed_s;
  }
  return s;
}

void AppendSummaryMetrics(const std::string& prefix,
                          const LatencySummary& summary,
                          std::vector<std::pair<std::string, double>>* out) {
  out->emplace_back(prefix + "p50_ns", summary.p50_ns);
  out->emplace_back(prefix + "p99_ns", summary.p99_ns);
  out->emplace_back(prefix + "p999_ns", summary.p999_ns);
  out->emplace_back(prefix + "throughput_rps", summary.throughput_rps);
}

namespace {

/// Escapes the handful of characters bench/metric names could contain.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// First "model name" line of /proc/cpuinfo ("unknown" elsewhere/sandboxed).
std::string CpuModelName() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) == 0) {
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) break;
      std::size_t at = colon + 1;
      while (at < line.size() && line[at] == ' ') ++at;
      return line.substr(at);
    }
  }
  return "unknown";
}

/// CPUs in this process's affinity mask (0 when the syscall fails).
int AffinityCpuCount() {
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) != 0) return 0;
  return CPU_COUNT(&mask);
}

/// The batch-kernel path this binary was compiled for (see batch_kernels.h).
const char* CompiledSimdPath() {
#if defined(AQUA_FORCE_SCALAR)
  return "scalar(forced)";
#elif defined(__AVX2__)
  return "avx2";
#elif defined(__SSE2__) || defined(__x86_64__)
  return "sse2";
#elif defined(__ARM_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

}  // namespace

void BenchReport::SetHardware(std::string key, std::string value) {
  for (auto& [k, v] : hardware_extra_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  hardware_extra_.emplace_back(std::move(key), std::move(value));
}

bool BenchReport::WriteJson(const std::string& path) const {
  if (path.empty()) return true;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "bench: cannot open --json path " << path << "\n";
    return false;
  }
  out << "{\"bench\": \"" << JsonEscape(bench_name_) << "\",\n";
  out << " \"hardware\": {\"cpu_model\": \"" << JsonEscape(CpuModelName())
      << "\", \"hw_concurrency\": " << std::thread::hardware_concurrency()
      << ", \"affinity_cpus\": " << AffinityCpuCount() << ", \"simd\": \""
      << CompiledSimdPath() << "\"";
  for (const auto& [k, v] : hardware_extra_) {
    out << ", \"" << JsonEscape(k) << "\": \"" << JsonEscape(v) << "\"";
  }
  out << "},\n \"results\": [";
  for (std::size_t i = 0; i < results_.size(); ++i) {
    const Row& row = results_[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "  {\"name\": \"" << JsonEscape(row.name) << "\", \"metrics\": {";
    for (std::size_t j = 0; j < row.metrics.size(); ++j) {
      if (j > 0) out << ", ";
      out << "\"" << JsonEscape(row.metrics[j].first)
          << "\": " << JsonNumber(row.metrics[j].second);
    }
    out << "}}";
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

namespace {
bool g_smoke = false;
constexpr std::int64_t kSmokeInserts = 2000;
constexpr std::int64_t kSmokeCap = 2000;
}  // namespace

bool SmokeMode() { return g_smoke; }

bool ApplySmoke(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  }
  if (g_smoke) {
    kInserts = kSmokeInserts;
    kTrials = 1;
  }
  return g_smoke;
}

std::int64_t SmokeCap(std::int64_t n) {
  return g_smoke && n > kSmokeCap ? kSmokeCap : n;
}

std::string BenchReport::JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      return argv[i] + 7;
    }
  }
  return "";
}

}  // namespace bench
}  // namespace aqua
