// Reproduces Figure 6 of Gibbons & Matias (SIGMOD 1998): traditional,
// concise, and counting samples on an intermediate skew with a large D/m
// ratio — 500000 values in [1,50000], zipf parameter 1.25, footprint 1000.
// Expected ordering: counting more accurate than concise more accurate than
// traditional, with a concise sample-size ~3.5x the traditional.

#include <iostream>

#include "bench/bench_util.h"
#include "hotlist/concise_hot_list.h"
#include "hotlist/counting_hot_list.h"
#include "hotlist/traditional_hot_list.h"
#include "metrics/hotlist_accuracy.h"

int main(int argc, char** argv) {
  using namespace aqua;
  using namespace aqua::bench;
  ApplySmoke(argc, argv);

  PrintHeader(
      "Figure 6: three algorithms, 500000 values in [1,50000], "
      "zipf 1.25, footprint 1000");

  const std::uint64_t seed = TrialSeed(6000, 0);
  HotListExperiment e(kInserts, 50000, 1.25, 1000, seed);

  const HotListQuery query{.k = 0, .beta = kBeta};
  const std::vector<AlgoReport> reports = {
      {"counting", CountingHotList(e.counting).Report(query)},
      {"concise", ConciseHotList(e.concise).Report(query)},
      {"traditional", TraditionalHotList(e.traditional).Report(query)},
  };
  PrintRankTable(e.relation, reports, /*max_rows=*/170);

  const auto exact = e.relation.ExactCounts();
  std::cout << "\nSummary (vs exact top-40):\n";
  for (const AlgoReport& r : reports) {
    const HotListAccuracy acc = EvaluateHotList(r.list, exact, 40);
    std::cout << "  " << r.name << ": reported " << acc.reported
              << ", recall@40 " << acc.Recall(40) << ", precision "
              << acc.Precision() << ", mean count error "
              << static_cast<int>(acc.mean_relative_count_error * 100)
              << "%\n";
  }
  std::cout << "concise sample-size: " << e.concise.SampleSize()
            << " vs traditional " << e.traditional.SampleSize()
            << " (paper: 3498 vs 1000, a ~3.5x gain)\n";
  return 0;
}
