// HTTP serving throughput across the multi-reactor read path, measured
// head-to-head under both IO backends (epoll vs io_uring).
//
// Default mode spins up in-process HttpServers and measures each scenario
// over real loopback sockets with keep-alive clients, once per backend
// (scenario names are suffixed _epoll / _io_uring; the io_uring leg is
// skipped with a note when the kernel lacks support):
//
//   cache_hit_micro   ResponseCache BuildKey+Lookup alone (no sockets),
//                     with an allocation counter proving the warmed hit
//                     path is allocation-free (allocs_per_hit metric),
//   uncached_r1_*     1 reactor, cacheable route, epoch source absent —
//                     every request renders,
//   cached_r1_*       1 reactor, same route, settled epoch — steady-state
//                     hits replaying stored wire bytes,
//   cached_wide_*     N reactors (min(8, hardware)), same cached load from
//                     N client threads — the aggregate-rps scaling number
//                     (honest caveat: on a 1-core container this measures
//                     scheduling overhead, not parallel speedup).
//
// Each server scenario also reports the transport cost per request from
// the server's own IO counters: syscalls_per_request (enter/epoll_wait +
// accept/read/write calls over served requests) and the zero-copy vs
// copied send split — the numbers behind the io_uring wire-path claim.
//
// --io-backend {epoll,io_uring} restricts the run to one backend.
//
// With --port P the binary instead drives an EXISTING server at
// 127.0.0.1:P (the CI serve-under-load smoke): keep-alive GET load across
// a few routes, reporting status-code counts and exiting nonzero on any
// 5xx — overload 503s are deliberate on worker routes only, and this mode
// sends only inline reads, so every 5xx is a bug.
//
// --smoke shrinks request counts to CI size; --json <path> archives the
// metrics (BENCH_5.json for the epoll-era run, BENCH_8.json for the
// epoll-vs-io_uring comparison).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/http_client.h"
#include "server/http.h"
#include "server/io_backend.h"
#include "server/response_cache.h"
#include "server/server.h"

namespace {
std::atomic<std::int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace aqua {
namespace bench {
namespace {

HttpRequest ParseRequest(const std::string& wire) {
  HttpRequestParser parser;
  parser.Feed(wire);
  return parser.TakeRequest();
}

/// ResponseCache hit path alone: BuildKey + Lookup on a warmed cache.
void CacheHitMicro(BenchReport* report) {
  ResponseCache cache;
  const HttpRequest request = ParseRequest(
      "GET /hotlist?k=10&beta=3&confidence=0.95 HTTP/1.1\r\nHost: b\r\n\r\n");
  cache.Store(1, cache.BuildKey(request), std::string(512, 'x'));
  (void)cache.Lookup(1, cache.BuildKey(request));  // warm the key buffer

  const std::int64_t iters = SmokeMode() ? 20000 : 2000000;
  const std::int64_t allocs_before =
      g_allocations.load(std::memory_order_relaxed);
  const std::int64_t start = NowNs();
  std::int64_t hits = 0;
  for (std::int64_t i = 0; i < iters; ++i) {
    if (cache.Lookup(1, cache.BuildKey(request)) != nullptr) ++hits;
  }
  const std::int64_t end = NowNs();
  const double elapsed_s = static_cast<double>(end - start) / 1e9;
  const std::int64_t allocs =
      g_allocations.load(std::memory_order_relaxed) - allocs_before;

  const double ns_per_hit =
      static_cast<double>(end - start) / static_cast<double>(iters);
  const double allocs_per_hit =
      static_cast<double>(allocs) / static_cast<double>(iters);
  std::printf("%-16s %10.1f ns/hit  %12.0f hits/s  %.4f allocs/hit\n",
              "cache_hit_micro", ns_per_hit,
              static_cast<double>(hits) / elapsed_s, allocs_per_hit);
  report->Add("cache_hit_micro",
              {{"ns_per_hit", ns_per_hit},
               {"throughput_rps", static_cast<double>(hits) / elapsed_s},
               {"allocs_per_hit", allocs_per_hit}});
}

/// One in-process server scenario: a cacheable JSON route under keep-alive
/// GET load.  `settled_epoch` toggles whether the response cache engages;
/// `backend` selects the reactor IO backend under test.
void ServerScenario(const std::string& name, IoBackendKind backend,
                    int reactors, int threads, bool settled_epoch,
                    BenchReport* report) {
  HttpServerOptions options;
  options.reactors = reactors;
  options.workers = 1;
  options.io_backend = backend;
  HttpServer server(options);
  RouteOptions cacheable;
  cacheable.cacheable = true;
  server.Route("GET", "/answer",
               [](const HttpRequest& request) {
                 // A render comparable to a real synopsis answer: walk the
                 // parsed query and emit a ~400-byte JSON body.
                 HttpResponse response;
                 response.body.reserve(420);
                 response.body = "{\"items\":[";
                 for (int i = 0; i < 24; ++i) {
                   if (i > 0) response.body += ",";
                   response.body += "{\"v\":" + std::to_string(i * 37) +
                                    ",\"c\":" + std::to_string(1000 - i) +
                                    "}";
                 }
                 response.body += "],\"k\":";
                 const auto k = request.QueryParam("k");
                 response.body += k.has_value() ? std::string(*k) : "0";
                 response.body += "}";
                 return response;
               },
               cacheable);
  if (settled_epoch) {
    server.SetEpochSource(
        []() -> std::optional<std::uint64_t> { return 1; });
  }
  if (!server.Start().ok()) {
    std::fprintf(stderr, "%s: server failed to start\n", name.c_str());
    return;
  }
  if (server.io_backend() != backend) {
    // The probe passed at selection time, so a fallback here is news.
    std::fprintf(stderr, "%s: fell back to %s, skipping scenario\n",
                 name.c_str(),
                 std::string(IoBackendKindName(server.io_backend())).c_str());
    server.Shutdown();
    return;
  }

  const int per_thread = SmokeMode() ? 200 : 8000;
  const LoadResult load =
      DriveLoad(server.port(), {"/answer?k=10&beta=3"}, threads, per_thread);
  server.Shutdown();

  const LatencySummary summary = Summarize(load.samples_ns, load.elapsed_s);
  // Stats() after Shutdown: the IO counters are aggregated from the
  // backends, which outlive their reactor threads.
  const HttpServer::ServerStats stats = server.Stats();
  const double requests = stats.requests > 0
                              ? static_cast<double>(stats.requests)
                              : 1.0;
  const double syscalls_per_request =
      static_cast<double>(stats.io.syscalls) / requests;
  const double copied_bytes_per_request =
      static_cast<double>(stats.io.copied_bytes) / requests;
  std::printf(
      "%-20s %10.0f rps  p50 %7.0f ns  p99 %8.0f ns  p999 %8.0f ns  "
      "%5.2f sys/req  zc/copied sends %lld/%lld  hits %lld/%lld  "
      "errors %lld\n",
      name.c_str(), summary.throughput_rps, summary.p50_ns, summary.p99_ns,
      summary.p999_ns, syscalls_per_request,
      static_cast<long long>(stats.io.zero_copy_sends),
      static_cast<long long>(stats.io.copied_sends),
      static_cast<long long>(stats.cache_hits),
      static_cast<long long>(stats.requests),
      static_cast<long long>(load.errors));
  std::vector<std::pair<std::string, double>> metrics = {
      {"reactors", static_cast<double>(reactors)},
      {"client_threads", static_cast<double>(threads)},
      {"cache_hits", static_cast<double>(stats.cache_hits)},
      {"cache_misses", static_cast<double>(stats.cache_misses)},
      {"errors", static_cast<double>(load.errors)},
      {"syscalls_per_request", syscalls_per_request},
      {"zero_copy_sends", static_cast<double>(stats.io.zero_copy_sends)},
      {"copied_sends", static_cast<double>(stats.io.copied_sends)},
      {"copied_bytes_per_request", copied_bytes_per_request},
  };
  AppendSummaryMetrics("", summary, &metrics);
  report->Add(name, std::move(metrics));
}

/// Scrapes a top-level `"key": <integer>` out of a flat JSON body.
bool ScrapeInt(const std::string& body, const std::string& key,
               std::int64_t* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return false;
  std::size_t digit = at + needle.size();
  while (digit < body.size() && body[digit] == ' ') ++digit;
  bool negative = false;
  if (digit < body.size() && body[digit] == '-') {
    negative = true;
    ++digit;
  }
  std::int64_t value = 0;
  bool any = false;
  while (digit < body.size() && body[digit] >= '0' && body[digit] <= '9') {
    value = value * 10 + (body[digit] - '0');
    ++digit;
    any = true;
  }
  if (!any) return false;
  *out = negative ? -value : value;
  return true;
}

/// The `allocs_per_request == 0` smoke: against a server built with
/// -DAQUA_COUNT_GLOBAL_ALLOCS=ON, samples /stats `allocs_total` around a
/// warmed GET window on one keep-alive connection and fails on any delta.
/// The window mixes cache hits (repeated cacheable queries) and cold
/// renders (/stats is never cached), so both paths are covered.  The
/// server must run with staleness bounds beyond the window (CI passes
/// --cache-stale-ms 3600000) or idle snapshot refreshes would re-merge —
/// a real, separately-budgeted allocation that is not part of the wire
/// path.  Skips (rc 0) when the server reports alloc_counting=false.
int AllocsPerRequestCheck(std::uint16_t port, BenchReport* report) {
  const int fd = ConnectTo(port);
  if (fd < 0) {
    std::fprintf(stderr, "allocs_per_request: cannot connect\n");
    return 1;
  }
  std::string carry;
  auto get = [&](const std::string& path, std::string* body) {
    const std::string wire = "GET " + path + " HTTP/1.1\r\nHost: b\r\n\r\n";
    if (!SendAll(fd, wire)) return 0;
    return ReadOneBody(fd, &carry, body);
  };
  const std::vector<std::string> paths = {
      "/healthz", "/hotlist?k=10&beta=3", "/frequency?value=17",
      "/distinct", "/stats"};
  // Warm THIS connection's reactor: the first miss of each cacheable path
  // renders and stores (one-time allocations), every thread_local scratch
  // reaches final capacity.
  for (int round = 0; round < 3; ++round) {
    for (const std::string& path : paths) {
      if (get(path, nullptr) != 200) {
        std::fprintf(stderr, "allocs_per_request: warm-up %s failed\n",
                     path.c_str());
        close(fd);
        return 1;
      }
    }
  }
  std::string body;
  if (get("/stats", &body) != 200) {
    close(fd);
    return 1;
  }
  std::int64_t before = 0;
  if (!ScrapeInt(body, "allocs_total", &before) ||
      body.find("\"alloc_counting\":true") == std::string::npos) {
    std::printf(
        "allocs_per_request: server not built with "
        "AQUA_COUNT_GLOBAL_ALLOCS, skipping\n");
    close(fd);
    return 0;
  }
  const int window = SmokeMode() ? 100 : 1000;
  for (int i = 0; i < window; ++i) {
    if (get(paths[static_cast<std::size_t>(i) % paths.size()], nullptr) !=
        200) {
      close(fd);
      return 1;
    }
  }
  if (get("/stats", &body) != 200) {
    close(fd);
    return 1;
  }
  close(fd);
  std::int64_t after = 0;
  if (!ScrapeInt(body, "allocs_total", &after)) return 1;
  const std::int64_t delta = after - before;
  const double per_request = static_cast<double>(delta) / window;
  std::printf("allocs_per_request %lld allocs / %d requests = %.4f\n",
              static_cast<long long>(delta), window, per_request);
  report->Add("allocs_per_request",
              {{"allocs", static_cast<double>(delta)},
               {"requests", static_cast<double>(window)},
               {"allocs_per_request", per_request}});
  if (delta != 0) {
    std::fprintf(stderr,
                 "allocs_per_request: expected 0, measured %lld over %d "
                 "warmed GETs\n",
                 static_cast<long long>(delta), window);
    return 1;
  }
  return 0;
}

/// Client-only mode for the CI serve-under-load smoke: inline-read GET
/// load against an already-running server; any 5xx is a failure (inline
/// routes never shed, so overload 503s cannot legitimately appear here).
/// Follows up with the allocs_per_request == 0 assertion when the server
/// was built with the counting allocator.
int DriveExternal(std::uint16_t port, BenchReport* report,
                  const std::string& json_path) {
  const std::vector<std::string> paths = {
      "/healthz", "/hotlist?k=10&beta=3", "/frequency?value=17",
      "/distinct", "/stats"};
  const int threads = 2;
  const int per_thread = SmokeMode() ? 250 : 5000;
  const LoadResult load = DriveLoad(port, paths, threads, per_thread);
  const LatencySummary summary = Summarize(load.samples_ns, load.elapsed_s);
  std::printf(
      "serve_under_load %10.0f rps  p50 %7.0f ns  p999 %8.0f ns  "
      "5xx %lld  errors %lld\n",
      summary.throughput_rps, summary.p50_ns, summary.p999_ns,
      static_cast<long long>(load.status_5xx),
      static_cast<long long>(load.errors));
  std::vector<std::pair<std::string, double>> metrics = {
      {"status_5xx", static_cast<double>(load.status_5xx)},
      {"errors", static_cast<double>(load.errors)},
  };
  AppendSummaryMetrics("", summary, &metrics);
  report->Add("serve_under_load", std::move(metrics));
  int rc = 0;
  if (load.status_5xx > 0 || load.errors > 0) {
    std::fprintf(stderr,
                 "serve_under_load: %lld 5xx, %lld errors on inline reads\n",
                 static_cast<long long>(load.status_5xx),
                 static_cast<long long>(load.errors));
    rc = 1;
  }
  if (AllocsPerRequestCheck(port, report) != 0) rc = 1;
  report->WriteJson(json_path);
  return rc;
}

}  // namespace
}  // namespace bench
}  // namespace aqua

int main(int argc, char** argv) {
  using namespace aqua::bench;  // NOLINT(build/namespaces)
  ApplySmoke(argc, argv);
  const std::string json_path = BenchReport::JsonPathFromArgs(argc, argv);
  BenchReport report("http_throughput");

  std::uint16_t external_port = 0;
  bool backend_restricted = false;
  aqua::IoBackendKind only_backend = aqua::IoBackendKind::kEpoll;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0) {
      external_port = static_cast<std::uint16_t>(std::atoi(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--io-backend") == 0) {
      if (!aqua::ParseIoBackendKind(argv[i + 1], &only_backend)) {
        std::fprintf(stderr, "unknown --io-backend '%s'\n", argv[i + 1]);
        return 1;
      }
      backend_restricted = true;
    }
  }
  if (external_port != 0) {
    return DriveExternal(external_port, &report, json_path);
  }

  PrintHeader(
      "HTTP serving throughput (multi-reactor + response cache, "
      "epoll vs io_uring)");
  CacheHitMicro(&report);

  std::vector<aqua::IoBackendKind> backends;
  if (backend_restricted) {
    backends.push_back(only_backend);
  } else {
    backends.push_back(aqua::IoBackendKind::kEpoll);
    backends.push_back(aqua::IoBackendKind::kIoUring);
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const int wide = static_cast<int>(hw == 0 ? 2 : (hw < 8 ? hw : 8));
  for (const aqua::IoBackendKind backend : backends) {
    if (backend == aqua::IoBackendKind::kIoUring) {
      std::string reason;
      if (!aqua::IoUringAvailable(&reason)) {
        std::printf("io_uring unavailable (%s), skipping io_uring leg\n",
                    reason.c_str());
        continue;
      }
    }
    const std::string suffix =
        "_" + std::string(aqua::IoBackendKindName(backend));
    ServerScenario("uncached_r1" + suffix, backend, /*reactors=*/1,
                   /*threads=*/2, /*settled_epoch=*/false, &report);
    ServerScenario("cached_r1" + suffix, backend, /*reactors=*/1,
                   /*threads=*/2, /*settled_epoch=*/true, &report);
    // Stable scenario name across machines; the reactor count rides along
    // as a metric (reactors = min(8, hardware_concurrency)).
    ServerScenario("cached_wide" + suffix, backend, wide, /*threads=*/wide,
                   /*settled_epoch=*/true, &report);
  }

  if (!report.WriteJson(json_path)) return 1;
  return 0;
}
