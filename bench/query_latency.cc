// Query latency: the direct per-query answer paths versus the epoch-frozen
// view (src/view/) built once per snapshot.  The direct paths pay per
// query what the view pays once at freeze: hot lists re-sort every entry,
// count_where and quantile expand the concise sample into a point sample
// and scan/sort it.  The view answers the same queries — bit-identically
// (tests/view/view_equivalence_property_test.cc) — in O(k) or O(log m).
//
// Sweeps the synopsis footprint m over {1K, 10K, 100K} words for four
// query kinds.  Also times SnapshotCache::Get() on the pure hit path with
// an EpochState payload, i.e. the cost a cached query pays before any
// answer computation (acceptance: p50 no worse than the pre-view cache).
//
// Usage: query_latency [--json <path>] [--smoke]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "concurrency/snapshot_cache.h"
#include "core/concise_sample.h"
#include "estimate/aggregates.h"
#include "estimate/frequency_estimator.h"
#include "estimate/quantiles.h"
#include "hotlist/concise_hot_list.h"
#include "registry/typed_handle.h"
#include "sample/capabilities.h"
#include "view/frozen_view.h"
#include "view/view_builders.h"
#include "workload/generators.h"

namespace aqua {
namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct LatencySummary {
  double p50_ns = 0.0;
  double p99_ns = 0.0;
};

LatencySummary Summarize(std::vector<std::int64_t>& samples) {
  std::sort(samples.begin(), samples.end());
  LatencySummary s;
  s.p50_ns = static_cast<double>(samples[samples.size() / 2]);
  s.p99_ns = static_cast<double>(samples[samples.size() * 99 / 100]);
  return s;
}

/// Times `fn()` once per query and returns the latency percentiles.
template <typename Fn>
LatencySummary TimeQueries(int queries, const Fn& fn) {
  std::vector<std::int64_t> ns;
  ns.reserve(static_cast<std::size_t>(queries));
  for (int i = 0; i < queries; ++i) {
    const std::int64_t start = NowNs();
    fn(i);
    ns.push_back(NowNs() - start);
  }
  return Summarize(ns);
}

struct KindResult {
  const char* kind;
  LatencySummary direct;
  LatencySummary view;
};

int Main(int argc, char** argv) {
  const bool smoke = bench::ApplySmoke(argc, argv);
  const std::string json_path =
      bench::BenchReport::JsonPathFromArgs(argc, argv);
  bench::BenchReport report("query_latency");
  const int queries = smoke ? 30 : 300;

  bench::PrintHeader(
      "Query latency: direct per-query path vs epoch-frozen view "
      "(concise sample, zipf 1.0)");
  std::printf("%-8s %-12s %14s %14s %14s %14s %10s\n", "m", "kind",
              "direct p50 ns", "direct p99 ns", "view p50 ns", "view p99 ns",
              "p50 ratio");

  for (std::int64_t m : {std::int64_t{1000}, std::int64_t{10000},
                         std::int64_t{100000}}) {
    m = bench::SmokeCap(m);
    const std::int64_t n = 10 * m;
    const std::int64_t domain = 5 * m;
    const std::vector<Value> stream =
        ZipfValues(n, domain, 1.0, bench::TrialSeed(4100, 0));

    ConciseSampleOptions options;
    options.footprint_bound = m;
    options.seed = bench::kSeed;
    ConciseSample sample(options);
    for (Value v : stream) sample.Insert(v);

    QueryContext ctx;
    ctx.observed_inserts = n;

    // Freeze once — the per-epoch cost the view amortizes over every query
    // in the staleness window.
    const std::int64_t freeze_start = NowNs();
    const FrozenView view = BuildConciseView(sample);
    const std::int64_t freeze_ns = NowNs() - freeze_start;

    HotListQuery hot_query;
    hot_query.k = 10;
    hot_query.beta = bench::kBeta;
    const ValueRange range{domain / 4, domain / 2};

    std::vector<KindResult> kinds;

    KindResult hotlist{"hotlist", {}, {}};
    hotlist.direct = TimeQueries(queries, [&](int) {
      const HotList answer = ConciseHotList(sample).Report(hot_query);
      if (answer.size() > 1u << 20) std::fprintf(stderr, "?\n");
    });
    hotlist.view = TimeQueries(queries, [&](int) {
      const HotList answer = view.HotListAnswer(hot_query);
      if (answer.size() > 1u << 20) std::fprintf(stderr, "?\n");
    });
    kinds.push_back(hotlist);

    KindResult frequency{"frequency", {}, {}};
    frequency.direct = TimeQueries(queries, [&](int i) {
      const Value v = stream[static_cast<std::size_t>(i) % stream.size()];
      const Estimate e = FrequencyEstimator::FromConcise(sample, v);
      if (e.sample_points < 0) std::fprintf(stderr, "?\n");
    });
    frequency.view = TimeQueries(queries, [&](int i) {
      const Value v = stream[static_cast<std::size_t>(i) % stream.size()];
      const Estimate e = view.FrequencyAnswer(v);
      if (e.sample_points < 0) std::fprintf(stderr, "?\n");
    });
    kinds.push_back(frequency);

    KindResult count_where{"count_where", {}, {}};
    count_where.direct = TimeQueries(queries, [&](int) {
      SampleEstimator estimator(sample.ToPointSample(),
                                ctx.observed_inserts);
      const Estimate e = estimator.CountWhere(range.AsPredicate(), 0.95);
      if (e.sample_points < 0) std::fprintf(stderr, "?\n");
    });
    count_where.view = TimeQueries(queries, [&](int) {
      const Estimate e = view.CountWhereRangeAnswer(range, 0.95, ctx);
      if (e.sample_points < 0) std::fprintf(stderr, "?\n");
    });
    kinds.push_back(count_where);

    KindResult quantile{"quantile", {}, {}};
    quantile.direct = TimeQueries(queries, [&](int) {
      const Estimate e = QuantileEstimator(sample.ToPointSample())
                             .QuantileWithBounds(0.5, 0.95);
      if (e.sample_points < 0) std::fprintf(stderr, "?\n");
    });
    quantile.view = TimeQueries(queries, [&](int) {
      const Estimate e = view.QuantileAnswer(0.5, 0.95);
      if (e.sample_points < 0) std::fprintf(stderr, "?\n");
    });
    kinds.push_back(quantile);

    for (const KindResult& k : kinds) {
      const double ratio =
          k.view.p50_ns > 0.0 ? k.direct.p50_ns / k.view.p50_ns : 0.0;
      std::printf("%-8lld %-12s %14.0f %14.0f %14.0f %14.0f %9.1fx\n",
                  static_cast<long long>(m), k.kind, k.direct.p50_ns,
                  k.direct.p99_ns, k.view.p50_ns, k.view.p99_ns, ratio);
      report.Add("m" + std::to_string(m) + "/" + k.kind,
                 {{"direct_p50_ns", k.direct.p50_ns},
                  {"direct_p99_ns", k.direct.p99_ns},
                  {"view_p50_ns", k.view.p50_ns},
                  {"view_p99_ns", k.view.p99_ns},
                  {"speedup_p50", ratio}});
    }
    std::printf("%-8lld %-12s view build (freeze): %lld ns, %lld entries, "
                "sample size %lld\n",
                static_cast<long long>(m), "-",
                static_cast<long long>(freeze_ns),
                static_cast<long long>(view.entry_count()),
                static_cast<long long>(view.sample_size()));
    report.Add("m" + std::to_string(m) + "/freeze",
               {{"build_ns", static_cast<double>(freeze_ns)},
                {"entries", static_cast<double>(view.entry_count())}});

    // Cached-Get() hit path with the {snapshot, view} epoch payload: the
    // fixed cost every cached query pays before its answer computation.
    SnapshotCache<EpochState<ConciseSample>> cache(
        [&sample]() -> Result<EpochState<ConciseSample>> {
          EpochState<ConciseSample> state{sample, std::nullopt, 0};
          state.view.emplace(BuildConciseView(state.snapshot));
          return state;
        },
        {.max_stale_ops = 8192,
         .max_stale_interval = std::chrono::hours(1)});
    (void)cache.Get();  // warm the first epoch outside the timed loop
    const LatencySummary get = TimeQueries(queries, [&](int) {
      const auto state = cache.Get().ValueOrDie();
      if (state->view_build_ns < 0) std::fprintf(stderr, "?\n");
    });
    std::printf("%-8lld %-12s cached Get() p50 %0.f ns, p99 %0.f ns\n",
                static_cast<long long>(m), "-", get.p50_ns, get.p99_ns);
    report.Add("m" + std::to_string(m) + "/cached_get",
               {{"p50_ns", get.p50_ns}, {"p99_ns", get.p99_ns}});
  }

  std::printf(
      "\n(direct re-sorts entries / expands the point sample per query; "
      "the view pays that once per epoch at freeze)\n");
  if (!report.WriteJson(json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace aqua

int main(int argc, char** argv) { return aqua::Main(argc, argv); }
