// Validates Theorem 4 of Gibbons & Matias (SIGMOD 1998): the expected
// number of distinct values in a with-replacement sample of size m —
// equivalently, the expected footprint saving ("gain") of the concise
// representation — expressed through the frequency moments F_k, compared
// against simulation across the zipf sweep.

#include <iostream>

#include "bench/bench_util.h"
#include "container/flat_hash_map.h"
#include "estimate/distinct_values.h"
#include "estimate/frequency_moments.h"
#include "metrics/table_printer.h"
#include "random/random.h"

int main(int argc, char** argv) {
  using namespace aqua;
  using namespace aqua::bench;
  ApplySmoke(argc, argv);

  constexpr std::int64_t kN = 100000;
  constexpr std::int64_t kD = 2000;
  constexpr std::int64_t kM = 500;

  PrintHeader(
      "Theorem 4: E[#distinct values] in a sample of size m = 500 from "
      "100000 values in [1,2000]");
  TablePrinter table({"zipf", "formula (stable)", "formula (moments, m=30)",
                      "simulated", "expected gain m - E[distinct]"});
  for (int step = 0; step <= 12; ++step) {
    const double alpha = 0.25 * step;
    const std::vector<Value> data =
        ZipfValues(SmokeCap(kN), kD, alpha, TrialSeed(8000 + step, 0));
    const FrequencyMoments fm = FrequencyMoments::FromData(data);
    const ExpectedDistinctValues edv(fm);

    Random rng(TrialSeed(8100 + step, 0));
    double simulated = 0.0;
    constexpr int kT = 60;
    for (int t = 0; t < kT; ++t) {
      FlatHashMap<Value, Count> seen;
      for (std::int64_t i = 0; i < kM; ++i) {
        seen.TryInsert(
            data[static_cast<std::size_t>(rng.UniformU64(data.size()))], 1);
      }
      simulated += static_cast<double>(seen.size());
    }
    simulated /= kT;

    table.AddRow({TablePrinter::Num(alpha, 2),
                  TablePrinter::Num(edv.Stable(kM), 1),
                  // The alternating-sum form is numerically usable only for
                  // small m; show it at m=30 next to the stable form there.
                  TablePrinter::Num(edv.MomentForm(30), 2) + " vs " +
                      TablePrinter::Num(edv.Stable(30), 2),
                  TablePrinter::Num(simulated, 1),
                  TablePrinter::Num(edv.ExpectedGain(kM), 1)});
  }
  table.Print(std::cout);
  std::cout << "\nThe gain column is the footprint the concise "
               "representation saves per m sample points; it grows with "
               "skew, matching Figure 3.\n";
  return 0;
}
