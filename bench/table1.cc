// Reproduces Table 1 of Gibbons & Matias (SIGMOD 1998): coin flips and
// lookups per insert for the online concise-sampling algorithm, for the
// Figure 3 scenarios:
//   Fig. 3(a):     footprint 100,  D = 5000
//   Figs. 3(b)(d): footprint 1000, D = 5000
//   Fig. 3(c):     footprint 1000, D = 50000
// "These are abstract measures of the computation costs: the number of
// instructions executed by the algorithm is directly proportional to the
// number of coin flips and lookups."

#include <iostream>

#include "bench/bench_util.h"
#include "metrics/table_printer.h"

namespace aqua {
namespace bench {
namespace {

struct Scenario {
  const char* name;
  Words footprint;
  std::int64_t domain;
};

}  // namespace
}  // namespace bench
}  // namespace aqua

int main(int argc, char** argv) {
  using namespace aqua;
  using namespace aqua::bench;
  ApplySmoke(argc, argv);

  const Scenario scenarios[] = {
      {"Fig. 3(a)", 100, 5000},
      {"Figs. 3(b)(d)", 1000, 5000},
      {"Fig. 3(c)", 1000, 50000},
  };

  PrintHeader("Table 1: coin flips and lookups per insert (concise online)");
  TablePrinter table({"zipf", "3(a) flips", "3(a) lookups", "3(b)(d) flips",
                      "3(b)(d) lookups", "3(c) flips", "3(c) lookups"});
  for (int step = 0; step <= 12; ++step) {
    const double alpha = 0.25 * step;
    std::vector<std::string> row = {TablePrinter::Num(alpha, 2)};
    for (int s = 0; s < 3; ++s) {
      double flips = 0.0, lookups = 0.0;
      for (int trial = 0; trial < kTrials; ++trial) {
        const std::uint64_t seed = TrialSeed(500 + 20 * s + step, trial);
        ConciseSample concise(ConciseSampleOptions{
            .footprint_bound = scenarios[s].footprint, .seed = seed + 11});
        for (Value v :
             ZipfValues(kInserts, scenarios[s].domain, alpha, seed)) {
          concise.Insert(v);
        }
        flips += concise.Cost().FlipsPerInsert(kInserts);
        lookups += concise.Cost().LookupsPerInsert(kInserts);
      }
      row.push_back(TablePrinter::Num(flips / kTrials, 3));
      row.push_back(TablePrinter::Num(lookups / kTrials, 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference shapes: overheads grow with skew up to the "
               "point where all values\nfit in the footprint, after which "
               "flips drop to 0 and lookups to 1 per insert;\nan order of "
               "magnitude smaller footprint gives roughly an order of "
               "magnitude lower overheads.\n";
  return 0;
}
