// Validates the O(1) amortized update-time claim (§3.1): "even taking into
// account the time for each threshold raise, we have an O(1) amortized
// expected update time per insert, regardless of the data distribution."
// Sweeps the stream length over three orders of magnitude and reports
// per-insert coin flips, lookups and wall-clock time — all of which must
// stay bounded (flips/lookups actually *fall* as the threshold grows).

#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "metrics/table_printer.h"

int main(int argc, char** argv) {
  using namespace aqua;
  using namespace aqua::bench;
  ApplySmoke(argc, argv);

  PrintHeader(
      "Amortized update cost vs stream length (concise + counting, "
      "domain [1,5000], zipf 1.0, footprint 1000)");
  TablePrinter table({"n", "concise flips/ins", "concise ns/ins",
                      "counting flips/ins", "counting ns/ins",
                      "concise raises", "counting raises"});

  for (std::int64_t n : {std::int64_t{10000}, std::int64_t{100000},
                         std::int64_t{1000000}, std::int64_t{5000000}}) {
    n = SmokeCap(n);
    const std::vector<Value> data =
        ZipfValues(n, 5000, 1.0, TrialSeed(9900, 0));

    ConciseSample concise(
        ConciseSampleOptions{.footprint_bound = 1000, .seed = 1});
    auto t0 = std::chrono::steady_clock::now();
    for (Value v : data) concise.Insert(v);
    auto t1 = std::chrono::steady_clock::now();
    const double concise_ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(n);

    CountingSample counting(
        CountingSampleOptions{.footprint_bound = 1000, .seed = 2});
    t0 = std::chrono::steady_clock::now();
    for (Value v : data) counting.Insert(v);
    t1 = std::chrono::steady_clock::now();
    const double counting_ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        static_cast<double>(n);

    table.AddRow({TablePrinter::Num(n),
                  TablePrinter::Num(concise.Cost().FlipsPerInsert(n), 4),
                  TablePrinter::Num(concise_ns, 1),
                  TablePrinter::Num(counting.Cost().FlipsPerInsert(n), 4),
                  TablePrinter::Num(counting_ns, 1),
                  TablePrinter::Num(concise.Cost().threshold_raises),
                  TablePrinter::Num(counting.Cost().threshold_raises)});
  }
  table.Print(std::cout);
  std::cout << "\nns/insert stays flat (O(1) amortized) while flips/insert "
               "falls as 1/tau; raises grow only logarithmically in n.\n";
  return 0;
}
