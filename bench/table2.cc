// Reproduces Table 2 of Gibbons & Matias (SIGMOD 1998): measured update
// overheads and reporting data for the hot-list experiments of Figures 4-6
// — coin flips and lookups per insert, threshold raises, final sample-size,
// final threshold, and the number of values reported by each algorithm.

#include <iostream>

#include "bench/bench_util.h"
#include "hotlist/concise_hot_list.h"
#include "hotlist/counting_hot_list.h"
#include "hotlist/traditional_hot_list.h"
#include "metrics/table_printer.h"

namespace {

struct Scenario {
  const char* figure;
  std::int64_t domain;
  double alpha;
  aqua::Words footprint;
  int seed_base;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace aqua;
  using namespace aqua::bench;
  ApplySmoke(argc, argv);

  const Scenario scenarios[] = {
      {"Figure 4", 500, 1.5, 100, 4000},
      {"Figure 5", 5000, 1.0, 1000, 5000},
      {"Figure 6", 50000, 1.25, 1000, 6000},
  };

  PrintHeader("Table 2: measured data for the hot-list experiments");
  for (const Scenario& sc : scenarios) {
    HotListExperiment e(kInserts, sc.domain, sc.alpha, sc.footprint,
                        TrialSeed(sc.seed_base, 0));
    const HotListQuery query{.k = 0, .beta = kBeta};
    const std::size_t reported_concise =
        ConciseHotList(e.concise).Report(query).size();
    const std::size_t reported_counting =
        CountingHotList(e.counting).Report(query).size();
    const std::size_t reported_traditional =
        TraditionalHotList(e.traditional).Report(query).size();

    std::cout << "\n" << sc.figure << " (500000 values in [1," << sc.domain
              << "], zipf " << sc.alpha << ", footprint " << sc.footprint
              << ")\n";
    TablePrinter table({"algorithm", "flips", "lookups", "raises",
                        "sample-size", "threshold", "reported"});
    table.AddRow({"concise",
                  TablePrinter::Num(
                      e.concise.Cost().FlipsPerInsert(kInserts), 3),
                  TablePrinter::Num(
                      e.concise.Cost().LookupsPerInsert(kInserts), 3),
                  TablePrinter::Num(e.concise.Cost().threshold_raises),
                  TablePrinter::Num(e.concise.SampleSize()),
                  TablePrinter::Num(e.concise.Threshold(), 0),
                  TablePrinter::Num(
                      static_cast<std::int64_t>(reported_concise))});
    table.AddRow(
        {"counting",
         TablePrinter::Num(e.counting.Cost().FlipsPerInsert(kInserts), 3),
         TablePrinter::Num(e.counting.Cost().LookupsPerInsert(kInserts), 3),
         TablePrinter::Num(e.counting.Cost().threshold_raises), "n/a",
         TablePrinter::Num(e.counting.Threshold(), 0),
         TablePrinter::Num(static_cast<std::int64_t>(reported_counting))});
    table.AddRow(
        {"traditional",
         TablePrinter::Num(e.traditional.Cost().FlipsPerInsert(kInserts), 3),
         TablePrinter::Num(
             e.traditional.Cost().LookupsPerInsert(kInserts), 3),
         "n/a", TablePrinter::Num(e.traditional.SampleSize()), "n/a",
         TablePrinter::Num(
             static_cast<std::int64_t>(reported_traditional))});
    table.Print(std::cout);
  }
  std::cout
      << "\nPaper reference (same layout): Fig 4 concise "
         "flips/lookups/raises/size/thr/rep = .014/.008/56/388/1283/18, "
         "counting = .006/1.000/60/n-a/1881/20, traditional = "
         ".003/.000/na/100/na/9;\nFig 5 concise .040/.024/40/1813/275/95, "
         "counting .053/1.000/47/na/541/92, traditional "
         ".025/.000/na/1000/na/52;\nFig 6 concise .066/.040/33/3498/140/108, "
         "counting .046/1.000/38/na/227/122, traditional "
         ".025/.000/na/1000/na/38.\n";
  return 0;
}
