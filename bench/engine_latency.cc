// The paper's headline motivation (§1): "provide an estimated response in
// orders of magnitude less time than the time to compute an exact answer,
// by avoiding or minimizing the number of accesses to the base data."
// This bench measures end-to-end query latency of the approximate answer
// engine (Figure 2) against computing the exact answer from the base data,
// for hot-list and count queries, as the warehouse grows.

#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "metrics/hotlist_accuracy.h"
#include "metrics/table_printer.h"
#include "warehouse/engine.h"

int main(int argc, char** argv) {
  using namespace aqua;
  using namespace aqua::bench;
  ApplySmoke(argc, argv);

  PrintHeader(
      "Approximate vs exact answer latency (hot list k=10; count "
      "predicate), footprint 1000, zipf 1.1");
  TablePrinter table({"warehouse n", "approx hot-list us", "exact scan us",
                      "speedup", "hot-list recall@10", "approx count err %"});

  for (std::int64_t n : {std::int64_t{100000}, std::int64_t{1000000},
                         std::int64_t{4000000}}) {
    n = SmokeCap(n);
    const std::vector<Value> data =
        ZipfValues(n, 50000, 1.1, TrialSeed(9980, 0));
    EngineOptions options;
    options.footprint_bound = 1000;
    options.seed = 1;
    ApproximateAnswerEngine engine(options);
    for (Value v : data) (void)engine.Observe(StreamOp::Insert(v));

    // Approximate hot list (no base-data access).
    constexpr int kQueries = 50;
    auto t0 = std::chrono::steady_clock::now();
    QueryResponse<HotList> approx;
    for (int q = 0; q < kQueries; ++q) {
      approx = engine.HotListAnswer({.k = 10, .beta = 3});
    }
    auto t1 = std::chrono::steady_clock::now();
    const double approx_us =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count()) /
        kQueries;

    // Exact answer: one full pass over the base data (the warehouse side
    // of Figure 1) building the frequency table and selecting the top.
    t0 = std::chrono::steady_clock::now();
    Relation exact_scan;
    for (Value v : data) exact_scan.Insert(v);
    const std::vector<ValueCount> exact_top =
        ExactTopK(exact_scan.ExactCounts(), 10);
    t1 = std::chrono::steady_clock::now();
    const double exact_us = static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());

    const HotListAccuracy acc =
        EvaluateHotList(approx.answer, exact_scan.ExactCounts(), 10);

    // Approximate COUNT(v <= 100) error.
    const auto count_answer =
        engine.CountWhereAnswer([](Value v) { return v <= 100; });
    std::int64_t truth = 0;
    for (Value v : data) truth += (v <= 100);
    const double count_err =
        100.0 * std::abs(count_answer.answer.value -
                         static_cast<double>(truth)) /
        static_cast<double>(truth);

    table.AddRow({TablePrinter::Num(n), TablePrinter::Num(approx_us, 1),
                  TablePrinter::Num(exact_us, 0),
                  TablePrinter::Num(exact_us / approx_us, 0),
                  TablePrinter::Num(acc.Recall(10), 2),
                  TablePrinter::Num(count_err, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nThe approximate path is independent of n (it reads only "
               "the synopsis); the exact path scans the base data — an "
               "in-memory scan here, so disk-resident warehouses would "
               "widen the gap by further orders of magnitude.\n";
  return 0;
}
