// Persistence characteristics (footnotes 2-3): snapshot sizes under the
// variable-length count encoding vs the in-memory word footprint, snapshot
// encode/decode throughput, and op-log bytes per operation.

#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "metrics/table_printer.h"
#include "persist/op_log.h"
#include "persist/snapshot.h"

int main(int argc, char** argv) {
  using namespace aqua;
  using namespace aqua::bench;
  ApplySmoke(argc, argv);

  PrintHeader(
      "Snapshot size & codec throughput (concise samples, 500000 inserts, "
      "domain [1,5000])");
  TablePrinter table({"zipf", "footprint (words)", "snapshot (bytes)",
                      "bytes/word", "encode us", "decode us"});
  for (double alpha : {0.0, 1.0, 2.0}) {
    ConciseSample s(ConciseSampleOptions{
        .footprint_bound = 1000, .seed = TrialSeed(9950, 0)});
    for (Value v : ZipfValues(kInserts, 5000, alpha,
                              TrialSeed(9960 + static_cast<int>(alpha), 0))) {
      s.Insert(v);
    }
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<std::uint8_t> bytes = EncodeSnapshot(s);
    const auto t1 = std::chrono::steady_clock::now();
    auto restored = DecodeConciseSnapshot(bytes, 7);
    const auto t2 = std::chrono::steady_clock::now();
    if (!restored.ok()) {
      std::cerr << "decode failed: " << restored.status() << "\n";
      return 1;
    }
    table.AddRow(
        {TablePrinter::Num(alpha, 1), TablePrinter::Num(s.Footprint()),
         TablePrinter::Num(static_cast<std::int64_t>(bytes.size())),
         TablePrinter::Num(static_cast<double>(bytes.size()) /
                               static_cast<double>(s.Footprint()),
                           2),
         TablePrinter::Num(
             std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                 .count()),
         TablePrinter::Num(
             std::chrono::duration_cast<std::chrono::microseconds>(t2 - t1)
                 .count())});
  }
  table.Print(std::cout);
  std::cout << "(a word is 8 bytes in memory; footnote-3 varint coding "
               "keeps snapshots near 1-2 bytes per word)\n";

  PrintHeader("Op-log append/replay throughput (200000 mixed ops)");
  const std::string path = "/tmp/aqua_bench_oplog.bin";
  const UpdateStream stream =
      MixedStream(200000, 5000, 1.0, 0.2, 10000, TrialSeed(9970, 0));
  const auto t0 = std::chrono::steady_clock::now();
  {
    OpLogWriter writer(path);
    for (const StreamOp& op : stream) writer.Append(op);
    if (!writer.Flush().ok()) {
      std::cerr << "op log write failed\n";
      return 1;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  auto read = ReadOpLog(path);
  const auto t2 = std::chrono::steady_clock::now();
  if (!read.ok() || read->size() != stream.size()) {
    std::cerr << "op log read failed\n";
    return 1;
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto log_bytes = static_cast<double>(in.tellg());
  in.close();
  std::remove(path.c_str());
  const auto us = [](auto d) {
    return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
  };
  std::cout << "append " << us(t1 - t0) << " us, replay-read " << us(t2 - t1)
            << " us, " << log_bytes / static_cast<double>(stream.size())
            << " bytes/op\n";
  return 0;
}
