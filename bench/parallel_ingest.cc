// Thread-scaling ingestion benchmark for the sharded parallel ingestion
// subsystem: N producer threads feed a ShardedSynopsis<ConciseSample> with
// N independently-locked shards through per-producer ShardedBatchInserters,
// versus the single-mutex SharedSynopsis baseline (per-element and batched).
// Reports elements/sec over zipf(1.0) and uniform streams.
//
// Flags:
//   --elements N     stream length (default 10'000'000)
//   --max-threads N  highest thread/shard count (default hardware_concurrency)
//   --batch N        producer buffer size (default 4096)
//   --footprint N    per-shard footprint bound in words (default 1000)
//   --json PATH      machine-readable output (BENCH_parallel_ingest.json)

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "concurrency/shared_synopsis.h"
#include "concurrency/sharded_synopsis.h"
#include "core/concise_sample.h"
#include "metrics/table_printer.h"
#include "workload/generators.h"

namespace aqua {
namespace bench {
namespace {

std::int64_t FlagValue(int argc, char** argv, const char* name,
                       std::int64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return fallback;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ConciseSampleOptions ShardOptions(Words footprint, std::uint64_t seed) {
  return ConciseSampleOptions{.footprint_bound = footprint, .seed = seed};
}

/// Splits [0, n) into `parts` near-equal contiguous chunks.
std::vector<std::pair<std::size_t, std::size_t>> Chunks(std::size_t n,
                                                        std::size_t parts) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const std::size_t base = n / parts;
  std::size_t begin = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t end = p + 1 == parts ? n : begin + base;
    out.emplace_back(begin, end);
    begin = end;
  }
  return out;
}

/// Single-mutex baseline, one virtual call per element (the pre-sharding
/// ingestion path).
double RunSharedPerElement(const std::vector<Value>& data, Words footprint,
                           std::size_t threads) {
  SharedSynopsis<ConciseSample> shared(
      ConciseSample(ShardOptions(footprint, 0xA11CE)));
  const auto chunks = Chunks(data.size(), threads);
  const double start = NowSeconds();
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = chunks[t].first; i < chunks[t].second; ++i) {
        shared.Insert(data[i]);
      }
    });
  }
  for (auto& w : workers) w.join();
  return NowSeconds() - start;
}

/// Single-mutex, batched: producers buffer locally and drain whole batches
/// through the synopsis-level InsertBatch under one lock acquisition.
double RunSharedBatched(const std::vector<Value>& data, Words footprint,
                        std::size_t threads, std::size_t batch) {
  SharedSynopsis<ConciseSample> shared(
      ConciseSample(ShardOptions(footprint, 0xB22DF)));
  const auto chunks = Chunks(data.size(), threads);
  const double start = NowSeconds();
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      BatchInserter<ConciseSample> inserter(&shared, batch);
      for (std::size_t i = chunks[t].first; i < chunks[t].second; ++i) {
        inserter.Add(data[i]);
      }
    });
  }
  for (auto& w : workers) w.join();
  return NowSeconds() - start;
}

/// Sharded: T threads, T independently-locked shards, per-producer batch
/// buffers; a final Snapshot() merges the shards (timed separately).
struct ShardedRun {
  double ingest_seconds = 0.0;
  double snapshot_seconds = 0.0;
};

ShardedRun RunSharded(const std::vector<Value>& data, Words footprint,
                      std::size_t shards, std::size_t threads,
                      std::size_t batch) {
  ShardedSynopsis<ConciseSample> sharded(shards, [&](std::size_t i) {
    return ConciseSample(
        ShardOptions(footprint, 0xC33E0 + 977ULL * (i + 1)));
  });
  const auto chunks = Chunks(data.size(), threads);
  ShardedRun run;
  const double start = NowSeconds();
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ShardedBatchInserter<ConciseSample> inserter(&sharded, batch);
      for (std::size_t i = chunks[t].first; i < chunks[t].second; ++i) {
        inserter.Add(data[i]);
      }
    });
  }
  for (auto& w : workers) w.join();
  run.ingest_seconds = NowSeconds() - start;

  const double snap_start = NowSeconds();
  auto snapshot = sharded.Snapshot();
  run.snapshot_seconds = NowSeconds() - snap_start;
  if (!snapshot.ok()) {
    std::cerr << "snapshot merge failed: " << snapshot.status().ToString()
              << "\n";
    std::exit(1);
  }
  return run;
}

}  // namespace
}  // namespace bench
}  // namespace aqua

int main(int argc, char** argv) {
  using namespace aqua;
  using namespace aqua::bench;

  const bool smoke = ApplySmoke(argc, argv);
  const std::int64_t elements = std::max<std::int64_t>(
      1,
      FlagValue(argc, argv, "--elements", smoke ? 20000 : 10000000));
  const auto hw = static_cast<std::int64_t>(
      std::max(1u, std::thread::hardware_concurrency()));
  const std::int64_t max_threads =
      std::max<std::int64_t>(1, FlagValue(argc, argv, "--max-threads", hw));
  const auto batch = static_cast<std::size_t>(
      std::max<std::int64_t>(1, FlagValue(argc, argv, "--batch", 4096)));
  const auto footprint =
      static_cast<Words>(FlagValue(argc, argv, "--footprint", 1000));
  const std::string json_path = BenchReport::JsonPathFromArgs(argc, argv);

  BenchReport report("parallel_ingest");
  PrintHeader("parallel ingestion thread scaling (elements/sec)");
  std::cout << "elements=" << elements << " batch=" << batch
            << " footprint=" << footprint << " hw_concurrency=" << hw
            << "\n";

  struct Dist {
    const char* name;
    std::vector<Value> data;
  };
  std::vector<Dist> dists;
  dists.push_back({"zipf1.0", ZipfValues(elements, 100000, 1.0, 0xD157)});
  dists.push_back({"uniform", UniformValues(elements, 100000, 0xD158)});

  TablePrinter table(
      {"dist", "config", "shards", "producers", "Melem/s", "speedup"});
  const auto n = static_cast<double>(elements);

  for (const Dist& dist : dists) {
    double base_rate = 0.0;
    // Baselines: the single-mutex wrapper, per-element and batched.
    {
      const double secs = RunSharedPerElement(dist.data, footprint, 1);
      base_rate = n / secs;
      table.AddRow({dist.name, "shared/per-element", "1", "1",
                    TablePrinter::Num(base_rate / 1e6, 2), "1.00"});
      report.Add(std::string(dist.name) + "/shared_per_element/s1_p1",
                 {{"elements_per_sec", base_rate},
                  {"shards", 1.0},
                  {"producers", 1.0}});
    }
    {
      const double secs = RunSharedBatched(dist.data, footprint, 1, batch);
      const double rate = n / secs;
      table.AddRow({dist.name, "shared/batched", "1", "1",
                    TablePrinter::Num(rate / 1e6, 2),
                    TablePrinter::Num(rate / base_rate, 2)});
      report.Add(std::string(dist.name) + "/shared_batched/s1_p1",
                 {{"elements_per_sec", rate},
                  {"shards", 1.0},
                  {"producers", 1.0}});
    }
    // Sharded scaling: shard counts 1, 2, 4, ... up to max_threads (8 is
    // always included so the 8-shard reference number exists on small
    // hosts).  Producer threads are capped at the core count — running
    // more producers than cores only measures context-switch overhead,
    // while extra shards beyond the producer count still cut lock
    // contention.
    std::vector<std::int64_t> shard_counts;
    for (std::int64_t s = 1; s <= max_threads; s *= 2) {
      shard_counts.push_back(s);
    }
    if (shard_counts.back() < 8) shard_counts.push_back(8);
    double sharded1_rate = 0.0;
    for (std::int64_t s : shard_counts) {
      const std::int64_t producers = std::min<std::int64_t>(s, hw);
      const ShardedRun run =
          RunSharded(dist.data, footprint, static_cast<std::size_t>(s),
                     static_cast<std::size_t>(producers), batch);
      const double rate = n / run.ingest_seconds;
      if (s == 1) sharded1_rate = rate;
      table.AddRow({dist.name, "sharded/batched", TablePrinter::Num(s),
                    TablePrinter::Num(producers),
                    TablePrinter::Num(rate / 1e6, 2),
                    TablePrinter::Num(rate / base_rate, 2)});
      report.Add(std::string(dist.name) + "/sharded_batched/s" +
                     std::to_string(s) + "_p" + std::to_string(producers),
                 {{"elements_per_sec", rate},
                  {"shards", static_cast<double>(s)},
                  {"producers", static_cast<double>(producers)},
                  {"snapshot_merge_sec", run.snapshot_seconds},
                  {"speedup_vs_shared", rate / base_rate},
                  {"speedup_vs_sharded1",
                   sharded1_rate > 0.0 ? rate / sharded1_rate : 1.0}});
    }
  }
  table.Print(std::cout);
  std::cout << "(speedup column is relative to shared/per-element at 1 "
               "thread; sharded runs also merge a snapshot)\n";
  if (!report.WriteJson(json_path)) return 1;
  return 0;
}
