// Validates Lemma 1 and Theorem 3 of Gibbons & Matias (SIGMOD 1998):
//  - Lemma 1: for a single-valued relation, the concise sample-size is
//    n/(m/2)·(m/2) = n for footprint 2 — an unbounded n/m advantage.
//  - Theorem 3: for the exponential family P(v=i) = α^{-i}(α-1), a concise
//    sample of footprint m has expected sample-size >= α^{m/2}.

#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "core/concise_sample_builder.h"
#include "metrics/table_printer.h"

int main(int argc, char** argv) {
  using namespace aqua;
  using namespace aqua::bench;
  ApplySmoke(argc, argv);

  PrintHeader("Lemma 1: single-valued relation, footprint 100");
  {
    ConciseSample s(ConciseSampleOptions{.footprint_bound = 100, .seed = 1});
    for (std::int64_t i = 0; i < kInserts; ++i) s.Insert(42);
    std::cout << "inserts " << kInserts << " -> footprint " << s.Footprint()
              << ", sample-size " << s.SampleSize()
              << " (gain x" << s.SampleSize() / s.Footprint() << ")\n";
  }

  PrintHeader(
      "Theorem 3: exponential distributions, expected offline sample-size "
      "vs the alpha^(m/2) bound");
  TablePrinter table({"alpha", "footprint m", "bound alpha^(m/2)",
                      "measured E[sample-size]", "measured/bound"});
  for (double alpha : {1.2, 1.5, 2.0}) {
    for (Words m : {8, 12, 16, 20, 24}) {
      const double bound = std::pow(alpha, static_cast<double>(m) / 2.0);
      double mean = 0.0;
      constexpr int kT = 25;
      for (int t = 0; t < kT; ++t) {
        const std::vector<Value> data = ExponentialValues(
            kInserts, alpha, TrialSeed(7000 + m, t));
        mean += static_cast<double>(
            BuildOfflineConciseSample(data, m, TrialSeed(7100 + m, t))
                .sample_size);
      }
      mean /= kT;
      table.AddRow({TablePrinter::Num(alpha, 1), TablePrinter::Num(m),
                    TablePrinter::Num(bound, 1), TablePrinter::Num(mean, 1),
                    TablePrinter::Num(mean / bound, 2)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nTheorem 3 predicts measured/bound >= 1 (up to sampling "
               "noise); the gain is exponential in the footprint.\n";
  return 0;
}
