// Measures the incremental off-path epoch refresh machinery (BENCH_9):
//
//  1. Snapshot re-merge cost, full Snapshot() vs SnapshotDelta(), at a
//     merged sample of ~100K entries across dirty-shard fractions — the
//     headline claim is >=5x cheaper refresh at <=10% dirty shards.
//  2. Frozen-view build cost, full sort vs delta patch, across
//     entry-churn fractions.
//  3. Epoch-boundary query latency under concurrent ingest: inline
//     refresh (the first stale Get() pays the re-merge) vs the
//     background epoch pump (--refresh-mode pump), p50/p99/p999.
//
// Accepts --smoke (CI-sized runs) and --json <path> (BENCH_9.json).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "concurrency/sharded_synopsis.h"
#include "core/concise_sample.h"
#include "server/epoch_pump.h"
#include "server/serving_engine.h"
#include "view/frozen_view.h"
#include "workload/generators.h"

namespace aqua {
namespace bench {
namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double MedianNs(std::vector<std::int64_t> samples) {
  if (samples.empty()) return 0.0;
  const std::size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + mid, samples.end());
  return static_cast<double>(samples[mid]);
}

// ---------------------------------------------------------------------------
// 1. Full re-merge vs dirty-shard delta merge.
// ---------------------------------------------------------------------------

void RunMergeSweep(BenchReport* report) {
  const std::size_t shards = 16;
  // ~2 words per concise entry: this footprint puts the merged sample at
  // roughly 100K entries (smoke: a few thousand).
  const Words per_shard_bound = SmokeMode() ? Words{512} : Words{12500};
  const std::int64_t n = SmokeCap(2000000);
  const std::int64_t domain = 4 * n;

  ShardedSynopsis<ConciseSample> sharded(shards, [&](std::size_t i) {
    return ConciseSample(
        ConciseSampleOptions{.footprint_bound = per_shard_bound,
                             .seed = kSeed + 7919ULL * (i + 1)});
  });
  sharded.InsertBatch(ZipfValues(n, domain, 0.5, kSeed));

  const int rounds = SmokeMode() ? 3 : 15;
  std::mt19937_64 rng(kSeed);
  PrintHeader("snapshot re-merge: full vs dirty-shard delta");
  std::printf("%8s %10s %12s %12s %9s\n", "dirty", "delta", "delta_ns",
              "full_ns", "speedup");

  for (const std::size_t dirty : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}, std::size_t{8}, shards}) {
    // Steady-state protocol: the same `dirty` shards mutate every window,
    // so they never fold into the retained base while the cold shards do.
    const auto touch_hot_set = [&] {
      for (std::size_t i = 0; i < dirty; ++i) {
        sharded.WithShardMutable(i, [&rng](ConciseSample& s) {
          s.Insert(static_cast<Value>(rng() % 1000000));
          return 0;
        });
      }
    };
    ShardedSynopsis<ConciseSample>::DeltaState state;
    ShardedDeltaStats stats;
    (void)sharded.SnapshotDelta(state, &stats);  // window 1: no base yet
    touch_hot_set();
    (void)sharded.SnapshotDelta(state, &stats);  // window 2: cold set folds

    std::vector<std::int64_t> delta_ns;
    std::vector<std::int64_t> full_ns;
    std::int64_t entries = 0;
    double delta_fraction = 1.0;
    for (int r = 0; r < rounds; ++r) {
      touch_hot_set();
      std::int64_t t0 = NowNs();
      auto delta = sharded.SnapshotDelta(state, &stats);
      delta_ns.push_back(NowNs() - t0);
      if (!delta.ok()) {
        std::fprintf(stderr, "SnapshotDelta failed: %s\n",
                     delta.status().message().c_str());
        return;
      }
      delta_fraction = stats.delta_fraction;
      entries = static_cast<std::int64_t>(delta->Entries().size());
      t0 = NowNs();
      auto full = sharded.Snapshot();
      full_ns.push_back(NowNs() - t0);
      if (!full.ok()) return;
    }
    const double d_ns = MedianNs(delta_ns);
    const double f_ns = MedianNs(full_ns);
    const double speedup = d_ns > 0 ? f_ns / d_ns : 0.0;
    std::printf("%5zu/%zu %9.3f%% %12.0f %12.0f %8.2fx\n", dirty, shards,
                100.0 * delta_fraction, d_ns, f_ns, speedup);
    report->Add(
        "merge_dirty_" + std::to_string(dirty) + "_of_" +
            std::to_string(shards),
        {{"m_entries", static_cast<double>(entries)},
         {"delta_fraction", delta_fraction},
         {"delta_ns", d_ns},
         {"full_ns", f_ns},
         {"speedup", speedup}});
  }
}

// ---------------------------------------------------------------------------
// 2. Frozen-view build: full sort vs delta patch.
// ---------------------------------------------------------------------------

FrozenView::Spec ViewSpec(std::vector<ValueCount> entries) {
  FrozenView::Spec spec;
  spec.sample_size = SampleSizeOf(entries);
  spec.entries = std::move(entries);
  spec.observed_inserts = spec.sample_size * 3;
  FrozenView::HotListParams hot;
  hot.scale = 3.0;
  hot.offset = 0.0;
  spec.hot_list = hot;
  spec.count_where = true;
  spec.quantile = true;
  const std::int64_t m = spec.sample_size;
  const std::int64_t n = spec.observed_inserts;
  spec.frequency = [m, n](Count c, double confidence) {
    Estimate e;
    e.value = m > 0 ? static_cast<double>(c) * n / m : 0.0;
    e.confidence = confidence;
    e.sample_points = c;
    return e;
  };
  return spec;
}

void RunViewSweep(BenchReport* report) {
  const std::int64_t m = SmokeCap(100000);
  const int rounds = SmokeMode() ? 3 : 15;
  PrintHeader("frozen-view build: full sort vs delta patch");
  std::printf("%8s %10s %12s %12s %9s\n", "churn", "entries", "patch_ns",
              "full_ns", "speedup");

  for (const double churn : {0.01, 0.05, 0.10, 0.25}) {
    std::mt19937_64 rng(kSeed + static_cast<std::uint64_t>(churn * 1000));
    std::vector<ValueCount> entries;
    entries.reserve(static_cast<std::size_t>(m));
    for (std::int64_t v = 1; v <= m; ++v) {
      entries.push_back({v, 1 + static_cast<Count>(rng() % 40)});
    }
    const auto touch = [&] {
      const auto d = static_cast<std::size_t>(
          std::max<double>(1.0, churn * static_cast<double>(m)));
      for (std::size_t i = 0; i < d; ++i) {
        entries[rng() % entries.size()].count += 1;
      }
      return d;
    };

    FrozenView::PatchScratch scratch;
    ViewPatchStats stats;
    FrozenView previous(ViewSpec(entries), FrozenView(ViewSpec({})), scratch,
                        &stats);
    std::vector<std::int64_t> patch_ns;
    std::vector<std::int64_t> full_ns;
    std::size_t delta_entries = 0;
    for (int r = 0; r < rounds; ++r) {
      delta_entries = touch();
      std::int64_t t0 = NowNs();
      FrozenView full(ViewSpec(entries));
      full_ns.push_back(NowNs() - t0);
      t0 = NowNs();
      FrozenView patched(ViewSpec(entries), previous, scratch, &stats);
      patch_ns.push_back(NowNs() - t0);
      previous = std::move(patched);
    }
    const double p_ns = MedianNs(patch_ns);
    const double f_ns = MedianNs(full_ns);
    const double speedup = p_ns > 0 ? f_ns / p_ns : 0.0;
    std::printf("%7.0f%% %10zu %12.0f %12.0f %8.2fx\n", churn * 100.0,
                delta_entries, p_ns, f_ns, speedup);
    report->Add("view_churn_" + std::to_string(static_cast<int>(
                                    churn * 100)) +
                    "pct",
                {{"entries", static_cast<double>(m)},
                 {"delta_entries", static_cast<double>(delta_entries)},
                 {"patched", stats.full_sort ? 0.0 : 1.0},
                 {"patch_ns", p_ns},
                 {"full_ns", f_ns},
                 {"speedup", speedup}});
  }
}

// ---------------------------------------------------------------------------
// 3. Epoch-boundary answer latency: inline refresh vs background pump.
// ---------------------------------------------------------------------------

void RunBoundarySweep(BenchReport* report) {
  PrintHeader("epoch-boundary answer latency under ingest churn");
  std::printf("%8s %10s %10s %10s %12s %8s\n", "mode", "p50_ns", "p99_ns",
              "p999_ns", "inline_refs", "epochs");

  for (const bool pump_mode : {false, true}) {
    ServingEngineOptions options;
    options.shards = 8;
    options.footprint_bound = 4096;
    options.cache_max_stale_ops = 4096;
    options.cache_max_stale_interval = std::chrono::milliseconds(5);
    options.external_refresh = pump_mode;
    ServingEngine engine(options);
    engine.InsertBatch(ZipfValues(SmokeCap(100000), 2000, 1.0, kSeed));
    engine.SettleCaches();

    EpochPump pump(
        EpochPumpOptions{.interval = std::chrono::milliseconds(2)});
    if (pump_mode) {
      pump.AddDomain(
          "stream", [&engine] { return engine.AnyCacheStale(); },
          [&engine] { engine.SettleCaches(); });
      pump.Start();
    }

    const auto duration =
        SmokeMode() ? std::chrono::milliseconds(250)
                    : std::chrono::milliseconds(1500);
    std::atomic<bool> done{false};
    std::thread ingest([&engine, &done] {
      std::uint64_t batch_seed = kSeed + 1;
      while (!done.load(std::memory_order_acquire)) {
        engine.InsertBatch(ZipfValues(1024, 2000, 1.0, batch_seed++));
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });

    std::vector<std::int64_t> samples;
    samples.reserve(1 << 20);
    HotListQuery query;
    query.k = 10;
    const std::int64_t start = NowNs();
    const std::int64_t deadline =
        start + std::chrono::nanoseconds(duration).count();
    while (NowNs() < deadline) {
      const std::int64_t t0 = NowNs();
      (void)engine.HotListAnswer(query);
      samples.push_back(NowNs() - t0);
    }
    const double elapsed_s =
        static_cast<double>(NowNs() - start) / 1e9;
    done.store(true, std::memory_order_release);
    ingest.join();
    if (pump_mode) pump.Stop();

    std::int64_t inline_refreshes = 0;
    for (const SynopsisHandleStats& s : engine.GetStats().synopses) {
      inline_refreshes += s.cache.inline_refreshes;
    }
    const std::uint64_t epochs = engine.ServingEpoch();
    const LatencySummary summary = Summarize(std::move(samples), elapsed_s);
    const char* name = pump_mode ? "pump" : "inline";
    std::printf("%8s %10.0f %10.0f %10.0f %12lld %8llu\n", name,
                summary.p50_ns, summary.p99_ns, summary.p999_ns,
                static_cast<long long>(inline_refreshes),
                static_cast<unsigned long long>(epochs));
    std::vector<std::pair<std::string, double>> metrics;
    AppendSummaryMetrics("", summary, &metrics);
    metrics.emplace_back("inline_refreshes",
                         static_cast<double>(inline_refreshes));
    metrics.emplace_back("epochs", static_cast<double>(epochs));
    report->Add(std::string("epoch_boundary_") + name, std::move(metrics));
  }
}

}  // namespace
}  // namespace bench
}  // namespace aqua

int main(int argc, char** argv) {
  aqua::bench::ApplySmoke(argc, argv);
  aqua::bench::BenchReport report("epoch_refresh");
  aqua::bench::RunMergeSweep(&report);
  aqua::bench::RunViewSweep(&report);
  aqua::bench::RunBoundarySweep(&report);
  report.WriteJson(aqua::bench::BenchReport::JsonPathFromArgs(argc, argv));
  return 0;
}
