// Histogram ablation: range-count error of equi-depth, compressed and
// V-optimal histograms (§1 / [PIHS96] / [GMP97b]) with the same bucket
// budget, each built over (a) a traditional backing sample and (b) a
// concise sample's point sample of the *same footprint* — quantifying §2's
// remark that "a concise sample could be used as a backing sample, for
// more sample points for the same footprint".

#include <cmath>
#include <iostream>

#include "bench/bench_util.h"
#include "histogram/compressed_histogram.h"
#include "histogram/equi_depth_histogram.h"
#include "histogram/v_optimal_histogram.h"
#include "metrics/table_printer.h"

namespace {

struct RangeQuery {
  aqua::Value lo;
  aqua::Value hi;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace aqua;
  using namespace aqua::bench;
  ApplySmoke(argc, argv);

  constexpr std::int64_t kN = 500000;
  constexpr std::int64_t kD = 5000;
  constexpr Words kFootprint = 500;
  constexpr int kBuckets = 20;

  PrintHeader(
      "Histogram ablation: mean relative range-count error, 500000 values "
      "in [1,5000], footprint-500 backing samples, 20 buckets");
  TablePrinter table({"zipf", "backing", "sample points", "equi-depth %",
                      "compressed %", "v-optimal %"});

  const RangeQuery queries[] = {{1, 5},     {1, 25},    {1, 100},
                                {10, 50},   {50, 500},  {100, 1000},
                                {500, 2500}, {1, 2500}};

  for (double alpha : {0.5, 1.0, 1.5}) {
    for (const bool use_concise : {false, true}) {
      double err_equi = 0.0, err_comp = 0.0, err_vopt = 0.0;
      double mean_points = 0.0;
      for (int trial = 0; trial < kTrials; ++trial) {
        const std::uint64_t seed =
            TrialSeed(9800 + static_cast<int>(alpha * 4), trial);
        const std::vector<Value> data =
            ZipfValues(SmokeCap(kN), kD, alpha, seed);

        std::vector<Value> points;
        if (use_concise) {
          ConciseSample concise(ConciseSampleOptions{
              .footprint_bound = kFootprint, .seed = seed + 5});
          for (Value v : data) concise.Insert(v);
          points = concise.ToPointSample();
        } else {
          ReservoirSample reservoir(kFootprint, seed + 6);
          for (Value v : data) reservoir.Insert(v);
          points = reservoir.Points();
        }
        mean_points += static_cast<double>(points.size());

        EquiDepthHistogram equi(points, kBuckets, kN);
        CompressedHistogram comp(points, kBuckets, kN);
        VOptimalHistogram vopt(points, kBuckets, kN);

        for (const RangeQuery& q : queries) {
          std::int64_t truth = 0;
          for (Value v : data) truth += (v >= q.lo && v <= q.hi);
          if (truth == 0) continue;
          const auto t = static_cast<double>(truth);
          err_equi += std::abs(equi.EstimateRangeCount(q.lo, q.hi) - t) / t;
          err_comp += std::abs(comp.EstimateRangeCount(q.lo, q.hi) - t) / t;
          err_vopt += std::abs(vopt.EstimateRangeCount(q.lo, q.hi) - t) / t;
        }
      }
      const double norm = kTrials * static_cast<double>(std::size(queries));
      table.AddRow({TablePrinter::Num(alpha, 2),
                    use_concise ? "concise" : "traditional",
                    TablePrinter::Num(mean_points / kTrials, 0),
                    TablePrinter::Num(100.0 * err_equi / norm, 2),
                    TablePrinter::Num(100.0 * err_comp / norm, 2),
                    TablePrinter::Num(100.0 * err_vopt / norm, 2)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: concise backing samples carry more points "
               "at the same footprint, cutting range error as skew grows "
               "(largest effect at zipf 1.5).  Compressed histograms are "
               "the best all-rounder; V-optimal minimizes frequency "
               "variance, so it wins on narrow head ranges and equality "
               "estimates but pays on broad ranges under the "
               "continuous-spread assumption.\n";
  return 0;
}
