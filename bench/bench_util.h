#ifndef AQUA_BENCH_BENCH_UTIL_H_
#define AQUA_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "hotlist/hot_list.h"
#include "sample/reservoir_sample.h"
#include "warehouse/relation.h"
#include "workload/generators.h"

namespace aqua {
namespace bench {

/// The paper's experimental constants (§3.3, §5.3): 500K inserts into an
/// initially empty warehouse, 5-trial averages, ×1.1 threshold raises,
/// confidence threshold β = 3.  kInserts/kTrials are mutable so a `--smoke`
/// run (ApplySmoke) can shrink every bench to CI-sized streams; benches
/// read them after ApplySmoke and never write them.
inline std::int64_t kInserts = 500000;
inline int kTrials = 5;
inline constexpr double kBeta = 3.0;

/// True after ApplySmoke observed `--smoke` among the args.
bool SmokeMode();

/// Detects `--smoke` among the args; when present, shrinks kInserts and
/// kTrials to CI-sized values and returns true.  Call first thing in
/// main(), before any use of the constants above.
bool ApplySmoke(int argc, char** argv);

/// Caps a bench-local stream length under smoke mode (identity otherwise),
/// for benches whose sweeps use their own sizes instead of kInserts.
std::int64_t SmokeCap(std::int64_t n);

/// Base seed; trial t of scenario s uses kSeed + 1000003·s + t.
inline constexpr std::uint64_t kSeed = 0x533D;

inline std::uint64_t TrialSeed(int scenario, int trial) {
  return kSeed + 1000003ULL * static_cast<std::uint64_t>(scenario) +
         static_cast<std::uint64_t>(trial);
}

/// One full §5 experiment instance: the exact relation plus the three
/// approximate synopses maintained over the same stream.
struct HotListExperiment {
  Relation relation;
  ReservoirSample traditional;
  ConciseSample concise;
  CountingSample counting;

  HotListExperiment(std::int64_t n, std::int64_t domain, double alpha,
                    Words footprint, std::uint64_t seed)
      : traditional(footprint, seed * 3 + 1),
        concise(ConciseSampleOptions{.footprint_bound = footprint,
                                     .seed = seed * 3 + 2}),
        counting(CountingSampleOptions{.footprint_bound = footprint,
                                       .seed = seed * 3 + 3}) {
    for (Value v : ZipfValues(n, domain, alpha, seed)) {
      relation.Insert(v);
      traditional.Insert(v);
      concise.Insert(v);
      counting.Insert(v);
    }
  }
};

inline void PrintHeader(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// One algorithm's hot-list answer, for the Figure 4–6 rank tables.
struct AlgoReport {
  std::string name;
  HotList list;
};

/// Prints a Figure 4/5/6-style table: the k most frequent values in order
/// of nonincreasing exact count, with each algorithm's reported estimate
/// ("-" where the value was not reported, i.e. a false negative), followed
/// by the values reported by some algorithm that are *not* among the k most
/// frequent (false positives), "tacked on at the right … in nonincreasing
/// order of their actual frequency".  As in the paper, k is the number of
/// values whose frequency matches or exceeds the minimum reported count
/// over the approximation algorithms.
void PrintRankTable(const Relation& relation,
                    const std::vector<AlgoReport>& reports,
                    std::int64_t max_rows);

/// Latency percentiles plus throughput over one timed run: derived from
/// the raw per-request samples (ns) and the run's wall-clock seconds.
/// p999 and throughput_rps are first-class here so every serving bench
/// reports tail latency and aggregate rate under the same metric names.
struct LatencySummary {
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  double throughput_rps = 0.0;
};

/// Sorts a copy of `samples_ns` and fills the percentiles; throughput is
/// samples / elapsed_s (0 when either input is empty/zero).
LatencySummary Summarize(std::vector<std::int64_t> samples_ns,
                         double elapsed_s);

/// Appends the summary under stable metric names, optionally prefixed
/// ("cached_" -> "cached_p50_ns", ..., "cached_throughput_rps").
void AppendSummaryMetrics(const std::string& prefix,
                          const LatencySummary& summary,
                          std::vector<std::pair<std::string, double>>* out);

/// Machine-readable benchmark output: collects named results with numeric
/// metrics and serializes them as one JSON document
///
///   {"bench": "<name>",
///    "hardware": {"cpu_model": "...", "hw_concurrency": 8, ...},
///    "results":
///     [{"name": "...", "metrics": {"elements_per_sec": 1.2e7, ...}}, ...]}
///
/// so each bench run can be archived (BENCH_<name>.json) and the perf
/// trajectory diffed across PRs.  Pass `--json <path>` to a bench binary
/// (see JsonPathFromArgs) to enable it; stdout tables are unaffected.
///
/// The "hardware" object is always present: CPU model (/proc/cpuinfo),
/// std::thread::hardware_concurrency, the number of CPUs in the process's
/// affinity mask, and which batch-kernel path this binary was compiled
/// for — a scaling number without the hardware it ran on is not a number.
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Records one result row.  Metric names should be stable across PRs.
  void Add(std::string name,
           std::vector<std::pair<std::string, double>> metrics) {
    results_.push_back({std::move(name), std::move(metrics)});
  }

  /// Adds (or overrides) one string entry in the "hardware" object, for
  /// run-specific facts the report cannot detect itself (e.g. the pin
  /// mask a --pin-cpus harness actually applied).
  void SetHardware(std::string key, std::string value);

  /// Writes the JSON document; returns false (with a note on stderr) if the
  /// file cannot be opened.  No-op when `path` is empty.
  bool WriteJson(const std::string& path) const;

  /// Extracts the value of a `--json <path>` argument pair (or
  /// `--json=<path>`); empty string when the flag is absent.
  static std::string JsonPathFromArgs(int argc, char** argv);

 private:
  struct Row {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::string bench_name_;
  std::vector<Row> results_;
  std::vector<std::pair<std::string, std::string>> hardware_extra_;
};

}  // namespace bench
}  // namespace aqua

#endif  // AQUA_BENCH_BENCH_UTIL_H_
