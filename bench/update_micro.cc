// Update-time microbenchmarks (google-benchmark): wall-clock ns/insert for
// every synopsis the library maintains, across skews, plus the lookup
// structure underneath them.  Complements the paper's abstract flip/lookup
// measures (Tables 1-2) with machine time.

#include <benchmark/benchmark.h>

#include "container/flat_hash_map.h"
#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "sample/reservoir_sample.h"
#include "sketch/flajolet_martin.h"
#include "warehouse/full_histogram.h"
#include "workload/generators.h"

namespace aqua {
namespace {

constexpr std::int64_t kStream = 100000;

const std::vector<Value>& StreamData(int alpha_x100) {
  static const std::vector<Value> z0 = ZipfValues(kStream, 5000, 0.0, 81);
  static const std::vector<Value> z1 = ZipfValues(kStream, 5000, 1.0, 82);
  static const std::vector<Value> z2 = ZipfValues(kStream, 5000, 2.0, 83);
  if (alpha_x100 == 0) return z0;
  if (alpha_x100 == 100) return z1;
  return z2;
}

template <typename MakeSynopsis>
void RunStream(benchmark::State& state, MakeSynopsis make) {
  const std::vector<Value>& data =
      StreamData(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto s = make();
    for (Value v : data) s.Insert(v);
    benchmark::DoNotOptimize(&s);
  }
  state.SetItemsProcessed(state.iterations() * kStream);
}

void BM_Traditional(benchmark::State& state) {
  RunStream(state, [] { return ReservoirSample(1000, 84); });
}
void BM_Concise(benchmark::State& state) {
  RunStream(state, [] {
    return ConciseSample(
        ConciseSampleOptions{.footprint_bound = 1000, .seed = 85});
  });
}
void BM_Counting(benchmark::State& state) {
  RunStream(state, [] {
    return CountingSample(
        CountingSampleOptions{.footprint_bound = 1000, .seed = 86});
  });
}
void BM_FullHistogram(benchmark::State& state) {
  RunStream(state, [] { return FullHistogram(1000); });
}
void BM_FmSketch(benchmark::State& state) {
  RunStream(state, [] { return FlajoletMartin(16, 87); });
}

BENCHMARK(BM_Traditional)->Arg(0)->Arg(100)->Arg(200)->ArgName("zipf_x100");
BENCHMARK(BM_Concise)->Arg(0)->Arg(100)->Arg(200)->ArgName("zipf_x100");
BENCHMARK(BM_Counting)->Arg(0)->Arg(100)->Arg(200)->ArgName("zipf_x100");
BENCHMARK(BM_FullHistogram)->Arg(0)->Arg(100)->Arg(200)->ArgName("zipf_x100");
BENCHMARK(BM_FmSketch)->Arg(0)->Arg(100)->Arg(200)->ArgName("zipf_x100");

void BM_FlatHashMapUpsert(benchmark::State& state) {
  const std::vector<Value>& data =
      StreamData(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    FlatHashMap<Value, Count> map;
    for (Value v : data) ++map[v];
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() * kStream);
}
BENCHMARK(BM_FlatHashMapUpsert)
    ->Arg(0)
    ->Arg(100)
    ->Arg(200)
    ->ArgName("zipf_x100");

}  // namespace
}  // namespace aqua

BENCHMARK_MAIN();
