// Update-time microbenchmarks: wall-clock ns/insert for every synopsis the
// library maintains, across skews, for both the per-element Insert path and
// the batched InsertBatch fast path (which skip-counts over unselected
// elements — §3.1's economization applied per batch instead of per call).
// Complements the paper's abstract flip/lookup measures (Tables 1-2) with
// machine time.  Emits machine-readable JSON with --json <path>.

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "metrics/table_printer.h"
#include "sample/reservoir_sample.h"
#include "sketch/flajolet_martin.h"
#include "warehouse/full_histogram.h"
#include "workload/generators.h"

namespace aqua {
namespace bench {
namespace {

constexpr std::int64_t kStream = 100000;
constexpr std::size_t kBatch = 4096;
constexpr int kReps = 3;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-kReps wall time for `run(data)`, in seconds.
double TimeBest(const std::vector<Value>& data,
                const std::function<void(const std::vector<Value>&)>& run) {
  double best = 1e300;
  for (int r = 0; r < kReps; ++r) {
    const double start = NowSeconds();
    run(data);
    const double secs = NowSeconds() - start;
    if (secs < best) best = secs;
  }
  return best;
}

template <typename S>
void FeedPerElement(S& s, const std::vector<Value>& data) {
  for (Value v : data) s.Insert(v);
}

template <typename S>
void FeedBatched(S& s, const std::vector<Value>& data) {
  const std::span<const Value> all(data);
  for (std::size_t i = 0; i < all.size(); i += kBatch) {
    s.InsertBatch(all.subspan(i, std::min(kBatch, all.size() - i)));
  }
}

struct Scenario {
  std::string name;
  std::vector<Value> data;
};

class Bench {
 public:
  Bench(TablePrinter* table, BenchReport* report)
      : table_(table), report_(report) {}

  /// Times one (synopsis, path, scenario) cell and records it.
  void Run(const std::string& synopsis, const std::string& path,
           const Scenario& scenario,
           const std::function<void(const std::vector<Value>&)>& run) {
    const double secs = TimeBest(scenario.data, run);
    const auto n = static_cast<double>(scenario.data.size());
    const double ns = secs / n * 1e9;
    table_->AddRow({synopsis, path, scenario.name, TablePrinter::Num(ns, 1),
                    TablePrinter::Num(n / secs / 1e6, 2)});
    report_->Add(synopsis + "/" + path + "/" + scenario.name,
                 {{"ns_per_element", ns}, {"elements_per_sec", n / secs}});
  }

 private:
  TablePrinter* table_;
  BenchReport* report_;
};

}  // namespace
}  // namespace bench
}  // namespace aqua

int main(int argc, char** argv) {
  using namespace aqua;
  using namespace aqua::bench;

  ApplySmoke(argc, argv);
  const std::int64_t stream_n = SmokeCap(kStream);
  const std::string json_path = BenchReport::JsonPathFromArgs(argc, argv);
  BenchReport report("update_micro");
  TablePrinter table({"synopsis", "path", "stream", "ns/elem", "Melem/s"});
  Bench bench(&table, &report);

  PrintHeader("update-time microbenchmarks (per-element vs batched)");

  // The classic skew sweep (100K elements, domain 5K, m=1000).
  std::vector<Scenario> skews;
  skews.push_back({"zipf0.0", ZipfValues(stream_n, 5000, 0.0, 81)});
  skews.push_back({"zipf1.0", ZipfValues(stream_n, 5000, 1.0, 82)});
  skews.push_back({"zipf2.0", ZipfValues(stream_n, 5000, 2.0, 83)});
  // The large-τ regime: a long low-duplication stream drives the concise
  // sample's threshold high, so almost every element is skip-jumped; this
  // is where the batched path's O(#selected + 1) cost shows up.
  Scenario large_tau{"uniform1M",
                     UniformValues(SmokeCap(1000000), 200000, 88)};

  for (const Scenario& s : skews) {
    bench.Run("traditional", "insert", s, [](const std::vector<Value>& d) {
      ReservoirSample r(1000, 84);
      FeedPerElement(r, d);
    });
    bench.Run("traditional", "batch", s, [](const std::vector<Value>& d) {
      ReservoirSample r(1000, 84);
      FeedBatched(r, d);
    });
    bench.Run("concise", "insert", s, [](const std::vector<Value>& d) {
      ConciseSample c(ConciseSampleOptions{.footprint_bound = 1000,
                                           .seed = 85});
      FeedPerElement(c, d);
    });
    bench.Run("concise", "batch", s, [](const std::vector<Value>& d) {
      ConciseSample c(ConciseSampleOptions{.footprint_bound = 1000,
                                           .seed = 85});
      FeedBatched(c, d);
    });
    bench.Run("counting", "insert", s, [](const std::vector<Value>& d) {
      CountingSample k(CountingSampleOptions{.footprint_bound = 1000,
                                             .seed = 86});
      FeedPerElement(k, d);
    });
    bench.Run("counting", "batch", s, [](const std::vector<Value>& d) {
      CountingSample k(CountingSampleOptions{.footprint_bound = 1000,
                                             .seed = 86});
      FeedBatched(k, d);
    });
    bench.Run("full-histogram", "insert", s, [](const std::vector<Value>& d) {
      FullHistogram h(1000);
      FeedPerElement(h, d);
    });
    bench.Run("fm-sketch", "insert", s, [](const std::vector<Value>& d) {
      FlajoletMartin f(16, 87);
      FeedPerElement(f, d);
    });
  }

  bench.Run("concise", "insert", large_tau, [](const std::vector<Value>& d) {
    ConciseSample c(ConciseSampleOptions{.footprint_bound = 1000,
                                         .seed = 89});
    FeedPerElement(c, d);
  });
  bench.Run("concise", "batch", large_tau, [](const std::vector<Value>& d) {
    ConciseSample c(ConciseSampleOptions{.footprint_bound = 1000,
                                         .seed = 89});
    FeedBatched(c, d);
  });
  bench.Run("traditional", "insert", large_tau,
            [](const std::vector<Value>& d) {
              ReservoirSample r(1000, 90);
              FeedPerElement(r, d);
            });
  bench.Run("traditional", "batch", large_tau,
            [](const std::vector<Value>& d) {
              ReservoirSample r(1000, 90);
              FeedBatched(r, d);
            });

  table.Print(std::cout);
  std::cout << "(batch path feeds " << kBatch
            << "-element spans through InsertBatch; insert path is one "
               "virtual call per element)\n";
  if (!report.WriteJson(json_path)) return 1;
  return 0;
}
