// Shared keep-alive HTTP/1.1 load client for serving benches
// (http_throughput, scaling_matrix): raw loopback sockets, Content-Length
// framing, per-request latency samples, optional client-thread pinning.
#ifndef AQUA_BENCH_HTTP_CLIENT_H_
#define AQUA_BENCH_HTTP_CLIENT_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

// Client threads pin with the same helper the server's --pin-cores uses
// (aqua::PinSelfToCpu), found by unqualified lookup from aqua::bench.
#include "common/cpu_affinity.h"

namespace aqua {
namespace bench {

inline std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline int ConnectTo(std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

inline bool SendAll(int fd, const std::string& wire) {
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n = write(fd, wire.data() + off, wire.size() - off);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one Content-Length-framed response; `carry` holds overshoot
/// bytes between calls on the same connection.  Returns the status code,
/// or 0 on socket error/timeout; the body lands in `*body` when non-null.
inline int ReadOneBody(int fd, std::string* carry, std::string* body) {
  std::string raw = std::move(*carry);
  carry->clear();
  char buf[8192];
  std::size_t blank = raw.find("\r\n\r\n");
  while (blank == std::string::npos) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (poll(&pfd, 1, 15000) <= 0) return 0;
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) return 0;
    raw.append(buf, static_cast<std::size_t>(n));
    blank = raw.find("\r\n\r\n");
  }
  std::size_t content_length = 0;
  const std::string key = "content-length:";
  for (std::size_t at = 0; at < blank;) {
    const std::size_t eol = raw.find("\r\n", at);
    std::string line = raw.substr(at, eol - at);
    for (char& c : line) c = static_cast<char>(std::tolower(c));
    if (line.rfind(key, 0) == 0) {
      content_length = std::stoul(line.substr(key.size()));
    }
    at = eol + 2;
  }
  const std::size_t total = blank + 4 + content_length;
  while (raw.size() < total) {
    struct pollfd pfd = {fd, POLLIN, 0};
    if (poll(&pfd, 1, 15000) <= 0) return 0;
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) return 0;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  if (body != nullptr) *body = raw.substr(blank + 4, content_length);
  *carry = raw.substr(total);
  return raw.rfind("HTTP/1.1 ", 0) == 0 ? std::stoi(raw.substr(9, 3)) : 0;
}

inline int ReadOneStatus(int fd, std::string* carry) {
  return ReadOneBody(fd, carry, nullptr);
}

struct LoadResult {
  std::vector<std::int64_t> samples_ns;
  double elapsed_s = 0.0;
  std::int64_t errors = 0;  // socket failures / non-2xx
  std::int64_t status_5xx = 0;
};

/// Drives `requests_per_thread` lockstep keep-alive GETs per thread and
/// merges the per-request latency samples.  `pin_offset >= 0` pins client
/// thread t to CPU (pin_offset + t), modulo online CPUs — offset past the
/// server's reactors so client and reactor threads contend for distinct
/// cores when enough exist.
inline LoadResult DriveLoad(std::uint16_t port,
                            const std::vector<std::string>& paths,
                            int threads, int requests_per_thread,
                            int pin_offset = -1) {
  std::vector<std::vector<std::int64_t>> samples(
      static_cast<std::size_t>(threads));
  std::vector<std::int64_t> errors(static_cast<std::size_t>(threads), 0);
  std::vector<std::int64_t> fives(static_cast<std::size_t>(threads), 0);
  const std::int64_t start = NowNs();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      if (pin_offset >= 0) {
        PinSelfToCpu(static_cast<std::size_t>(pin_offset + t));
      }
      const int fd = ConnectTo(port);
      if (fd < 0) {
        errors[static_cast<std::size_t>(t)] = requests_per_thread;
        return;
      }
      std::string carry;
      auto& mine = samples[static_cast<std::size_t>(t)];
      mine.reserve(static_cast<std::size_t>(requests_per_thread));
      for (int i = 0; i < requests_per_thread; ++i) {
        const std::string& path =
            paths[static_cast<std::size_t>(i) % paths.size()];
        const std::string wire =
            "GET " + path + " HTTP/1.1\r\nHost: b\r\n\r\n";
        const std::int64_t begin = NowNs();
        if (!SendAll(fd, wire)) {
          ++errors[static_cast<std::size_t>(t)];
          break;
        }
        const int status = ReadOneStatus(fd, &carry);
        mine.push_back(NowNs() - begin);
        if (status >= 500) ++fives[static_cast<std::size_t>(t)];
        if (status < 200 || status >= 300) {
          ++errors[static_cast<std::size_t>(t)];
          if (status == 0) break;  // dead socket
        }
      }
      close(fd);
    });
  }
  for (std::thread& c : clients) c.join();

  LoadResult result;
  result.elapsed_s = static_cast<double>(NowNs() - start) / 1e9;
  for (int t = 0; t < threads; ++t) {
    auto& mine = samples[static_cast<std::size_t>(t)];
    result.samples_ns.insert(result.samples_ns.end(), mine.begin(),
                             mine.end());
    result.errors += errors[static_cast<std::size_t>(t)];
    result.status_5xx += fives[static_cast<std::size_t>(t)];
  }
  return result;
}

}  // namespace bench
}  // namespace aqua

#endif  // AQUA_BENCH_HTTP_CLIENT_H_
