// §4.1 deletion experiment (no figure in the paper — it proves Theorem 5
// analytically): counting-sample hot-list accuracy under mixed
// insert/delete streams of increasing delete fraction, versus the exact
// top-k of the surviving relation.  Concise samples cannot be maintained
// under deletions; the counting sample's accuracy should degrade only with
// the effective relation size, not with the delete rate per se.

#include <iostream>

#include "bench/bench_util.h"
#include "hotlist/counting_hot_list.h"
#include "metrics/hotlist_accuracy.h"
#include "metrics/table_printer.h"

int main(int argc, char** argv) {
  using namespace aqua;
  using namespace aqua::bench;
  ApplySmoke(argc, argv);

  PrintHeader(
      "Counting samples under deletions: 500000 ops, domain [1,5000], "
      "zipf 1.25, footprint 1000");
  TablePrinter table({"delete fraction", "final |R|", "reported",
                      "recall@20", "precision", "mean count err %",
                      "final threshold"});
  for (double delete_fraction : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    double recall = 0.0, precision = 0.0, err = 0.0, reported = 0.0,
           threshold = 0.0;
    std::int64_t final_size = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const UpdateStream stream =
          MixedStream(kInserts, 5000, 1.25, delete_fraction, 20000,
                      TrialSeed(9000 + static_cast<int>(delete_fraction * 10),
                                trial));
      Relation relation;
      CountingSample counting(CountingSampleOptions{
          .footprint_bound = 1000,
          .seed = TrialSeed(9100, trial)});
      for (const StreamOp& op : stream) {
        if (op.kind == StreamOp::Kind::kInsert) {
          relation.Insert(op.value);
          counting.Insert(op.value);
        } else {
          (void)relation.Delete(op.value);
          (void)counting.Delete(op.value);
        }
      }
      const HotList list =
          CountingHotList(counting).Report({.k = 0, .beta = kBeta});
      const HotListAccuracy acc =
          EvaluateHotList(list, relation.ExactCounts(), 20);
      recall += acc.Recall(20);
      precision += acc.Precision();
      err += acc.mean_relative_count_error;
      reported += static_cast<double>(acc.reported);
      threshold += counting.Threshold();
      final_size = relation.size();
    }
    table.AddRow({TablePrinter::Num(delete_fraction, 1),
                  TablePrinter::Num(final_size),
                  TablePrinter::Num(reported / kTrials, 1),
                  TablePrinter::Num(recall / kTrials, 3),
                  TablePrinter::Num(precision / kTrials, 3),
                  TablePrinter::Num(err / kTrials * 100.0, 1),
                  TablePrinter::Num(threshold / kTrials, 0)});
  }
  table.Print(std::cout);
  std::cout << "\nTheorem 5: the maintenance algorithm preserves the "
               "counting-sample process under any insert/delete sequence; "
               "recall should stay high across delete fractions.\n";
  return 0;
}
