// Response-time comparison for hot list queries (§5.1): the maintained
// candidate set ("keeping the sample sorted by counts … allows for
// reporting in O(k) time") vs the on-demand O(m) scan-and-select reporter,
// across synopsis footprints.  Also reports the insert-path overhead the
// maintained index costs.

#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "hotlist/counting_hot_list.h"
#include "hotlist/maintained_hot_list.h"
#include "metrics/table_printer.h"

int main(int argc, char** argv) {
  using namespace aqua;
  using namespace aqua::bench;
  ApplySmoke(argc, argv);

  PrintHeader(
      "Hot-list response time: on-demand O(m) reporting vs maintained O(k) "
      "candidates (zipf 1.1, k = 10)");
  TablePrinter table({"footprint m", "on-demand us/query",
                      "maintained us/query", "speedup",
                      "insert overhead %"});

  for (Words footprint : {Words{1000}, Words{10000}, Words{100000}}) {
    const std::vector<Value> data = ZipfValues(
        kInserts, footprint * 5, 1.1, TrialSeed(9990, 0));

    // Plain counting sample.
    CountingSample plain(CountingSampleOptions{.footprint_bound = footprint,
                                               .seed = 3});
    auto t0 = std::chrono::steady_clock::now();
    for (Value v : data) plain.Insert(v);
    auto t1 = std::chrono::steady_clock::now();
    const double plain_insert_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());

    // Maintained hot list over an identical sample.
    MaintainedHotList maintained(
        CountingSampleOptions{.footprint_bound = footprint, .seed = 3}, 40);
    t0 = std::chrono::steady_clock::now();
    for (Value v : data) maintained.Insert(v);
    t1 = std::chrono::steady_clock::now();
    const double maintained_insert_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());

    constexpr int kQueries = 200;
    CountingHotList on_demand(plain);
    t0 = std::chrono::steady_clock::now();
    std::size_t sink = 0;
    for (int q = 0; q < kQueries; ++q) {
      sink += on_demand.Report({.k = 10}).size();
    }
    t1 = std::chrono::steady_clock::now();
    const double on_demand_us =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count()) /
        kQueries;

    t0 = std::chrono::steady_clock::now();
    for (int q = 0; q < kQueries; ++q) sink += maintained.Report(10).size();
    t1 = std::chrono::steady_clock::now();
    const double maintained_us =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count()) /
        kQueries;
    if (sink == 0) std::cout << "";  // keep the reports alive

    table.AddRow(
        {TablePrinter::Num(footprint), TablePrinter::Num(on_demand_us, 1),
         TablePrinter::Num(maintained_us, 2),
         TablePrinter::Num(on_demand_us / std::max(0.01, maintained_us), 1),
         TablePrinter::Num(100.0 * (maintained_insert_ns - plain_insert_ns) /
                               plain_insert_ns,
                           1)});
  }
  table.Print(std::cout);
  std::cout << "\nThe maintained variant trades a small insert overhead for "
               "footprint-independent query latency.\n";
  return 0;
}
