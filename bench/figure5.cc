// Reproduces Figure 5 of Gibbons & Matias (SIGMOD 1998): counting samples
// vs traditional samples on a less skewed distribution — 500000 values in
// [1,5000], zipf parameter 1.0, footprint 1000.  The signature behaviour:
// traditional estimates are quantized to multiples of n/m = 500 (the
// "horizontal rows of reported counts"), while counting estimates hug the
// exact curve; concise falls in between (paper footnote 6: count errors for
// the truncated head were 1-4% counting, 5-16% concise, 3-31% traditional).

#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"
#include "hotlist/concise_hot_list.h"
#include "hotlist/counting_hot_list.h"
#include "hotlist/traditional_hot_list.h"
#include "metrics/hotlist_accuracy.h"

int main(int argc, char** argv) {
  using namespace aqua;
  using namespace aqua::bench;
  ApplySmoke(argc, argv);

  PrintHeader(
      "Figure 5: counting vs traditional, 500000 values in [1,5000], "
      "zipf 1.0, footprint 1000");

  const std::uint64_t seed = TrialSeed(5000, 0);
  HotListExperiment e(kInserts, 5000, 1.0, 1000, seed);

  const HotListQuery query{.k = 0, .beta = kBeta};
  const std::vector<AlgoReport> reports = {
      {"counting", CountingHotList(e.counting).Report(query)},
      {"concise", ConciseHotList(e.concise).Report(query)},
      {"traditional", TraditionalHotList(e.traditional).Report(query)},
  };
  PrintRankTable(e.relation, reports, /*max_rows=*/120);

  // Footnote-6 style head-error summary: relative count error over the
  // values whose exact counts exceed the paper's y-axis truncation (10000).
  std::cout << "\nHead (exact count > 10000) relative count errors:\n";
  const auto exact = e.relation.ExactCounts();
  for (const AlgoReport& r : reports) {
    double lo = 1e9, hi = 0.0;
    int n_head = 0;
    for (const ValueCount& vc : exact) {
      if (vc.count <= 10000) continue;
      for (const HotListItem& item : r.list) {
        if (item.value == vc.value) {
          const double err = std::abs(item.estimated_count -
                                      static_cast<double>(vc.count)) /
                             static_cast<double>(vc.count);
          lo = std::min(lo, err);
          hi = std::max(hi, err);
          ++n_head;
          break;
        }
      }
    }
    if (n_head > 0) {
      std::cout << "  " << r.name << ": " << static_cast<int>(lo * 100)
                << "%-" << static_cast<int>(hi * 100 + 0.999) << "% over "
                << n_head << " head values\n";
    }
  }

  std::cout << "\nTraditional estimates are multiples of n/m = "
            << kInserts / 1000 << " (the figure's horizontal rows).\n"
            << "Reported: counting " << reports[0].list.size()
            << ", concise " << reports[1].list.size() << ", traditional "
            << reports[2].list.size()
            << " (paper: 92 / 95 / 52 for this configuration)\n";
  return 0;
}
