// Planner latency: what the /query path adds on top of the legacy answer
// path, broken into its stages — SQL parse + canonical-key append (the
// cacheable-GET fast path runs both per request), PlanQuery scoring, and
// the full plan-pin-compute-record loop — plus the behavioral payoff:
// once the latency EWMAs are warm, deadline-bounded queries switch to a
// faster option and the met-deadline rate recovers.
//
// Usage: planner_latency [--json <path>] [--smoke]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "plan/planner.h"
#include "plan/sql_frontend.h"
#include "warehouse/engine.h"
#include "workload/generators.h"

namespace aqua {
namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Times `fn()` per iteration; returns percentiles + throughput.
template <typename Fn>
bench::LatencySummary TimeLoop(int iterations, const Fn& fn) {
  std::vector<std::int64_t> samples;
  samples.reserve(static_cast<std::size_t>(iterations));
  const std::int64_t start = NowNs();
  for (int i = 0; i < iterations; ++i) {
    const std::int64_t t0 = NowNs();
    fn(i);
    samples.push_back(NowNs() - t0);
  }
  const double elapsed_s = static_cast<double>(NowNs() - start) / 1e9;
  return bench::Summarize(std::move(samples), elapsed_s);
}

constexpr const char* kBoundedStatement =
    "SELECT APPROX(COUNT(*)) FROM stream WHERE v BETWEEN 100 AND 900 "
    "ERROR 2% CONFIDENCE 95% WITHIN 1ms";

struct KindCase {
  const char* name;
  PlannedQuery query;
};

std::vector<KindCase> KindCases() {
  std::vector<KindCase> cases;
  PlannedQuery q;
  q.kind = QueryKind::kHotList;
  q.k = 10;
  cases.push_back({"hotlist", q});
  q = PlannedQuery{};
  q.kind = QueryKind::kFrequency;
  q.value = 1;
  cases.push_back({"frequency", q});
  q = PlannedQuery{};
  q.kind = QueryKind::kCountWhere;
  q.range = ValueRange{100, 900};
  cases.push_back({"count_where", q});
  q = PlannedQuery{};
  q.kind = QueryKind::kDistinct;
  cases.push_back({"distinct", q});
  q = PlannedQuery{};
  q.kind = QueryKind::kQuantile;
  q.q = 0.5;
  cases.push_back({"quantile", q});
  return cases;
}

}  // namespace
}  // namespace aqua

int main(int argc, char** argv) {
  using namespace aqua;
  bench::ApplySmoke(argc, argv);
  bench::BenchReport report("planner_latency");

  const std::int64_t inserts = bench::SmokeCap(200000);
  const int queries = bench::SmokeMode() ? 2000 : 20000;

  ApproximateAnswerEngine engine(EngineOptions{});
  for (Value v : ZipfValues(inserts, 2000, 1.2, bench::kSeed)) {
    if (!engine.Observe(StreamOp::Insert(v)).ok()) return 1;
  }
  const SynopsisRegistry& registry = engine.registry();
  const QueryContext ctx{registry.observed_inserts()};

  bench::PrintHeader("planner_latency");

  // Stage 1: SQL parse + canonical key — the per-request frontend cost.
  {
    std::string key;
    key.reserve(128);
    ParsedSqlQuery parsed;
    const auto summary = TimeLoop(queries, [&](int) {
      if (!ParseSqlQuery(kBoundedStatement, &parsed).ok()) std::abort();
      key.clear();
      AppendCanonicalSqlKey(parsed, &key);
    });
    std::printf("parse+canonical      p50 %8.0f ns   p99 %8.0f ns\n",
                summary.p50_ns, summary.p99_ns);
    std::vector<std::pair<std::string, double>> metrics;
    bench::AppendSummaryMetrics("", summary, &metrics);
    report.Add("parse_canonical", std::move(metrics));
  }

  // Stage 2: PlanQuery scoring per kind (bounded, so every option is
  // scored rather than short-circuiting on the first candidate).
  QueryBound scored_bound;
  scored_bound.max_error = 0.05;
  scored_bound.deadline_ns = 1000000;
  for (const auto& kind_case : KindCases()) {
    const auto summary = TimeLoop(queries, [&](int) {
      const PlanChoice plan =
          PlanQuery(registry, kind_case.query.kind, scored_bound, ctx);
      if (plan.handle == nullptr && plan.predicted_ns < 0) std::abort();
    });
    std::printf("plan %-15s p50 %8.0f ns   p99 %8.0f ns\n", kind_case.name,
                summary.p50_ns, summary.p99_ns);
    std::vector<std::pair<std::string, double>> metrics;
    bench::AppendSummaryMetrics("", summary, &metrics);
    report.Add(std::string("plan_") + kind_case.name, std::move(metrics));
  }

  // Stage 3: the full planned path per kind versus the legacy direct
  // answer — the planner's end-to-end overhead.
  PlannedResponse response;
  for (const auto& kind_case : KindCases()) {
    const auto planned = TimeLoop(queries, [&](int) {
      RunPlannedQueryInto(registry, kind_case.query, &response);
    });
    std::vector<std::pair<std::string, double>> metrics;
    bench::AppendSummaryMetrics("", planned, &metrics);
    if (kind_case.query.kind == QueryKind::kCountWhere) {
      const auto legacy = TimeLoop(queries, [&](int) {
        const auto r = registry.CountWhereAnswer(ValueRange{100, 900}, 0.95);
        if (r.method.empty()) std::abort();
      });
      metrics.emplace_back("legacy_p50_ns", legacy.p50_ns);
      metrics.emplace_back("overhead_p50_ns", planned.p50_ns - legacy.p50_ns);
      std::printf("planned %-12s p50 %8.0f ns   legacy p50 %8.0f ns\n",
                  kind_case.name, planned.p50_ns, legacy.p50_ns);
    } else {
      std::printf("planned %-12s p50 %8.0f ns   p99 %8.0f ns\n",
                  kind_case.name, planned.p50_ns, planned.p99_ns);
    }
    report.Add(std::string("planned_") + kind_case.name, std::move(metrics));
  }

  // Stage 4: deadline adaptation.  The latency profiles are warm from
  // stage 3, so a deadline between the fast and slow options' EWMAs must
  // steer selection to a feasible option and keep the met-deadline rate
  // high; report the rate so a regression in profile feeding shows up as
  // a number, not a vibe.
  {
    PlannedQuery bounded;
    bounded.kind = QueryKind::kCountWhere;
    bounded.range = ValueRange{100, 900};
    bounded.bound.max_error = 0.05;
    bounded.bound.deadline_ns = 5000000;  // 5ms: generous on warm paths
    int met_error = 0;
    int met_deadline = 0;
    const auto summary = TimeLoop(queries, [&](int) {
      RunPlannedQueryInto(registry, bounded, &response);
      met_error += response.met_error ? 1 : 0;
      met_deadline += response.met_deadline ? 1 : 0;
    });
    std::printf(
        "bounded count_where  p50 %8.0f ns   met_error %5.1f%%   "
        "met_deadline %5.1f%%\n",
        summary.p50_ns, 100.0 * met_error / queries,
        100.0 * met_deadline / queries);
    std::vector<std::pair<std::string, double>> metrics;
    bench::AppendSummaryMetrics("", summary, &metrics);
    metrics.emplace_back("met_error_rate",
                         static_cast<double>(met_error) / queries);
    metrics.emplace_back("met_deadline_rate",
                         static_cast<double>(met_deadline) / queries);
    report.Add("bounded_count_where", std::move(metrics));
  }

  return report.WriteJson(bench::BenchReport::JsonPathFromArgs(argc, argv))
             ? 0
             : 1;
}
