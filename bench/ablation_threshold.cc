// §3.1 ablation: threshold-raise policy.  "A large raise may evict more
// than is needed …, resulting in a smaller sample-size …  On the other
// hand, evicting more than is needed creates room for subsequent additions
// …, so the procedure for creating room runs less frequently."  We sweep
// the paper's ×1.1 default against larger multiplicative factors and the
// two smarter policies the paper sketches (binary search to a target
// decrease; singleton lower bound) on the Figure 3(b) configuration.

#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "metrics/table_printer.h"

int main(int argc, char** argv) {
  using namespace aqua;
  using namespace aqua::bench;
  ApplySmoke(argc, argv);

  struct PolicyCase {
    const char* name;
    std::shared_ptr<ThresholdPolicy> policy;
  };
  const PolicyCase cases[] = {
      {"x1.01", std::make_shared<MultiplicativeThresholdPolicy>(1.01)},
      {"x1.1 (paper)", std::make_shared<MultiplicativeThresholdPolicy>(1.1)},
      {"x1.5", std::make_shared<MultiplicativeThresholdPolicy>(1.5)},
      {"x2", std::make_shared<MultiplicativeThresholdPolicy>(2.0)},
      {"binary-search 5%",
       std::make_shared<BinarySearchThresholdPolicy>(0.05)},
      {"singleton-bound 5%",
       std::make_shared<SingletonBoundThresholdPolicy>(0.05)},
  };

  for (double alpha : {0.5, 1.0, 1.5}) {
    PrintHeader("Threshold policy ablation, 500000 values in [1,5000], "
                "zipf " +
                std::to_string(alpha) + ", footprint 1000");
    TablePrinter table({"policy", "sample-size", "raises", "flips/insert",
                        "final threshold"});
    for (const PolicyCase& pc : cases) {
      double size = 0.0, raises = 0.0, flips = 0.0, threshold = 0.0;
      for (int trial = 0; trial < kTrials; ++trial) {
        ConciseSample s(ConciseSampleOptions{
            .footprint_bound = 1000,
            .seed = TrialSeed(9500, trial),
            .policy = pc.policy});
        for (Value v : ZipfValues(kInserts, 5000, alpha,
                                  TrialSeed(9600 + static_cast<int>(alpha * 4),
                                            trial))) {
          s.Insert(v);
        }
        size += static_cast<double>(s.SampleSize());
        raises += static_cast<double>(s.Cost().threshold_raises);
        flips += s.Cost().FlipsPerInsert(kInserts);
        threshold += s.Threshold();
      }
      table.AddRow({pc.name, TablePrinter::Num(size / kTrials, 0),
                    TablePrinter::Num(raises / kTrials, 1),
                    TablePrinter::Num(flips / kTrials, 4),
                    TablePrinter::Num(threshold / kTrials, 0)});
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape: small factors maximize sample-size but "
               "raise often (more flips); large factors overshoot "
               "(smaller sample-size, fewer raises); the adaptive policies "
               "land between.\n";
  return 0;
}
