// Serving-path latency: per-request ShardedSynopsis::Snapshot() (merge all
// shards on every query) versus SnapshotCache::Get() (atomic load of the
// current epoch's merged snapshot), both followed by the same hot-list
// answer computation over the snapshot — i.e. the two ways a serving layer
// could sit on top of the sharded ingest structure.  Also reports the full
// ServingEngine::HotListAnswer path (cache + counting sample + answer).
//
// The per-request path pays one O(shards * footprint) merge per query; the
// cached path pays it once per staleness window, amortized across every
// query in the window.  The PR's acceptance bar: cached p50 at least 5x
// lower than per-request p50 at 8 shards.
//
// Usage: serving_latency [--json <path>]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "concurrency/sharded_synopsis.h"
#include "concurrency/snapshot_cache.h"
#include "core/concise_sample.h"
#include "hotlist/concise_hot_list.h"
#include "random/xoshiro256.h"
#include "server/serving_engine.h"
#include "workload/generators.h"

namespace aqua {
namespace {

constexpr std::size_t kShards = 8;
constexpr std::int64_t kPreload = 200000;
constexpr std::int64_t kDomain = 1000;
constexpr double kAlpha = 1.0;
constexpr Words kFootprint = 4096;
constexpr int kQueries = 2000;

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct LatencySummary {
  double p50_ns = 0.0;
  double p99_ns = 0.0;
};

LatencySummary Summarize(std::vector<std::int64_t>& samples) {
  std::sort(samples.begin(), samples.end());
  LatencySummary s;
  s.p50_ns = static_cast<double>(samples[samples.size() / 2]);
  s.p99_ns = static_cast<double>(samples[samples.size() * 99 / 100]);
  return s;
}

int Main(int argc, char** argv) {
  const bool smoke = bench::ApplySmoke(argc, argv);
  const std::int64_t preload = smoke ? 2000 : kPreload;
  const int queries = smoke ? 200 : kQueries;
  const std::string json_path =
      bench::BenchReport::JsonPathFromArgs(argc, argv);
  bench::BenchReport report("serving_latency");

  ShardedSynopsis<ConciseSample> sharded(
      kShards,
      [](std::size_t i) {
        ConciseSampleOptions o;
        o.footprint_bound = kFootprint;
        std::uint64_t s = 0x19980531ULL + 0x9e3779b97f4a7c15ULL * (i + 1);
        o.seed = SplitMix64Next(s);
        return ConciseSample(o);
      },
      ShardRouting::kRoundRobin);
  const std::vector<Value> stream =
      ZipfValues(preload, kDomain, kAlpha, bench::kSeed);
  for (std::size_t off = 0; off < stream.size(); off += 1024) {
    const std::size_t len = std::min<std::size_t>(1024, stream.size() - off);
    sharded.InsertBatch(std::span<const Value>(stream.data() + off, len));
  }

  HotListQuery query;
  query.k = 10;

  auto answer_from = [&query](const ConciseSample& snapshot) {
    return ConciseHotList(snapshot).Report(query);
  };

  // Path A: per-request merge.
  std::vector<std::int64_t> merge_ns;
  merge_ns.reserve(queries);
  for (int i = 0; i < queries; ++i) {
    const std::int64_t start = NowNs();
    const ConciseSample snapshot = sharded.Snapshot().ValueOrDie();
    const HotList answer = answer_from(snapshot);
    merge_ns.push_back(NowNs() - start);
    if (answer.empty()) std::fprintf(stderr, "empty hot list?\n");
  }
  const LatencySummary merged = Summarize(merge_ns);

  // Path B: epoch-cached snapshot (no ingest during the run, so every Get()
  // after the first is a pointer load; this isolates the cache-hit cost the
  // staleness bound buys on the serving path).
  SnapshotCache<ConciseSample> cache(
      [&sharded] { return sharded.Snapshot(); },
      {.max_stale_ops = 8192,
       .max_stale_interval = std::chrono::seconds(3600)});
  (void)cache.Get();  // warm the first epoch outside the timed loop
  std::vector<std::int64_t> cached_ns;
  cached_ns.reserve(queries);
  for (int i = 0; i < queries; ++i) {
    const std::int64_t start = NowNs();
    const auto snapshot = cache.Get().ValueOrDie();
    const HotList answer = answer_from(*snapshot);
    cached_ns.push_back(NowNs() - start);
    if (answer.empty()) std::fprintf(stderr, "empty hot list?\n");
  }
  const LatencySummary cached = Summarize(cached_ns);

  // Path C: the full serving engine (counting + concise caches, the same
  // path aqua_serve's /hotlist handler takes).
  ServingEngineOptions engine_options;
  engine_options.shards = kShards;
  engine_options.footprint_bound = kFootprint;
  ServingEngine engine(engine_options);
  for (std::size_t off = 0; off < stream.size(); off += 1024) {
    const std::size_t len = std::min<std::size_t>(1024, stream.size() - off);
    engine.InsertBatch(std::span<const Value>(stream.data() + off, len));
  }
  (void)engine.HotListAnswer(query);  // warm both caches
  std::vector<std::int64_t> engine_ns;
  engine_ns.reserve(queries);
  for (int i = 0; i < queries; ++i) {
    const auto response = engine.HotListAnswer(query);
    engine_ns.push_back(response.response_ns);
  }
  const LatencySummary serving = Summarize(engine_ns);

  const double speedup_p50 = merged.p50_ns / cached.p50_ns;
  const double speedup_p99 = merged.p99_ns / cached.p99_ns;

  bench::PrintHeader("Serving latency: per-request merge vs epoch cache");
  std::printf("%-28s %12s %12s\n", "path", "p50 (ns)", "p99 (ns)");
  std::printf("%-28s %12.0f %12.0f\n", "per-request Snapshot()",
              merged.p50_ns, merged.p99_ns);
  std::printf("%-28s %12.0f %12.0f\n", "SnapshotCache::Get()",
              cached.p50_ns, cached.p99_ns);
  std::printf("%-28s %12.0f %12.0f\n", "ServingEngine::HotListAnswer",
              serving.p50_ns, serving.p99_ns);
  std::printf("\ncached-vs-merge speedup: p50 %.1fx, p99 %.1fx "
              "(%zu shards, %lld preloaded)\n",
              speedup_p50, speedup_p99, kShards,
              static_cast<long long>(preload));

  report.Add("per_request_snapshot",
             {{"p50_ns", merged.p50_ns}, {"p99_ns", merged.p99_ns}});
  report.Add("snapshot_cache",
             {{"p50_ns", cached.p50_ns}, {"p99_ns", cached.p99_ns}});
  report.Add("serving_engine_hotlist",
             {{"p50_ns", serving.p50_ns}, {"p99_ns", serving.p99_ns}});
  report.Add("speedup",
             {{"p50_x", speedup_p50}, {"p99_x", speedup_p99}});
  report.WriteJson(json_path);
  return 0;
}

}  // namespace
}  // namespace aqua

int main(int argc, char** argv) { return aqua::Main(argc, argv); }
