// Reproduces Figure 3 of Gibbons & Matias (SIGMOD 1998): sample-size of
// traditional, concise-online and concise-offline samples as a function of
// the zipf parameter, for the paper's four (footprint, D) scenarios:
//   (a) footprint 100,  D = 5000  (D/m = 50), zipf 0..3
//   (b) footprint 1000, D = 5000  (D/m = 5),  zipf 0..3
//   (c) footprint 1000, D = 50000 (D/m = 50), zipf 0..1.5 (truncated plot)
//   (d) footprint 1000, D = 5000  (D/m = 5),  zipf 0..1.5 (detail of (b))
// 500K inserts per run; every data point is the average of 5 trials.

#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"
#include "core/concise_sample_builder.h"
#include "metrics/table_printer.h"

namespace aqua {
namespace bench {
namespace {

struct Panel {
  const char* name;
  Words footprint;
  std::int64_t domain;
  double max_zipf;
};

void RunPanel(const Panel& panel, int scenario_base) {
  PrintHeader(std::string("Figure 3") + panel.name + ": 500000 values in [1," +
              std::to_string(panel.domain) + "], footprint " +
              std::to_string(panel.footprint));
  TablePrinter table({"zipf", "traditional", "concise online",
                      "concise offline", "online/offline"});
  for (int step = 0;; ++step) {
    const double alpha = 0.25 * step;
    if (alpha > panel.max_zipf + 1e-9) break;
    double traditional = 0.0, online = 0.0, offline = 0.0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const std::uint64_t seed =
          TrialSeed(scenario_base + step, trial);
      const std::vector<Value> data =
          ZipfValues(kInserts, panel.domain, alpha, seed);

      ReservoirSample reservoir(panel.footprint, seed + 7);
      ConciseSample concise(ConciseSampleOptions{
          .footprint_bound = panel.footprint, .seed = seed + 11});
      for (Value v : data) {
        reservoir.Insert(v);
        concise.Insert(v);
      }
      traditional += static_cast<double>(reservoir.SampleSize());
      online += static_cast<double>(concise.SampleSize());
      offline += static_cast<double>(
          BuildOfflineConciseSample(data, panel.footprint, seed + 13)
              .sample_size);
    }
    traditional /= kTrials;
    online /= kTrials;
    offline /= kTrials;
    table.AddRow({TablePrinter::Num(alpha, 2),
                  TablePrinter::Num(traditional, 0),
                  TablePrinter::Num(online, 0),
                  TablePrinter::Num(offline, 0),
                  TablePrinter::Num(offline > 0 ? online / offline : 1.0,
                                    3)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace aqua

int main(int argc, char** argv) {
  using namespace aqua::bench;
  ApplySmoke(argc, argv);
  std::cout << "Figure 3: comparing sample-sizes of concise and traditional "
               "samples as a function of skew\n"
            << "(" << kInserts << " inserts, " << kTrials
            << "-trial averages; traditional sample-size = footprint)\n";
  RunPanel({"(a)", 100, 5000, 3.0}, 100);
  RunPanel({"(b)", 1000, 5000, 3.0}, 200);
  RunPanel({"(c)", 1000, 50000, 1.5}, 300);
  RunPanel({"(d)", 1000, 5000, 1.5}, 400);
  // §3.3 also sweeps D/m = 500 ("we consider D/m = 5, 50, and 500");
  // the figure omits that panel, so we add it for completeness.
  RunPanel({"(e, D/m=500)", 100, 50000, 3.0}, 500);
  return 0;
}
