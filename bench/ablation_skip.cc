// §3.1 ablation (google-benchmark): geometric skip counting vs naive
// per-element coin flips.  The paper: "As τ gets large, this results in a
// significant savings in the number of coin flips and hence the update
// time."  Each iteration replays a 100K-value zipf stream into a fresh
// synopsis; items/second is the update throughput.

#include <benchmark/benchmark.h>

#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "workload/generators.h"

namespace aqua {
namespace {

constexpr std::int64_t kStream = 100000;

const std::vector<Value>& StreamData(double alpha) {
  static const std::vector<Value> low = ZipfValues(kStream, 5000, 0.5, 71);
  static const std::vector<Value> mid = ZipfValues(kStream, 5000, 1.0, 72);
  static const std::vector<Value> high = ZipfValues(kStream, 5000, 1.5, 73);
  if (alpha < 0.75) return low;
  if (alpha < 1.25) return mid;
  return high;
}

void BM_ConciseInsert(benchmark::State& state) {
  const bool use_skips = state.range(0) != 0;
  const double alpha = static_cast<double>(state.range(1)) / 100.0;
  const std::vector<Value>& data = StreamData(alpha);
  for (auto _ : state) {
    ConciseSample s(ConciseSampleOptions{.footprint_bound = 1000,
                                         .seed = 74,
                                         .use_skip_counting = use_skips});
    for (Value v : data) s.Insert(v);
    benchmark::DoNotOptimize(s.SampleSize());
  }
  state.SetItemsProcessed(state.iterations() * kStream);
}

void BM_CountingInsert(benchmark::State& state) {
  const bool use_skips = state.range(0) != 0;
  const double alpha = static_cast<double>(state.range(1)) / 100.0;
  const std::vector<Value>& data = StreamData(alpha);
  for (auto _ : state) {
    CountingSample s(CountingSampleOptions{.footprint_bound = 1000,
                                           .seed = 75,
                                           .use_skip_counting = use_skips});
    for (Value v : data) s.Insert(v);
    benchmark::DoNotOptimize(s.CountedOccurrences());
  }
  state.SetItemsProcessed(state.iterations() * kStream);
}

BENCHMARK(BM_ConciseInsert)
    ->ArgsProduct({{0, 1}, {50, 100, 150}})
    ->ArgNames({"skip", "zipf_x100"});
BENCHMARK(BM_CountingInsert)
    ->ArgsProduct({{0, 1}, {50, 100, 150}})
    ->ArgNames({"skip", "zipf_x100"});

}  // namespace
}  // namespace aqua

BENCHMARK_MAIN();
