// §3.1 ablation (google-benchmark): geometric skip counting vs naive
// per-element coin flips.  The paper: "As τ gets large, this results in a
// significant savings in the number of coin flips and hence the update
// time."  Each iteration replays a 100K-value zipf stream into a fresh
// synopsis; items/second is the update throughput.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "workload/generators.h"

namespace aqua {
namespace {

// Shrunk by --smoke (see main) before the first StreamData() call.
std::int64_t kStream = 100000;

const std::vector<Value>& StreamData(double alpha) {
  static const std::vector<Value> low = ZipfValues(kStream, 5000, 0.5, 71);
  static const std::vector<Value> mid = ZipfValues(kStream, 5000, 1.0, 72);
  static const std::vector<Value> high = ZipfValues(kStream, 5000, 1.5, 73);
  if (alpha < 0.75) return low;
  if (alpha < 1.25) return mid;
  return high;
}

void BM_ConciseInsert(benchmark::State& state) {
  const bool use_skips = state.range(0) != 0;
  const double alpha = static_cast<double>(state.range(1)) / 100.0;
  const std::vector<Value>& data = StreamData(alpha);
  for (auto _ : state) {
    ConciseSample s(ConciseSampleOptions{.footprint_bound = 1000,
                                         .seed = 74,
                                         .use_skip_counting = use_skips});
    for (Value v : data) s.Insert(v);
    benchmark::DoNotOptimize(s.SampleSize());
  }
  state.SetItemsProcessed(state.iterations() * kStream);
}

void BM_CountingInsert(benchmark::State& state) {
  const bool use_skips = state.range(0) != 0;
  const double alpha = static_cast<double>(state.range(1)) / 100.0;
  const std::vector<Value>& data = StreamData(alpha);
  for (auto _ : state) {
    CountingSample s(CountingSampleOptions{.footprint_bound = 1000,
                                           .seed = 75,
                                           .use_skip_counting = use_skips});
    for (Value v : data) s.Insert(v);
    benchmark::DoNotOptimize(s.CountedOccurrences());
  }
  state.SetItemsProcessed(state.iterations() * kStream);
}

BENCHMARK(BM_ConciseInsert)
    ->ArgsProduct({{0, 1}, {50, 100, 150}})
    ->ArgNames({"skip", "zipf_x100"});
BENCHMARK(BM_CountingInsert)
    ->ArgsProduct({{0, 1}, {50, 100, 150}})
    ->ArgNames({"skip", "zipf_x100"});

}  // namespace
}  // namespace aqua

// BENCHMARK_MAIN(), plus a `--smoke` flag (stripped before google-benchmark
// sees the args) that shrinks the replayed stream so CI can execute every
// bench binary quickly.
int main(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      aqua::kStream = 2000;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
