// Crash recovery for the approximate answer engine (paper footnote 2:
// "for persistence and recovery, combinations of snapshots and/or logs can
// be stored on disk").  A counting sample runs over a mixed insert/delete
// stream; we snapshot it mid-stream, keep an op log of the tail, simulate
// a crash, and recover by decoding the snapshot and replaying the log —
// then show the recovered hot list matches the live one.

#include <cstdio>
#include <iostream>

#include "core/counting_sample.h"
#include "hotlist/counting_hot_list.h"
#include "metrics/table_printer.h"
#include "persist/op_log.h"
#include "persist/snapshot.h"
#include "workload/generators.h"

int main() {
  using namespace aqua;

  const std::string log_path = "/tmp/aqua_example_recovery.log";
  const UpdateStream stream =
      MixedStream(400000, 2000, 1.2, 0.15, 20000, /*seed=*/51);
  const std::size_t snapshot_at = stream.size() / 2;

  CountingSample live(
      CountingSampleOptions{.footprint_bound = 1000, .seed = 52});
  std::vector<std::uint8_t> snapshot;
  {
    OpLogWriter log(log_path);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const StreamOp& op = stream[i];
      if (op.kind == StreamOp::Kind::kInsert) {
        live.Insert(op.value);
      } else if (!live.Delete(op.value).ok()) {
        std::cerr << "delete failed\n";
        return 1;
      }
      if (i + 1 == snapshot_at) {
        snapshot = EncodeSnapshot(live);  // checkpoint
      } else if (i + 1 > snapshot_at) {
        log.Append(op);  // tail after the checkpoint
      }
    }
    if (!log.Flush().ok()) {
      std::cerr << "op log flush failed\n";
      return 1;
    }
  }
  std::cout << "stream " << stream.size() << " ops; snapshot at op "
            << snapshot_at << " (" << snapshot.size()
            << " bytes for a 1000-word synopsis)\n";

  // ---- crash; recover from snapshot + log ----
  auto recovered = DecodeCountingSnapshot(snapshot, /*fresh seed=*/99);
  if (!recovered.ok()) {
    std::cerr << "snapshot decode failed: " << recovered.status() << "\n";
    return 1;
  }
  auto tail = ReadOpLog(log_path);
  if (!tail.ok() || !ReplayInto(*recovered, *tail).ok()) {
    std::cerr << "log replay failed\n";
    return 1;
  }
  std::remove(log_path.c_str());
  std::cout << "recovered: replayed " << tail->size()
            << " logged ops; validate: "
            << recovered->Validate().ToString() << "\n\n";

  // Compare hot lists.  The recovered synopsis draws fresh randomness from
  // the replay, so it is a different — equally valid — counting sample of
  // the same stream; the hot heads agree.
  const HotList live_hot = CountingHotList(live).Report({.k = 8});
  const HotList recovered_hot = CountingHotList(*recovered).Report({.k = 8});
  TablePrinter table({"rank", "live value", "live est", "recovered value",
                      "recovered est"});
  for (std::size_t i = 0; i < live_hot.size() && i < recovered_hot.size();
       ++i) {
    table.AddRow({TablePrinter::Num(static_cast<std::int64_t>(i + 1)),
                  TablePrinter::Num(live_hot[i].value),
                  TablePrinter::Num(live_hot[i].estimated_count, 0),
                  TablePrinter::Num(recovered_hot[i].value),
                  TablePrinter::Num(recovered_hot[i].estimated_count, 0)});
  }
  table.Print(std::cout);
  return 0;
}
