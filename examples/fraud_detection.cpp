// Real-time fraud detection on telecommunications traffic (§1.2: "hot
// lists are also quite useful in data mining contexts for real-time fraud
// detection in telecommunications traffic [Pre97], and in fact an early
// version of our algorithm … has been in use in such contexts for over a
// year").
//
// The hard part is "detecting when itemsets that were small become large
// due to a shift in the distribution of the newer data": no information is
// kept on cold values, so detection must be probabilistic.  This example
// shifts the hot set mid-stream and measures how many post-shift
// occurrences it takes each synopsis to surface a newly-hot caller.

#include <iostream>

#include "core/counting_sample.h"
#include "hotlist/counting_hot_list.h"
#include "metrics/table_printer.h"
#include "workload/generators.h"

int main() {
  using namespace aqua;

  // 1M call records over 200K caller ids; zipf 1.2 popularity.  After 600K
  // calls the traffic pattern rotates: a previously-cold caller (the
  // "fraudster") becomes the hottest number.
  constexpr std::int64_t kCalls = 1000000;
  constexpr std::int64_t kShiftAt = 600000;
  constexpr std::int64_t kRotation = 100000;
  const std::vector<Value> calls =
      ShiftingZipfValues(kCalls, 200000, 1.2, kShiftAt, kRotation, 21);
  // Post-shift, zipf rank 1 maps to caller id 1 + kRotation.
  constexpr Value kFraudster = 1 + kRotation;

  CountingSample counting(
      CountingSampleOptions{.footprint_bound = 2000, .seed = 22});

  std::int64_t detected_at = -1;
  std::int64_t fraudster_calls_before_detection = 0;
  std::int64_t fraudster_calls_total = 0;
  for (std::int64_t i = 0; i < kCalls; ++i) {
    const Value caller = calls[static_cast<std::size_t>(i)];
    counting.Insert(caller);
    if (i >= kShiftAt && caller == kFraudster) {
      ++fraudster_calls_total;
      // Poll the hot list every 64 fraudster calls (cheap: O(footprint)).
      if (detected_at < 0 && fraudster_calls_total % 64 == 0) {
        const HotList hot =
            CountingHotList(counting).Report({.k = 10, .beta = 3});
        for (const HotListItem& item : hot) {
          if (item.value == kFraudster) {
            detected_at = i;
            fraudster_calls_before_detection = fraudster_calls_total;
            break;
          }
        }
      }
    }
  }

  std::cout << "traffic shift at call " << kShiftAt
            << "; newly-hot caller id " << kFraudster << "\n";
  if (detected_at >= 0) {
    std::cout << "caller surfaced in the top-10 hot list at call "
              << detected_at << " — after "
              << fraudster_calls_before_detection
              << " of its own calls (threshold at detection ~"
              << counting.Threshold() << ")\n";
  } else {
    std::cout << "caller was not detected (increase the footprint)\n";
  }

  std::cout << "\nfinal top-10 callers (counting sample, footprint 2000 "
               "words):\n";
  TablePrinter table({"caller", "estimated calls"});
  for (const HotListItem& item :
       CountingHotList(counting).Report({.k = 10, .beta = 3})) {
    table.AddRow({TablePrinter::Num(item.value),
                  TablePrinter::Num(item.estimated_count, 0)});
  }
  table.Print(std::cout);
  std::cout << "\nThe probabilistic counting scheme of §1.2 at work: with "
               "threshold tau, a newly-popular value is expected to be "
               "admitted after ~tau of its occurrences, then counted "
               "exactly thereafter.\n";
  return 0;
}
