// Query-optimizer style estimation from synopses (§1: "techniques for fast
// approximate answers can also be used in a more traditional role within
// the query optimizer to estimate plan costs"): predicate selectivities
// with confidence intervals, range selectivities from a histogram over the
// concise sample (its point sample acts as a bigger backing sample,
// [GMP97b]/§2), and join-size estimation from high-biased histograms built
// on hot lists ([Ioa93, IC93]).

#include <iostream>

#include "core/concise_sample.h"
#include "estimate/aggregates.h"
#include "histogram/equi_depth_histogram.h"
#include "histogram/high_biased_histogram.h"
#include "hotlist/concise_hot_list.h"
#include "warehouse/relation.h"
#include "workload/generators.h"

int main() {
  using namespace aqua;

  constexpr std::int64_t kN = 800000;
  constexpr std::int64_t kD = 10000;
  const std::vector<Value> data = ZipfValues(kN, kD, 1.2, 31);

  ConciseSample concise(
      ConciseSampleOptions{.footprint_bound = 1500, .seed = 32});
  Relation relation;
  for (Value v : data) {
    concise.Insert(v);
    relation.Insert(v);
  }

  // 1. Equality/range predicate selectivity with a 95% CI.
  const std::vector<Value> points = concise.ToPointSample();
  SampleEstimator estimator(points, kN);
  const Estimate sel = estimator.Selectivity(
      [](Value v) { return v <= 50; });
  std::int64_t truth = 0;
  for (Value v : data) truth += (v <= 50);
  std::cout << "selectivity(A <= 50): " << sel.value << " in ["
            << sel.ci_low << ", " << sel.ci_high << "]  (exact "
            << static_cast<double>(truth) / kN << ", " << sel.sample_points
            << " sample points from a " << concise.Footprint()
            << "-word synopsis)\n";

  // 2. Range counts from an equi-depth histogram over the concise sample.
  EquiDepthHistogram histogram(points, 20, kN);
  std::int64_t range_truth = 0;
  for (Value v : data) range_truth += (v >= 100 && v <= 1000);
  std::cout << "count(100 <= A <= 1000): ~"
            << histogram.EstimateRangeCount(100, 1000) << " (exact "
            << range_truth << ")\n";

  // 3. Join-size estimation: high-biased histograms (hot list + remainder
  // bucket) for R and a second relation S with a different skew.
  const std::vector<Value> s_data = ZipfValues(kN / 2, kD, 0.9, 33);
  ConciseSample s_concise(
      ConciseSampleOptions{.footprint_bound = 1500, .seed = 34});
  Relation s_relation;
  for (Value v : s_data) {
    s_concise.Insert(v);
    s_relation.Insert(v);
  }

  auto to_histogram = [kD](const ConciseSample& cs, std::int64_t n) {
    std::vector<ValueCount> hot;
    for (const HotListItem& item :
         ConciseHotList(cs).Report({.k = 50, .beta = 3})) {
      hot.push_back(ValueCount{
          item.value, static_cast<Count>(item.estimated_count + 0.5)});
    }
    return HighBiasedHistogram(std::move(hot), n,
                               kD - static_cast<std::int64_t>(hot.size()));
  };
  const HighBiasedHistogram r_hist = to_histogram(concise, kN);
  const HighBiasedHistogram s_hist = to_histogram(s_concise, kN / 2);
  const double join_estimate =
      HighBiasedHistogram::EstimateJoinSize(r_hist, s_hist);

  // Exact join size: Σ_v f_R(v) · f_S(v).
  double join_truth = 0.0;
  for (const ValueCount& vc : relation.ExactCounts()) {
    join_truth += static_cast<double>(vc.count) *
                  static_cast<double>(s_relation.FrequencyOf(vc.value));
  }
  std::cout << "join size |R join S|: ~" << join_estimate << " (exact "
            << join_truth << ", error "
            << 100.0 * (join_estimate - join_truth) / join_truth << "%)\n"
            << "\nThe skewed head drives the join size; hot lists capture "
               "exactly those values (§1.2).\n";
  return 0;
}
