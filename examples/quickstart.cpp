// Quickstart: maintain a concise sample and a counting sample over a
// skewed insert stream, then answer a hot-list query and a frequency query
// from each — no access to the base data (the Figure 2 set-up).
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <iostream>

#include "core/concise_sample.h"
#include "core/counting_sample.h"
#include "estimate/frequency_estimator.h"
#include "hotlist/concise_hot_list.h"
#include "hotlist/counting_hot_list.h"
#include "workload/generators.h"

int main() {
  using namespace aqua;

  // A 500K-value load stream, integer domain [1, 5000], zipf skew 1.25.
  const std::vector<Value> stream = ZipfValues(500000, 5000, 1.25, /*seed=*/7);

  // Both synopses are bounded to 1000 memory words — about 8 KB.
  ConciseSample concise(
      ConciseSampleOptions{.footprint_bound = 1000, .seed = 1});
  CountingSample counting(
      CountingSampleOptions{.footprint_bound = 1000, .seed = 2});
  for (Value v : stream) {
    concise.Insert(v);
    counting.Insert(v);
  }

  std::cout << "stream length        : " << stream.size() << "\n";
  std::cout << "concise footprint    : " << concise.Footprint()
            << " words, sample-size " << concise.SampleSize()
            << " (a traditional sample of this footprint holds only "
            << concise.Footprint() << " points)\n";
  std::cout << "counting footprint   : " << counting.Footprint()
            << " words, threshold " << counting.Threshold() << "\n\n";

  // Top-10 hot list from each synopsis.
  const HotListQuery query{.k = 10, .beta = 3};
  std::cout << "top-10 via counting sample (count +/- compensation):\n";
  for (const HotListItem& item : CountingHotList(counting).Report(query)) {
    std::cout << "  value " << item.value << "  ~" << item.estimated_count
              << " occurrences\n";
  }
  std::cout << "\ntop-10 via concise sample (scaled counts):\n";
  for (const HotListItem& item : ConciseHotList(concise).Report(query)) {
    std::cout << "  value " << item.value << "  ~" << item.estimated_count
              << " occurrences\n";
  }

  // Single-value frequency estimates with accuracy measures.
  const Estimate from_counting =
      FrequencyEstimator::FromCounting(counting, /*value=*/1);
  const Estimate from_concise =
      FrequencyEstimator::FromConcise(concise, /*value=*/1);
  std::cout << "\nfrequency of value 1 : counting-sample estimate "
            << from_counting.value << " in [" << from_counting.ci_low << ", "
            << from_counting.ci_high << "]\n";
  std::cout << "                       concise-sample estimate "
            << from_concise.value << " in [" << from_concise.ci_low << ", "
            << from_concise.ci_high << "] (95% CI)\n";
  return 0;
}
