// Hot lists over 2-itemsets for association rules (§1.2: "hot lists can be
// maintained on … pairs of values … e.g., they can be maintained on
// k-itemsets for any specified k, and used to produce association rules
// [AS94, BMUT97]").  Each market basket contributes all its item pairs,
// encoded into single values; a counting sample over the pair stream finds
// the largest 2-itemsets, from which confidence-scored rules are derived.

#include <algorithm>
#include <iostream>

#include "container/flat_hash_map.h"
#include "core/counting_sample.h"
#include "hotlist/counting_hot_list.h"
#include "metrics/table_printer.h"
#include "workload/generators.h"

int main() {
  using namespace aqua;

  constexpr std::int64_t kBaskets = 300000;
  constexpr int kItemsPerBasket = 4;  // 6 pairs per basket
  constexpr std::int64_t kItemDomain = 5000;
  const std::vector<Value> pair_stream =
      PairItemsetValues(kBaskets, kItemDomain, 1.1, kItemsPerBasket, 41);

  // Pair-itemset synopsis plus exact single-item supports (cheap: one
  // counter per present item — the "1-itemsets" any Apriori pass keeps).
  CountingSample pairs(
      CountingSampleOptions{.footprint_bound = 4000, .seed = 42});
  FlatHashMap<Value, Count> item_baskets;
  for (Value pair : pair_stream) {
    pairs.Insert(pair);
    const auto [a, b] = DecodeItemPair(pair);
    // Each item of a basket appears in kItemsPerBasket-1 of its pairs;
    // count basket membership fractionally.
    ++item_baskets[a];
    ++item_baskets[b];
  }
  const double pairs_per_item = kItemsPerBasket - 1;

  std::cout << "baskets " << kBaskets << ", pair stream length "
            << pair_stream.size() << ", synopsis footprint "
            << pairs.Footprint() << " words (a full pair histogram could "
            << "need one counter per co-occurring pair)\n\n";

  // The largest 2-itemsets, with confidence of the rule {a} -> {b}
  // (support(a,b) / support(a)) in both directions.
  TablePrinter table({"itemset", "est. support (baskets)",
                      "conf a->b %", "conf b->a %"});
  const HotList hot = CountingHotList(pairs).Report({.k = 12, .beta = 3});
  for (const HotListItem& item : hot) {
    const auto [a, b] = DecodeItemPair(item.value);
    const double support_ab = item.estimated_count;
    const Count* sa = item_baskets.Find(a);
    const Count* sb = item_baskets.Find(b);
    const double baskets_a =
        sa != nullptr ? static_cast<double>(*sa) / pairs_per_item : 0.0;
    const double baskets_b =
        sb != nullptr ? static_cast<double>(*sb) / pairs_per_item : 0.0;
    table.AddRow(
        {"{" + std::to_string(a) + "," + std::to_string(b) + "}",
         TablePrinter::Num(support_ab, 0),
         TablePrinter::Num(
             baskets_a > 0 ? std::min(100.0, 100.0 * support_ab / baskets_a)
                           : 0.0,
             1),
         TablePrinter::Num(
             baskets_b > 0 ? std::min(100.0, 100.0 * support_ab / baskets_b)
                           : 0.0,
             1)});
  }
  table.Print(std::cout);

  std::cout << "\nDetecting newly-large itemsets without counting all "
            << "O(|items|^2) pairs is exactly the probabilistic admission "
            << "game of §1.2: a pair is admitted after ~tau occurrences and "
            << "counted exactly from then on.\n";
  return 0;
}
