// Top-selling items from a sales-transaction stream — the paper's
// motivating hot-list example ("an example hot list is the top selling
// items in a database of sales transactions", §1.2) — using the full
// ApproximateAnswerEngine (Figure 2): the engine observes the load stream
// next to the warehouse, and answers hot-list queries in microseconds from
// memory while the exact answer would scan the base data.

#include <iostream>

#include "metrics/hotlist_accuracy.h"
#include "metrics/table_printer.h"
#include "warehouse/engine.h"
#include "warehouse/relation.h"
#include "workload/generators.h"

int main() {
  using namespace aqua;

  // One million sales over a 100K-product catalog; product popularity is
  // zipf-distributed (skew 1.1), product ids are the attribute values.
  constexpr std::int64_t kSales = 1000000;
  const std::vector<Value> sales = ZipfValues(kSales, 100000, 1.1, 11);

  EngineOptions options;
  options.footprint_bound = 2000;
  options.seed = 12;
  ApproximateAnswerEngine engine(options);

  Relation warehouse;  // the exact base data, for comparison only
  for (Value product : sales) {
    (void)engine.Observe(StreamOp::Insert(product));
    warehouse.Insert(product);
  }

  const auto response = engine.HotListAnswer({.k = 15, .beta = 3});
  std::cout << "approximate top sellers via " << response.method << " in "
            << response.response_ns / 1000 << " us (no base-data access):\n";

  const std::vector<ValueCount> exact_top =
      ExactTopK(warehouse.ExactCounts(), 15);
  TablePrinter table({"product", "estimated sales", "exact sales",
                      "error %"});
  for (const HotListItem& item : response.answer) {
    const auto exact = static_cast<double>(warehouse.FrequencyOf(item.value));
    table.AddRow({TablePrinter::Num(item.value),
                  TablePrinter::Num(item.estimated_count, 0),
                  TablePrinter::Num(exact, 0),
                  TablePrinter::Num(
                      exact > 0
                          ? 100.0 * std::abs(item.estimated_count - exact) /
                                exact
                          : 0.0,
                      2)});
  }
  table.Print(std::cout);

  const HotListAccuracy acc =
      EvaluateHotList(response.answer, warehouse.ExactCounts(), 15);
  std::cout << "\nrecall@15 " << acc.Recall(15) << ", precision "
            << acc.Precision() << ", engine footprint "
            << engine.TotalFootprint() << " words vs exact histogram "
            << 2 * warehouse.distinct_values() << " words on disk\n";

  // A quick aggregate too: how many sales came from the top-100 products?
  const auto count_response = engine.CountWhereAnswer(
      [](Value product) { return product <= 100; });
  std::cout << "sales of products 1..100: ~" << count_response.answer.value
            << " (95% CI [" << count_response.answer.ci_low << ", "
            << count_response.answer.ci_high << "]) via "
            << count_response.method << "\n";
  return 0;
}
